"""Shim for legacy editable installs on environments without the `wheel`
package (PEP 660 editable builds require it; `pip install -e . --no-use-pep517`
falls back to `setup.py develop`, which does not).  All metadata lives in
pyproject.toml."""

from setuptools import setup

setup()
