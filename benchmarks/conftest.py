"""Shared infrastructure for the experiment benchmarks (E1-E12).

Each benchmark file reproduces one experiment from DESIGN.md §5.  Because
the paper publishes no measured numbers, every benchmark both

* measures the *virtual-time / protocol-level* quantity the claim is
  about (connection setup RTTs saved, agent polls suppressed, events
  lost, ...), printing a small table and asserting the expected shape; and
* feeds the CPU-bound kernel to pytest-benchmark for wall-time numbers.

The printed tables are emitted through ``report`` (bypassing capture) so
``pytest benchmarks/ --benchmark-only | tee bench_output.txt`` records
them alongside pytest-benchmark's own table.
"""

from __future__ import annotations

import pytest

from repro.core.policy import GatewayPolicy
from repro.simnet.clock import VirtualClock
from repro.simnet.network import Network
from repro.testbed import Site, build_site


@pytest.fixture
def report(capsys):
    """Print lines straight to the terminal, uncaptured."""

    def _report(*lines: str) -> None:
        with capsys.disabled():
            print()
            for line in lines:
                print("    " + line)

    return _report


def fresh_site(
    *,
    name: str = "bench",
    n_hosts: int = 4,
    agents=("snmp", "ganglia"),
    seed: int = 0,
    policy: GatewayPolicy | None = None,
    warmup: float = 30.0,
    snmp_trap_threshold: float | None = None,
) -> Site:
    """A brand-new single-site rig (fresh clock + network every call)."""
    clock = VirtualClock()
    network = Network(clock, seed=seed)
    site = build_site(
        network,
        name=name,
        n_hosts=n_hosts,
        agents=agents,
        seed=seed,
        policy=policy,
        snmp_trap_threshold=snmp_trap_threshold,
    )
    clock.advance(warmup)
    return site


def fmt_table(headers: list[str], rows: list[list]) -> list[str]:
    """Render a small fixed-width table."""
    text_rows = [[f"{v:.4g}" if isinstance(v, float) else str(v) for v in r] for r in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in text_rows)) if text_rows else len(h)
        for i, h in enumerate(headers)
    ]
    line = "  ".join(h.ljust(w) for h, w in zip(headers, widths))
    sep = "  ".join("-" * w for w in widths)
    out = [line, sep]
    for r in text_rows:
        out.append("  ".join(v.ljust(w) for v, w in zip(r, widths)))
    return out
