"""E4 — Per-driver caching policy (paper §3.3).

Claim: "on a driver-by-driver basis, implementations should address these
issues by using caching policies within the plug-in, as appropriate for
the characteristics of a particular type of data source."

Workload: a client issuing Ganglia Processor queries every 2 virtual
seconds for 200 seconds, with the driver's dump cache TTL swept.
Metrics: agent requests actually served (intrusion), driver-cache hit
ratio, mean virtual latency.  Expected shape: agent load drops ~TTL/rate;
latency drops with hit ratio; results stay correct (row counts equal).
"""

import pytest

from repro.core.policy import GatewayPolicy
from repro.drivers.ganglia_driver import GangliaDriver
from conftest import fresh_site, fmt_table

QUERY_PERIOD = 2.0
DURATION = 200.0
SQL = "SELECT HostName, LoadAverage1Min FROM Processor"


def run(ttl: float):
    site = fresh_site(
        name=f"e4-{ttl:g}",
        n_hosts=6,
        agents=("ganglia",),
        policy=GatewayPolicy(query_cache_ttl=0.0),  # isolate the driver cache
    )
    driver = site.gateway.driver_manager.driver_by_name("JDBC-Ganglia")
    assert isinstance(driver, GangliaDriver)
    driver.cache.ttl = ttl
    agent = site.agents["ganglia"][0]
    url = site.url_for("ganglia")
    gw = site.gateway

    n = int(DURATION / QUERY_PERIOD)
    latencies = []
    rows_seen = set()
    for _ in range(n):
        t0 = site.clock.now()
        result = gw.query(url, SQL)
        latencies.append(site.clock.now() - t0)
        rows_seen.add(len(result.rows))
        site.clock.advance(QUERY_PERIOD)
    assert rows_seen == {6}  # caching never changes result shape
    return {
        "ttl": ttl,
        "queries": n,
        "agent_requests": agent.requests_served,
        "hit_ratio": driver.cache.hit_ratio,
        "mean_virt_ms": sum(latencies) / n * 1000,
    }


@pytest.mark.benchmark(group="E4-driver-cache")
def test_e4_ttl_sweep(benchmark, report):
    results = [run(ttl) for ttl in (0.0, 5.0, 15.0, 60.0)]
    rows = [
        [r["ttl"], r["agent_requests"], f"{r['hit_ratio']:.2f}", r["mean_virt_ms"]]
        for r in results
    ]
    report(
        "E4: Ganglia driver dump-cache TTL sweep "
        f"(1 query / {QUERY_PERIOD:g}s for {DURATION:g}s, 6 hosts)",
        *fmt_table(["ttl (s)", "agent reqs", "hit ratio", "virt ms/query"], rows),
    )
    by_ttl = {r["ttl"]: r for r in results}
    # Shape: no cache -> one agent request per query (plus connect probe);
    # TTL >= query period suppresses most of them, monotonically.
    assert by_ttl[0.0]["agent_requests"] >= by_ttl[5.0]["agent_requests"]
    assert by_ttl[5.0]["agent_requests"] > by_ttl[60.0]["agent_requests"]
    assert by_ttl[60.0]["hit_ratio"] > 0.9
    assert by_ttl[60.0]["mean_virt_ms"] < by_ttl[0.0]["mean_virt_ms"]

    benchmark(run, 15.0)


@pytest.mark.benchmark(group="E4-driver-cache")
def test_e4_lazy_vs_eager_parse(benchmark, report):
    """The §3.3 'lazy or eager parsing' trade-off: caching the parsed
    records (eager) vs the raw XML (lazy, re-parsed per query)."""
    import time

    results = []
    for lazy in (False, True):
        site = fresh_site(
            name=f"e4le-{lazy}", n_hosts=8, agents=("ganglia",),
            policy=GatewayPolicy(query_cache_ttl=0.0),
        )
        gw = site.gateway
        # Swap the default driver for one with the chosen parse strategy.
        default = gw.driver_manager.driver_by_name("JDBC-Ganglia")
        gw.driver_manager.unregister(default)
        driver = GangliaDriver(
            site.network, gateway_host=gw.host, cache_ttl=1e9, lazy_parse=lazy
        )
        gw.driver_manager.register(driver)
        url = site.url_for("ganglia")
        gw.query(url, SQL)  # warm the cache
        t0 = time.perf_counter()
        for _ in range(50):
            gw.query(url, SQL)
        wall = (time.perf_counter() - t0) / 50
        results.append(["lazy" if lazy else "eager", wall * 1e6])
    report(
        "E4b: parse strategy on cache hits (wall time)",
        *fmt_table(["strategy", "us/query"], results),
    )
    # Shape: eager (cache parsed records) is cheaper per hit.
    assert results[0][1] < results[1][1]

    site = fresh_site(name="e4k", n_hosts=4, agents=("ganglia",))
    benchmark(lambda: site.gateway.query(site.url_for("ganglia"), SQL))
