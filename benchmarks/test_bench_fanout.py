"""E14 — Concurrent dispatch: fan-out, scatter-gather, single-flight.

The serial reproduction made a query over N sources cost the *sum* of N
round-trips of virtual time.  The dispatch layer (repro.core.dispatch)
overlaps them, so the claims to measure are:

* **fan-out**: a REALTIME query over N >= 8 sources costs about the
  slowest single source's round-trip (within 1.5x), where the serial
  baseline (``fanout_enabled=False``) costs ~N single round-trips;
* **scatter-gather**: a 3-site Global-layer query costs about the
  slowest site, not the sum of the three;
* **single-flight**: a join + tree-view workload issuing identical
  concurrent sub-queries performs measurably fewer network requests
  than the same workload with coalescing disabled, with identical rows.

The measured speedups are recorded in ``BENCH_fanout.json`` at the repo
root so CI archives the numbers run over run.
"""

import json
import pathlib

import pytest

from repro.core.gateway import BatchQuery
from repro.core.policy import GatewayPolicy
from repro.core.request_manager import QueryMode
from repro.gma.directory import GMADirectory
from repro.gma.global_layer import GlobalLayer
from repro.testbed import build_testbed
from conftest import fresh_site, fmt_table

SQL = "SELECT * FROM Processor"
N_SOURCES = 8
BENCH_JSON = pathlib.Path(__file__).resolve().parent.parent / "BENCH_fanout.json"

_RESULTS: dict = {}


def _record(key: str, payload: dict) -> None:
    """Accumulate one section of BENCH_fanout.json and (re)write it."""
    _RESULTS[key] = payload
    BENCH_JSON.write_text(json.dumps(_RESULTS, indent=2, sort_keys=True) + "\n")


@pytest.mark.benchmark(group="E14-fanout")
def test_e14_fanout_beats_serial(benchmark, report):
    """Concurrent fan-out: elapsed ~= slowest source, not the sum."""
    # Slowest single source: each polled alone on an identical fresh rig.
    singles_site = fresh_site(name="e14", n_hosts=N_SOURCES, agents=("snmp",))
    singles = []
    for url in singles_site.source_urls:
        t0 = singles_site.clock.now()
        singles_site.gateway.query([url], SQL, mode=QueryMode.REALTIME)
        singles.append(singles_site.clock.now() - t0)
    slowest = max(singles)

    concurrent_site = fresh_site(name="e14", n_hosts=N_SOURCES, agents=("snmp",))
    t0 = concurrent_site.clock.now()
    r_conc = concurrent_site.gateway.query(
        concurrent_site.source_urls, SQL, mode=QueryMode.REALTIME
    )
    concurrent = concurrent_site.clock.now() - t0

    serial_site = fresh_site(
        name="e14",
        n_hosts=N_SOURCES,
        agents=("snmp",),
        policy=GatewayPolicy(fanout_enabled=False),
    )
    t0 = serial_site.clock.now()
    r_ser = serial_site.gateway.query(
        serial_site.source_urls, SQL, mode=QueryMode.REALTIME
    )
    serial = serial_site.clock.now() - t0

    speedup = serial / concurrent
    report(
        f"E14: REALTIME fan-out over {N_SOURCES} SNMP sources",
        *fmt_table(
            ["dispatch", "virt ms", "vs slowest source"],
            [
                ["serial", serial * 1000, serial / slowest],
                ["concurrent", concurrent * 1000, concurrent / slowest],
            ],
        ),
        f"speedup: {speedup:.2f}x "
        f"(slowest single source {slowest*1000:.3f} ms)",
    )
    _record(
        "fanout",
        {
            "sources": N_SOURCES,
            "serial_virt_ms": serial * 1000,
            "concurrent_virt_ms": concurrent * 1000,
            "slowest_single_virt_ms": slowest * 1000,
            "speedup": speedup,
        },
    )
    assert r_conc.ok_sources == N_SOURCES and r_ser.ok_sources == N_SOURCES
    # The acceptance shape: concurrent within 1.5x the slowest single
    # source; serial costs many single round-trips (the sum).
    assert concurrent <= slowest * 1.5
    assert serial >= sum(singles) * 0.75
    assert speedup > 2.0

    bench_site = fresh_site(name="e14k", n_hosts=N_SOURCES, agents=("snmp",))
    benchmark(
        bench_site.gateway.query,
        bench_site.source_urls,
        SQL,
        mode=QueryMode.REALTIME,
    )


def _gma_rig(policy=None, *, seed=7):
    network, sites = build_testbed(n_sites=4, n_hosts=3, seed=seed, policy=policy)
    directory = GMADirectory(network)
    layers = [GlobalLayer(site.gateway, directory) for site in sites]
    network.clock.advance(30.0)
    return network, sites, layers


@pytest.mark.benchmark(group="E14-fanout")
def test_e14_three_site_scatter_gather(benchmark, report):
    """A 3-site Global-layer query costs ~the slowest site, not the sum."""
    remote_sites = ["site-b", "site-c", "site-d"]

    # Slowest single site, measured one at a time on a fresh fabric.
    network, _, layers = _gma_rig()
    singles = []
    for site_name in remote_sites:
        t0 = network.clock.now()
        layers[0].query_remote(site_name, SQL, mode="realtime")
        singles.append(network.clock.now() - t0)
    slowest = max(singles)

    network, _, layers = _gma_rig()
    t0 = network.clock.now()
    out = layers[0].query_remote_all(remote_sites, SQL, mode="realtime")
    concurrent = network.clock.now() - t0
    assert not any(isinstance(r, Exception) for r in out.values())

    network, _, layers = _gma_rig(GatewayPolicy(fanout_enabled=False))
    t0 = network.clock.now()
    out_serial = layers[0].query_remote_all(remote_sites, SQL, mode="realtime")
    serial = network.clock.now() - t0
    assert not any(isinstance(r, Exception) for r in out_serial.values())

    speedup = serial / concurrent
    report(
        "E14b: 3-site Global-layer scatter-gather (WAN links)",
        *fmt_table(
            ["dispatch", "virt ms", "vs slowest site"],
            [
                ["serial", serial * 1000, serial / slowest],
                ["concurrent", concurrent * 1000, concurrent / slowest],
            ],
        ),
        f"speedup: {speedup:.2f}x (slowest site {slowest*1000:.1f} ms)",
    )
    _record(
        "scatter_gather",
        {
            "sites": len(remote_sites),
            "serial_virt_ms": serial * 1000,
            "concurrent_virt_ms": concurrent * 1000,
            "slowest_site_virt_ms": slowest * 1000,
            "speedup": speedup,
        },
    )
    assert concurrent <= slowest * 1.5
    assert speedup > 2.0

    network, _, layers = _gma_rig()
    benchmark(layers[0].query_remote_all, remote_sites, SQL, mode="realtime")


@pytest.mark.benchmark(group="E14-fanout")
def test_e14_singleflight_cuts_agent_traffic(benchmark, report):
    """A join + tree-view batch coalesces identical in-flight requests."""

    def run(singleflight: bool):
        site = fresh_site(
            name="e14s",
            n_hosts=4,
            policy=GatewayPolicy(
                singleflight_enabled=singleflight, query_cache_ttl=0.0
            ),
        )
        gw = site.gateway
        urls = [str(s.url) for s in gw.sources()]
        before = gw.network.stats.requests
        batch = [
            # The join decomposes into SELECT * FROM Processor /
            # MainMemory per source — exactly what the tree-view polls
            # alongside it ask for.
            BatchQuery(
                urls=urls,
                sql="SELECT * FROM Processor, MainMemory",
                mode=QueryMode.REALTIME,
            ),
            BatchQuery(urls=urls, sql=SQL, mode=QueryMode.REALTIME),
            BatchQuery(
                urls=urls, sql="SELECT * FROM MainMemory", mode=QueryMode.REALTIME
            ),
        ]
        results = gw.query_batch(batch)
        assert not any(isinstance(r, Exception) for r in results)
        return (
            gw.network.stats.requests - before,
            gw.dispatcher.stats.singleflight_joins,
            [len(r.rows) for r in results],
        )

    requests_on, joins_on, rows_on = run(True)
    requests_off, joins_off, rows_off = run(False)
    saved = requests_off - requests_on
    report(
        "E14c: single-flight over a join + tree-view batch",
        *fmt_table(
            ["single-flight", "net requests", "coalesced joins"],
            [["on", requests_on, joins_on], ["off", requests_off, joins_off]],
        ),
        f"requests saved: {saved} ({saved / requests_off:.0%}); "
        f"row counts identical: {rows_on == rows_off}",
    )
    _record(
        "singleflight",
        {
            "requests_with": requests_on,
            "requests_without": requests_off,
            "requests_saved": saved,
            "coalesced_joins": joins_on,
        },
    )
    assert rows_on == rows_off
    assert joins_on > 0 and joins_off == 0
    assert requests_on < requests_off

    benchmark(run, True)
