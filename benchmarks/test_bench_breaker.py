"""E13 — Circuit breakers vs dead data sources.

Claim (robustness extension): without per-source health tracking, every
query against a dead source pays the full native connect timeout — the
paper's failure policies are stateless across queries.  With breakers,
the cost is paid ``breaker_failure_threshold`` times, after which the
source is quarantined and queries short-circuit (optionally serving
stale cached rows) until the backoff elapses.

Workload: N_DEAD of N_HOSTS SNMP agents are unreachable; every round
polls all sources in REALTIME.  Metrics: virtual ms/query and the
``connect_failures`` growth curve.  Expected shape: breaker-on is far
cheaper in steady state and its connect_failures curve plateaus.
"""

import pytest

from repro.core.policy import GatewayPolicy
from repro.core.request_manager import QueryMode
from conftest import fmt_table, fresh_site

N_HOSTS = 6
N_DEAD = 2
N_ROUNDS = 15
SQL = "SELECT HostName FROM Host"


def run(breaker_enabled: bool):
    policy = GatewayPolicy(
        breaker_enabled=breaker_enabled,
        breaker_failure_threshold=3,
        breaker_base_backoff=900.0,  # stays OPEN for the whole run
        breaker_max_backoff=1800.0,
        query_cache_ttl=0.0,  # disable fresh-cache hits: isolate the breaker
    )
    site = fresh_site(
        name="e13", n_hosts=N_HOSTS, agents=("snmp",), seed=5, policy=policy
    )
    for host in site.host_names()[:N_DEAD]:
        site.fail_host(host)
    gw = site.gateway
    failures_per_round = []
    t0 = site.clock.now()
    for _ in range(N_ROUNDS):
        gw.query(site.source_urls, SQL, mode=QueryMode.REALTIME)
        failures_per_round.append(gw.driver_manager.stats["connect_failures"])
    elapsed = site.clock.now() - t0
    return {
        "breaker": "on" if breaker_enabled else "off",
        "virt_ms": elapsed * 1000 / N_ROUNDS,
        "connect_failures": failures_per_round[-1],
        "curve": failures_per_round,
        "short_circuits": gw.request_manager.stats["breaker_short_circuits"],
    }


@pytest.mark.benchmark(group="E13-breaker")
def test_e13_breaker_on_vs_off(benchmark, report):
    off = run(False)
    on = run(True)
    rows = [
        [r["breaker"], r["virt_ms"], r["connect_failures"], r["short_circuits"]]
        for r in (off, on)
    ]
    report(
        f"E13: {N_DEAD}/{N_HOSTS} SNMP agents dead, "
        f"{N_ROUNDS} all-source REALTIME rounds",
        *fmt_table(
            ["breaker", "virt ms/round", "connect failures", "short circuits"],
            rows,
        ),
    )
    # Steady state: the breaker eliminates the dead sources' timeouts.
    assert on["virt_ms"] < off["virt_ms"] / 2
    # Failure growth plateaus once the breakers trip ...
    threshold = 3 * N_DEAD
    assert on["connect_failures"] == threshold
    assert all(f == threshold for f in on["curve"][3:])
    # ... while breaker-off keeps paying on every round.
    assert off["connect_failures"] == N_ROUNDS * N_DEAD
    assert on["short_circuits"] == (N_ROUNDS - 3) * N_DEAD

    benchmark(run, True)
