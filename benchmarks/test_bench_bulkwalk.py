"""A2 (ablation) — SNMP table enumeration: GETNEXT walk vs GETBULK.

The fine-grained price of SNMP (experiment E3) is paid per round-trip;
for conceptual tables (the filesystem group, enumerated by a MIB walk)
that price multiplies by the table size.  SNMPv2c's GETBULK fetches many
successors per round-trip.  This ablation measures the saving as the
table grows.

Expected shape: GETNEXT costs ~(rows + 1) round-trips; GETBULK with
max-repetitions >= rows costs ~1; identical results either way.
"""

import pytest

from repro.agents.host_model import HostSpec, SimulatedHost
from repro.agents.snmp import SnmpAgent, oid_parse
from repro.dbapi.url import JdbcUrl
from repro.drivers.snmp_driver import SnmpDriver
from repro.simnet.clock import VirtualClock
from repro.simnet.network import Network
from conftest import fmt_table


def make_rig(n_fs: int):
    clock = VirtualClock()
    network = Network(clock, seed=20)
    network.add_host("n0", site="a2")
    network.add_host("gateway", site="a2")
    spec = HostSpec.generate("n0", "a2", 3)
    extra = tuple(
        (f"/data{i}", "ext3", 9216.0) for i in range(max(0, n_fs - len(spec.filesystems)))
    )
    import dataclasses

    spec = dataclasses.replace(spec, filesystems=spec.filesystems + extra)
    host = SimulatedHost(spec, clock)
    SnmpAgent(host, network)
    driver = SnmpDriver(network, gateway_host="gateway")
    return network, driver, JdbcUrl.parse("jdbc:snmp://n0/x"), len(spec.filesystems)


BASE = oid_parse("1.3.6.1.2.1.25.2.3.1.3")  # hrStorageDescr column


@pytest.mark.benchmark(group="A2-bulkwalk")
def test_a2_walk_vs_bulk(benchmark, report):
    rows = []
    for n_fs in (4, 16, 64):
        network, driver, url, total = make_rig(n_fs)
        network.stats.reset()
        walked = driver.walk(url, BASE)
        walk_reqs = network.stats.requests
        network.stats.reset()
        bulked = driver.bulk_walk(url, BASE, max_repetitions=16)
        bulk_reqs = network.stats.requests
        assert [s for s, _ in walked] == [s for s, _ in bulked]
        assert len(walked) == total
        rows.append([total, walk_reqs, bulk_reqs, f"{walk_reqs / bulk_reqs:.1f}x"])
    report(
        "A2: filesystem-table enumeration, GETNEXT vs GETBULK(16)",
        *fmt_table(["table rows", "getnext reqs", "getbulk reqs", "saving"], rows),
    )
    # Shape: GETNEXT linear in rows; GETBULK ~rows/16.
    assert rows[-1][1] >= rows[-1][0]
    assert rows[-1][2] <= rows[-1][0] // 16 + 2

    network, driver, url, _ = make_rig(16)
    benchmark(driver.bulk_walk, url, BASE, max_repetitions=16)


@pytest.mark.benchmark(group="A2-bulkwalk")
def test_a2_repetition_sweep(benchmark, report):
    rows = []
    network, driver, url, total = make_rig(64)
    for reps in (1, 4, 16, 64):
        network.stats.reset()
        driver.bulk_walk(url, BASE, max_repetitions=reps)
        rows.append([reps, network.stats.requests])
    report(
        f"A2b: max-repetitions sweep on a {total}-row table",
        *fmt_table(["max-repetitions", "round-trips"], rows),
    )
    reqs = [r[1] for r in rows]
    assert reqs == sorted(reqs, reverse=True)

    benchmark(driver.walk, url, BASE)
