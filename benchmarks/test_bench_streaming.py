"""E19 — Continuous subscriptions vs polling (the streaming plane).

Claim (R-GMA extension): a consumer that needs fresh monitoring tuples
can either poll the gateway on a period — paying one gateway query per
consumer per period and reading data that is on average half a period
stale — or register a continuous query once and have the hub push every
matching publish.  Pushing decouples consumer count from gateway load
(the acquisition cost is paid once, however many subscriptions fan out)
and delivers tuples at network latency instead of poll-period staleness.

Workload: one site, REALTIME rounds drive acquisition; M consumers want
the rows.  The poll arm issues M gateway queries per round; the
continuous arm registers M subscriptions and issues one.  A separate
kernel benchmark pushes one publish through a hub carrying 1000 live
subscriptions (8 distinct compiled shapes) to price hub-side fan-out.

The measured numbers are recorded in ``BENCH_streaming.json`` at the
repo root.
"""

import json
import pathlib

import pytest

from repro.core.plans import PlanCache
from repro.core.policy import GatewayPolicy
from repro.core.request_manager import QueryMode
from repro.glue.schema import standard_schema
from repro.gma.streams import StreamConsumer, StreamHub
from repro.simnet.clock import VirtualClock
from repro.simnet.network import Network

from conftest import fmt_table, fresh_site

BENCH_JSON = pathlib.Path(__file__).resolve().parent.parent / "BENCH_streaming.json"

_RESULTS: dict = {}

M_CONSUMERS = 8
N_ROUNDS = 12
PERIOD = 10.0  # poll period, seconds of virtual time
SQL = "SELECT HostName, LoadAverage1Min FROM Processor"


def _record(key: str, payload: dict) -> None:
    """Accumulate one section of BENCH_streaming.json and (re)write it."""
    _RESULTS[key] = payload
    BENCH_JSON.write_text(json.dumps(_RESULTS, indent=2, sort_keys=True) + "\n")


def run_poll(m: int) -> dict:
    site = fresh_site(name="e19", n_hosts=4, agents=("snmp",), seed=3)
    gw = site.gateway
    urls = list(site.source_urls)
    latencies = []
    queries = 0
    for _ in range(N_ROUNDS):
        for _consumer in range(m):
            t0 = site.clock.now()
            result = gw.query(urls, SQL, mode=QueryMode.REALTIME)
            latencies.append(site.clock.now() - t0)
            queries += 1
            assert result.rows
        site.clock.advance(PERIOD)
    return {
        "arm": "poll",
        "gateway_queries": queries,
        # Data read mid-interval is on average half a period old, plus
        # the query round-trip itself.
        "freshness_ms": (PERIOD / 2) * 1000
        + sum(latencies) * 1000 / len(latencies),
        "deliveries": queries,
    }


def run_continuous(m: int) -> dict:
    policy = GatewayPolicy(streaming_enabled=True)
    site = fresh_site(
        name="e19", n_hosts=4, agents=("snmp",), seed=3, policy=policy
    )
    gw = site.gateway
    network = gw.network
    urls = list(site.source_urls)
    consumer = StreamConsumer(network, "e19-viewer")
    cqs = [
        consumer.register(gw.streams.address, f"{SQL} WHERE 0 <= {i}")
        for i in range(m)
    ]
    queries = 0
    for _ in range(N_ROUNDS):
        gw.query(urls, SQL, mode=QueryMode.REALTIME)  # one acquisition
        queries += 1
        site.clock.advance(PERIOD)
    latencies = [
        batch["received_at"] - batch["published_at"]
        for cq in cqs
        for batch in consumer.delivered.get(cq, [])
    ]
    deliveries = len(latencies)
    assert deliveries > 0
    consumer.stop()
    return {
        "arm": "continuous",
        "gateway_queries": queries,
        "freshness_ms": sum(latencies) * 1000 / deliveries,
        "deliveries": deliveries,
    }


@pytest.mark.benchmark(group="E19-streaming")
def test_e19_push_vs_poll(benchmark, report):
    poll = run_poll(M_CONSUMERS)
    cont = run_continuous(M_CONSUMERS)
    rows = [
        [r["arm"], r["gateway_queries"], r["freshness_ms"], r["deliveries"]]
        for r in (poll, cont)
    ]
    report(
        f"E19: {M_CONSUMERS} consumers x {N_ROUNDS} rounds, "
        f"poll period {PERIOD:.0f}s",
        *fmt_table(
            ["arm", "gateway queries", "freshness (virt ms)", "deliveries"],
            rows,
        ),
    )
    # Gateway load decouples from consumer count ...
    assert cont["gateway_queries"] == N_ROUNDS
    assert poll["gateway_queries"] == N_ROUNDS * M_CONSUMERS
    # ... and pushed tuples arrive at wire latency, not poll staleness.
    assert cont["freshness_ms"] < poll["freshness_ms"] / 10
    # Every subscription saw every source's batch on every round.
    assert cont["deliveries"] == N_ROUNDS * M_CONSUMERS * 4  # 4 sources
    _record(
        "push_vs_poll",
        {
            "consumers": M_CONSUMERS,
            "rounds": N_ROUNDS,
            "period_s": PERIOD,
            "poll": poll,
            "continuous": cont,
            "query_reduction": poll["gateway_queries"]
            / cont["gateway_queries"],
            "freshness_gain": poll["freshness_ms"] / cont["freshness_ms"],
        },
    )


@pytest.mark.benchmark(group="E19-streaming")
def test_e19_hub_fanout_1k_subscriptions(benchmark, report):
    """Wall-time price of one publish through 1000 live subscriptions."""
    n_subs = 1000
    clock = VirtualClock()
    network = Network(clock, seed=0)
    network.add_host("hub-host", site="bench")
    network.add_host("sink", site="bench")
    schema = standard_schema()
    policy = GatewayPolicy(stream_max_subscriptions=n_subs + 1)
    hub = StreamHub(
        network,
        "hub-host",
        plans=PlanCache(schema),
        schema=schema,
        policy=policy,
    )
    shapes = [
        "SELECT * FROM Processor",
        "SELECT HostName, LoadAverage1Min FROM Processor",
        "SELECT HostName FROM Processor WHERE LoadAverage1Min > 0.5",
        "SELECT HostName, CPUUtilization FROM Processor WHERE CPUIdle < 90",
        "SELECT COUNT(*) AS N FROM Processor",
        "SELECT HostName FROM Processor WHERE SiteName = 'bench'",
        "SELECT DISTINCT SiteName FROM Processor",
        "SELECT HostName, CPUCount FROM Processor WHERE CPUCount >= 1",
    ]
    for i in range(n_subs):
        response = network.request(
            "sink",
            hub.address,
            {
                "op": "register",
                "sql": shapes[i % len(shapes)],
                "host": "sink",
                "port": 8501,
                "lease": 1e9,
            },
        )
        assert response["ok"], response
    columns = [
        "HostName", "SiteName", "LoadAverage1Min",
        "CPUUtilization", "CPUIdle", "CPUCount",
    ]
    rows = [
        [f"n{i}", "bench", 0.25 + i, 40.0 + i, 55.0 - i, 4]
        for i in range(8)
    ]

    def publish_once():
        hub.publish("Processor", columns, rows, source_url="bench://src")
        clock.advance(1.0)  # drain the datagrams

    benchmark(publish_once)
    pushes = hub.stats["pushes"]
    assert pushes >= n_subs  # every live subscription got the round
    report(
        f"E19: one 8-row publish fanned out to {n_subs} subscriptions "
        f"({len(shapes)} compiled shapes), "
        f"{benchmark.stats['mean'] * 1000:.2f} ms/publish"
    )
    _record(
        "fanout_1k",
        {
            "subscriptions": n_subs,
            "distinct_shapes": len(shapes),
            "rows_per_publish": len(rows),
            "mean_ms_per_publish": benchmark.stats["mean"] * 1000,
            "pushes_per_publish": n_subs,
        },
    )
