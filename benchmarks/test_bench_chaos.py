"""E15 — Tail latency under chaos: deadlines and hedged requests.

The chaos plane (repro.simnet.faults) injects latency spikes, slowdowns,
flapping hosts, flaky ports, corruption and a timed partition while the
gateway polls.  The claims to measure:

* **deadlines cap the tail**: with an end-to-end deadline every round
  costs at most the deadline — the p99 under the standard fault scenario
  drops from the native-timeout plateau to the deadline itself, because
  every hop (dispatch, connect probe, native agent round-trip) is clamped
  to the remaining budget;
* **hedging shaves the spike tail**: against a spike-dominated scenario
  a hedged second request, fired after the p95 of observed latency,
  rescues rounds whose primary drew a spike — cutting the mean round
  latency with a bounded extra-request overhead.

The measured numbers are recorded in ``BENCH_chaos.json`` at the repo
root so CI archives them run over run (the ``chaos-smoke`` job).
"""

import json
import pathlib

import pytest

from repro.chaos import run_chaos
from repro.core.policy import GatewayPolicy
from repro.core.request_manager import QueryMode
from repro.simnet.faults import FaultPlane
from conftest import fresh_site, fmt_table

SQL = "SELECT * FROM Processor"
BENCH_JSON = pathlib.Path(__file__).resolve().parent.parent / "BENCH_chaos.json"

_RESULTS: dict = {}


def _record(key: str, payload: dict) -> None:
    """Accumulate one section of BENCH_chaos.json and (re)write it."""
    _RESULTS[key] = payload
    BENCH_JSON.write_text(json.dumps(_RESULTS, indent=2, sort_keys=True) + "\n")


@pytest.mark.benchmark(group="E15-chaos")
def test_e15_deadlines_and_hedging_cap_p99(benchmark, report):
    """Hedging + a 2.5s deadline cut p99 under the standard fault mix."""
    baseline = run_chaos(
        seed=0, rounds=30, warmup_rounds=10, hedging=False, deadline=0.0
    )
    treated = run_chaos(
        seed=0, rounds=30, warmup_rounds=10, hedging=True, deadline=2.5
    )
    report(
        "E15: p99 under the standard chaos scenario (30 rounds, seed 0)",
        *fmt_table(
            ["config", "p50 s", "p95 s", "p99 s", "max s", "mean s"],
            [
                [
                    "baseline",
                    baseline.latency(50),
                    baseline.latency(95),
                    baseline.latency(99),
                    max(baseline.latencies),
                    sum(baseline.latencies) / baseline.rounds,
                ],
                [
                    "hedge+deadline",
                    treated.latency(50),
                    treated.latency(95),
                    treated.latency(99),
                    max(treated.latencies),
                    sum(treated.latencies) / treated.rounds,
                ],
            ],
        ),
        f"p99 cut: {baseline.latency(99):.3f}s -> {treated.latency(99):.3f}s "
        f"({1 - treated.latency(99) / baseline.latency(99):.0%}); "
        f"hedges fired {treated.dispatch['hedges_fired']}, "
        f"deadline-exceeded rounds "
        f"{treated.requests.get('deadline_exceeded', 0)}",
    )
    _record(
        "tail_latency",
        {
            "rounds": baseline.rounds,
            "baseline_p50_s": baseline.latency(50),
            "baseline_p99_s": baseline.latency(99),
            "baseline_mean_s": sum(baseline.latencies) / baseline.rounds,
            "treated_p50_s": treated.latency(50),
            "treated_p99_s": treated.latency(99),
            "treated_mean_s": sum(treated.latencies) / treated.rounds,
            "deadline_s": treated.deadline,
            "hedges_fired": treated.dispatch["hedges_fired"],
            "p99_cut_ratio": treated.latency(99) / baseline.latency(99),
        },
    )
    # The acceptance shape: the deadline genuinely caps the tail (every
    # hop honours the remaining budget, so no round can cost more), and
    # the cap sits well below the native-timeout plateau of the baseline.
    assert max(treated.latencies) <= treated.deadline + 1e-9
    assert treated.latency(99) <= baseline.latency(99) * 0.6
    assert treated.dispatch["hedges_fired"] > 0
    # Replay identity held for both runs (structural invariants).
    assert baseline.pending_futures == 0 and treated.pending_futures == 0
    assert baseline.breaker_violations == [] and treated.breaker_violations == []

    benchmark(
        run_chaos, seed=0, rounds=5, warmup_rounds=2, hedging=True, deadline=2.5
    )


def _spike_run(seed: int, *, hedging: bool, rounds: int = 60):
    """Mean round latency against a spike-dominated fault plane."""
    site = fresh_site(
        name="e15h",
        n_hosts=4,
        agents=("snmp",),
        seed=seed,
        policy=GatewayPolicy(fanout_enabled=True, hedge_enabled=hedging),
    )
    gw = site.gateway
    urls = list(site.source_urls)
    for _ in range(10):  # build the hedger's latency window
        gw.query(urls, SQL, mode=QueryMode.REALTIME)
        site.clock.advance(30.0)
    plane = FaultPlane(site.network, seed=seed)
    for host in site.host_names():
        plane.latency_spikes(host, prob=0.05, extra=2.0)
    latencies = []
    for _ in range(rounds):
        latencies.append(gw.query(urls, SQL, mode=QueryMode.REALTIME).elapsed)
        site.clock.advance(30.0)
    return latencies, gw.dispatcher.stats, plane.stats


@pytest.mark.benchmark(group="E15-chaos")
def test_e15_hedging_rescues_spiked_rounds(benchmark, report):
    """Hedged requests cut the mean latency of a spike-dominated workload."""
    rows = []
    means = {True: [], False: []}
    fired = won = 0
    for seed in (0, 1, 2):
        lat_h, stats_h, faults_h = _spike_run(seed, hedging=True)
        lat_u, _, _ = _spike_run(seed, hedging=False)
        mean_h = sum(lat_h) / len(lat_h)
        mean_u = sum(lat_u) / len(lat_u)
        means[True].append(mean_h)
        means[False].append(mean_u)
        fired += stats_h.hedges_fired
        won += stats_h.hedges_won
        rows.append(
            [f"seed {seed}", mean_u, mean_h, mean_u / mean_h, stats_h.hedges_fired]
        )
    report(
        "E15b: mean latency, spike-dominated scenario (60 rounds/seed)",
        *fmt_table(
            ["seed", "unhedged s", "hedged s", "speedup", "hedges"], rows
        ),
        f"hedges fired {fired}, won {won} across 3 seeds",
    )
    _record(
        "hedging_spikes",
        {
            "seeds": 3,
            "rounds_per_seed": 60,
            "unhedged_mean_s": sum(means[False]) / 3,
            "hedged_mean_s": sum(means[True]) / 3,
            "hedges_fired": fired,
            "hedges_won": won,
        },
    )
    # Hedging must engage and win, and beat the unhedged mean per seed.
    assert fired > 0 and won > 0
    for mean_h, mean_u in zip(means[True], means[False]):
        assert mean_h < mean_u

    benchmark(_spike_run, 0, hedging=True, rounds=10)
