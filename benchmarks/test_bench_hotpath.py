"""E17 — Compiled query plans vs the interpreted hot path.

The gateway answers the same handful of monitoring queries over and over
(every portlet refresh, every alert sweep re-issues its SELECT).  PR 8
moves parse + validate + closure construction out of that loop: the
PlanCache compiles a statement once and warm queries replay pre-built
closures over positional rows.

Workload: one realistic SELECT (predicate + LIKE + ORDER BY + LIMIT)
executed repeatedly over a 16-row Processor relation.

* baseline — what every query used to cost: parse_select +
  validate_select + interpreted execute_select over dict rows;
* compiled — what a warm query costs now: a PlanCache hit + the bound
  plan's closures over slot rows.

Acceptance (ISSUE 8): compiled throughput >= 5x baseline.  Results are
recorded to BENCH_hotpath.json.
"""

import json
import pathlib
import time

import pytest

from repro.analysis.query_check import validate_select
from repro.core.plans import PlanCache
from repro.core.request_manager import QueryMode
from repro.glue.schema import standard_schema
from repro.sql.executor import execute_select
from repro.sql.parser import parse_select
from conftest import fresh_site, fmt_table

BENCH_JSON = pathlib.Path(__file__).resolve().parent.parent / "BENCH_hotpath.json"

_RESULTS: dict = {}

SQL = (
    "SELECT HostName, LoadAverage1Min, CPUCount FROM Processor "
    "WHERE CPUCount >= 2 AND HostName LIKE 'host-%' "
    "ORDER BY LoadAverage1Min DESC LIMIT 10"
)
N_ROWS = 16
REPEAT = 400


def _record(key: str, payload: dict) -> None:
    """Accumulate one section of BENCH_hotpath.json and (re)write it."""
    _RESULTS[key] = payload
    BENCH_JSON.write_text(json.dumps(_RESULTS, indent=2, sort_keys=True) + "\n")


def make_relation():
    schema = standard_schema()
    columns = schema.group("Processor").field_names()
    dict_rows = []
    for i in range(N_ROWS):
        row = {c: None for c in columns}
        row["HostName"] = f"host-{i:03d}"
        row["SiteName"] = "bench"
        row["CPUCount"] = 1 + i % 8
        row["LoadAverage1Min"] = (i * 37 % 100) / 10.0
        row["CPUUtilization"] = (i * 13 % 100) * 1.0
        dict_rows.append(row)
    slot_rows = [[r[c] for c in columns] for r in dict_rows]
    return schema, columns, dict_rows, slot_rows


def _throughput(fn, repeat=REPEAT):
    fn()  # warm caches (plan compile, LIKE regex, interning) outside timing
    t0 = time.perf_counter()
    for _ in range(repeat):
        fn()
    return repeat / (time.perf_counter() - t0)


@pytest.mark.benchmark(group="E17-hotpath")
def test_e17_compiled_beats_interpreted_5x(benchmark, report):
    schema, columns, dict_rows, slot_rows = make_relation()
    cols = tuple(columns)

    def baseline():
        select = parse_select(SQL)
        findings = validate_select(select, schema)
        assert not findings
        return execute_select(select, columns, dict_rows)

    plans = PlanCache(schema)

    def compiled():
        entry = plans.get(SQL)
        return entry.plan.bind(cols).execute(slot_rows)

    # Same answer before any timing.
    ref, got = baseline(), compiled()
    assert (got.columns, got.rows) == (ref.columns, ref.rows)

    base_qps = _throughput(baseline)
    comp_qps = _throughput(compiled)
    speedup = comp_qps / base_qps

    report(
        f"E17: repeated query over {N_ROWS} rows ({REPEAT} iterations)",
        *fmt_table(
            ["path", "queries/s"],
            [["interpreted", f"{base_qps:,.0f}"], ["compiled", f"{comp_qps:,.0f}"]],
        ),
        f"speedup: {speedup:.1f}x (plan cache: "
        f"{plans.hits} hits / {plans.misses} miss)",
    )
    _record(
        "hotpath",
        {
            "rows": N_ROWS,
            "repeat": REPEAT,
            "sql": SQL,
            "interpreted_qps": base_qps,
            "compiled_qps": comp_qps,
            "speedup": speedup,
            "plan_cache_hits": plans.hits,
            "plan_cache_misses": plans.misses,
        },
    )
    assert plans.misses == 1 and plans.hits >= REPEAT
    assert speedup >= 5.0, f"compiled path only {speedup:.2f}x faster"

    benchmark(compiled)


@pytest.mark.benchmark(group="E17-hotpath")
def test_e17_gateway_warm_queries_hit_plan_cache(benchmark, report):
    """End-to-end: the gateway's own repeated queries ride the cache."""
    site = fresh_site(name="e17", n_hosts=4, agents=("snmp",))
    gw = site.gateway
    url = site.url_for("snmp")

    def query():
        return gw.query(url, SQL, mode=QueryMode.REALTIME)

    first = query()
    assert first.ok_sources == 1, first.statuses
    repeat = 50
    t0 = time.perf_counter()
    for _ in range(repeat):
        query()
    wall = time.perf_counter() - t0

    hits, misses = gw.plans.hits, gw.plans.misses
    report(
        f"E17: end-to-end warm gateway query ({repeat} iterations)",
        f"wall: {wall*1000:.1f} ms total, {wall/repeat*1e6:.0f} us/query",
        f"plan cache: {hits} hits / {misses} misses",
    )
    _record(
        "gateway_warm",
        {
            "repeat": repeat,
            "wall_s": wall,
            "plan_cache_hits": hits,
            "plan_cache_misses": misses,
        },
    )
    # Every query after the first is a plan-cache hit; the driver-side
    # execution reuses the same compiled plan (no per-source recompile).
    assert misses <= 2  # realtime + at most one history/extra variant
    assert hits >= repeat

    benchmark(query)
