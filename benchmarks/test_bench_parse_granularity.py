"""E3 — Fine- vs coarse-grained sources (paper §3.3).

Claim: "In some cases, for example SNMP and Net Logger, fine grained
native requests for data are possible, with generally little or no
parsing required ... For other data sources, for example Ganglia and NWS,
responses are typically coarse grained.  A greater overhead is required
to parse values from the response, which is typically XML or plain text."

Workload: fetch (a) one metric and (b) a full group from each agent kind
on the same 8-host site.  Metrics: bytes moved per query (wire cost) and
wall-time of the driver's native fetch+parse kernel (CPU cost).

Expected shape: for a single metric, SNMP moves orders of magnitude fewer
bytes than Ganglia (which always ships the whole cluster dump); for full
dumps the gap narrows.  Ganglia's parse kernel costs more CPU than SNMP's
BER decode of one varbind.
"""

import pytest

from repro.core.policy import GatewayPolicy
from conftest import fresh_site, fmt_table

ONE_METRIC = "SELECT LoadAverage1Min FROM Processor"
FULL_GROUP = "SELECT * FROM Processor"

AGENT_KINDS = ("snmp", "ganglia", "scms", "sql")


def build():
    # Disable driver-level caches so every query pays the native fetch.
    site = fresh_site(
        name="e3",
        n_hosts=8,
        agents=AGENT_KINDS + ("netlogger", "nws"),
        policy=GatewayPolicy(query_cache_ttl=0.0),
        warmup=120.0,
    )
    ganglia = site.gateway.driver_manager.driver_by_name("JDBC-Ganglia")
    ganglia.cache.ttl = 0.0
    return site


def bytes_for(site, kind, sql):
    net = site.network
    url = site.url_for(kind)
    site.gateway.query(url, sql)  # connection warm-up outside measurement
    net.stats.reset()
    result = site.gateway.query(url, sql)
    assert result.ok_sources == 1, result.statuses
    return net.stats.bytes_sent, len(result.rows)


@pytest.mark.benchmark(group="E3-granularity")
def test_e3_wire_cost_single_metric_vs_full(benchmark, report):
    site = build()
    rows = []
    for kind in AGENT_KINDS:
        one, _ = bytes_for(site, kind, ONE_METRIC)
        full, n = bytes_for(site, kind, FULL_GROUP)
        rows.append([kind, one, full, n])
    report(
        "E3: wire bytes per query (8-host site)",
        *fmt_table(["agent", "1 metric (B)", "full group (B)", "rows"], rows),
    )
    by_kind = {r[0]: r for r in rows}
    # Shape: fine-grained SNMP moves far fewer bytes for one metric than
    # coarse-grained Ganglia's full-cluster dump.
    assert by_kind["snmp"][1] * 10 < by_kind["ganglia"][1]
    # Ganglia pays the same dump regardless of what was asked.
    assert by_kind["ganglia"][1] == pytest.approx(by_kind["ganglia"][2], rel=0.05)
    # SNMP's full-group fetch grows with requested fields.
    assert by_kind["snmp"][2] > by_kind["snmp"][1]

    site2 = build()
    benchmark(bytes_for, site2, "snmp", ONE_METRIC)


@pytest.mark.benchmark(group="E3-granularity")
@pytest.mark.parametrize("kind", AGENT_KINDS)
def test_e3_fetch_parse_kernel(benchmark, kind, report):
    """Wall-time of each driver's native fetch+translate path."""
    site = build()
    url = site.url_for(kind)
    gw = site.gateway

    def kernel():
        gw.query(url, FULL_GROUP)

    kernel()
    benchmark(kernel)


@pytest.mark.benchmark(group="E3-granularity")
def test_e3_parse_cost_isolated(benchmark, report):
    """Pure parse cost: gmond XML for 8 hosts vs one SNMP response."""
    from repro.agents import snmp as wire
    from repro.drivers.ganglia_driver import parse_ganglia_xml

    site = build()
    xml = site.agents["ganglia"][0].render_xml()
    msg = wire.SnmpMessage(
        0, "public", wire.TAG_RESPONSE, 1, 0, 0,
        (wire.VarBind(wire.LA_LOAD_1, 57),),
    ).encode()

    import time

    t0 = time.perf_counter()
    for _ in range(200):
        parse_ganglia_xml(xml)
    ganglia_parse = (time.perf_counter() - t0) / 200

    t0 = time.perf_counter()
    for _ in range(200):
        wire.SnmpMessage.decode(msg)
    snmp_parse = (time.perf_counter() - t0) / 200

    report(
        "E3b: isolated parse cost",
        f"ganglia XML dump ({len(xml)} B): {ganglia_parse*1e6:.1f} us",
        f"snmp response ({len(msg)} B): {snmp_parse*1e6:.1f} us",
        f"ratio: {ganglia_parse / snmp_parse:.1f}x",
    )
    assert ganglia_parse > snmp_parse * 3

    benchmark(parse_ganglia_xml, xml)
