"""E18 — Goodput under overload: admission control and brownout.

The Zhang/Freschl/Schopf comparison shows the classic 2003-era failure
mode: offered load past saturation collapses *goodput* (answers that
arrive complete and inside their deadline), because queues fill with
requests that will miss their deadlines anyway and per-source breakers
start blaming healthy hosts for queueing delay.  The overload scenario
(:func:`repro.chaos.run_overload`) reproduces that sweep against one
gateway — a load spike at 1x/2x/4x the admission limit while every
monitored host degrades — and the claims to measure are:

* **goodput holds at 4x**: with admission control + adaptive concurrency
  + brownout serving enabled, every spike round keeps >= 80% of the
  offered members good, even at 4x the saturating load;
* **the unprotected gateway collapses**: same seed, same fault, shedding
  off — spike-round goodput falls below 70% and the breakers trip on
  healthy hosts;
* **priority is honoured**: not one CRITICAL query is shed anywhere in
  the sweep.

The measured numbers are recorded in ``BENCH_overload.json`` at the repo
root so CI archives them run over run (the ``overload-smoke`` job).
"""

import json
import pathlib

import pytest

from repro.chaos import run_overload

BENCH_JSON = pathlib.Path(__file__).resolve().parent.parent / "BENCH_overload.json"

_RESULTS: dict = {}

SPIKE_START = 3
SPIKE_ROUNDS = 6
SATURATION = 8  # the admission controller's initial gateway-wide limit


def _record(key: str, payload: dict) -> None:
    """Accumulate one section of BENCH_overload.json and (re)write it."""
    _RESULTS[key] = payload
    BENCH_JSON.write_text(json.dumps(_RESULTS, indent=2, sort_keys=True) + "\n")


def _spike_goodput(report) -> list[int]:
    return report.goodput[SPIKE_START:SPIKE_START + SPIKE_ROUNDS]


@pytest.mark.benchmark(group="E18-overload")
def test_e18_goodput_under_overload(benchmark, report):
    """Sweep offered spike load x {shedding on, off}; assert the shape."""
    from conftest import fmt_table

    rows = []
    section: dict = {"spike_rounds": SPIKE_ROUNDS, "sweep": []}
    runs: dict[tuple[int, bool], object] = {}
    for spike_load in (SATURATION, 2 * SATURATION, 4 * SATURATION):
        for shedding in (True, False):
            r = run_overload(seed=0, shedding=shedding, spike_load=spike_load)
            runs[(spike_load, shedding)] = r
            spike = _spike_goodput(r)
            frac = sum(spike) / (len(spike) * spike_load)
            rows.append(
                [
                    f"{spike_load // SATURATION}x",
                    "on" if shedding else "off",
                    f"{sum(spike)}/{len(spike) * spike_load}",
                    frac,
                    min(spike) / spike_load,
                    r.shed_counts.get("total", 0),
                    r.brownout_served,
                    r.breakers["trips"],
                ]
            )
            section["sweep"].append(
                {
                    "spike_load": spike_load,
                    "shedding": shedding,
                    "spike_good": sum(spike),
                    "spike_offered": len(spike) * spike_load,
                    "goodput_fraction": frac,
                    "min_round_fraction": min(spike) / spike_load,
                    "good_total": r.good_total,
                    "offered_total": r.offered_total,
                    "sheds": dict(r.shed_counts),
                    "brownout_served": r.brownout_served,
                    "critical_shed": r.critical_shed,
                    "breaker_trips": r.breakers["trips"],
                }
            )
    report(
        "E18: spike-window goodput, load spike x degraded hosts (seed 0)",
        *fmt_table(
            [
                "load",
                "shed",
                "good/offered",
                "frac",
                "worst round",
                "sheds",
                "stale",
                "trips",
            ],
            rows,
        ),
        "goodput = complete answers inside the 2s deadline; "
        f"saturation = initial admission limit ({SATURATION})",
    )
    _record("goodput_sweep", section)

    on4 = runs[(4 * SATURATION, True)]
    off4 = runs[(4 * SATURATION, False)]
    # The tentpole claim: >= 80% goodput in every spike round at 4x the
    # saturating load with the protection on...
    assert min(_spike_goodput(on4)) >= 0.8 * on4.spike_load, on4.goodput
    # ...vs collapse (and breaker pollution on healthy hosts) without.
    off_spike = _spike_goodput(off4)
    assert sum(off_spike) / len(off_spike) <= 0.7 * off4.spike_load, off4.goodput
    assert off4.breakers["trips"] > 0
    assert on4.breakers["trips"] == 0
    # Priority honoured and invariants clean across the whole sweep.
    for r in runs.values():
        assert r.critical_shed == 0
        assert r.pending_futures == 0
        assert r.breaker_violations == []
        assert r.trace_violations == []

    benchmark(
        run_overload, seed=0, shedding=True, rounds=6, spike_rounds=2,
        warmup_rounds=2, spike_load=16,
    )


@pytest.mark.benchmark(group="E18-overload")
def test_e18_shed_fate_honours_priority(benchmark, report):
    """Without stale coverage the gateway sheds instead of browning out —
    and the shed order is BATCH-heavy, CRITICAL-never."""
    from conftest import fmt_table

    r = run_overload(seed=0, shedding=True, warmup_rounds=0)
    counts = r.shed_counts
    report(
        "E18b: shed mix with no stale coverage (warmup_rounds=0, seed 0)",
        *fmt_table(
            ["class", "offered share", "shed"],
            [
                ["critical", "10%", counts["critical"]],
                ["interactive", "~57%", counts["interactive"]],
                ["batch", "~33%", counts["batch"]],
            ],
        ),
        f"total sheds {counts['total']}, doomed-on-dequeue {r.doomed}",
    )
    _record(
        "shed_priority",
        {
            "sheds": dict(counts),
            "doomed": r.doomed,
            "critical_offered": r.critical_offered,
            "critical_shed": r.critical_shed,
        },
    )
    assert counts["total"] > 0
    assert counts["critical"] == 0
    # BATCH is ~1/3 of offered load yet sheds at least its share.
    assert counts["batch"] > 0
    assert r.critical_offered > 0

    benchmark(
        run_overload, seed=1, shedding=True, rounds=6, spike_rounds=2,
        warmup_rounds=0, spike_load=16,
    )
