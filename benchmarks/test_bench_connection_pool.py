"""E1 — Connection pooling (paper §3.1.2, Figure 3).

Claim: "Driver connections typically incur an overhead when a data source
is first connected ... the ConnectionManager provides pooling of driver
connections to reduce the overhead effects."

Workload: 200 queries against 16 SNMP sources, pooled vs unpooled.
Metric: virtual seconds per query (includes the native probe each
connect pays) and total connects.  Expected shape: pooled pays the
connect cost roughly once per source; unpooled pays it on every query.
"""

import pytest

from repro.core.policy import GatewayPolicy
from conftest import fresh_site, fmt_table

N_QUERIES = 200
N_HOSTS = 16
SQL = "SELECT HostName, LoadAverage1Min FROM Processor"


def run_queries(site, n=N_QUERIES):
    gw = site.gateway
    urls = [u for u in site.source_urls if u.startswith("jdbc:snmp")]
    t0 = site.clock.now()
    for i in range(n):
        gw.query(urls[i % len(urls)], SQL)
    return site.clock.now() - t0


def measure(pool_enabled: bool):
    site = fresh_site(
        name="e1p" if pool_enabled else "e1u",
        n_hosts=N_HOSTS,
        agents=("snmp",),
        policy=GatewayPolicy(pool_enabled=pool_enabled),
    )
    elapsed = run_queries(site)
    stats = site.gateway.connection_manager.stats
    return elapsed, stats


@pytest.mark.benchmark(group="E1-connection-pool")
def test_e1_pooled_vs_unpooled(benchmark, report):
    pooled_t, pooled_stats = measure(True)
    unpooled_t, unpooled_stats = measure(False)

    rows = [
        ["pooled", pooled_t * 1000 / N_QUERIES, pooled_stats["created"], pooled_stats["reused"]],
        ["unpooled", unpooled_t * 1000 / N_QUERIES, unpooled_stats["created"], unpooled_stats["reused"]],
    ]
    report(
        "E1: connection pooling (200 queries, 16 SNMP sources)",
        *fmt_table(["variant", "virt ms/query", "connects", "reuses"], rows),
        f"speedup: {unpooled_t / pooled_t:.2f}x",
    )

    # Shape: pooled connects once per source and reuses the rest;
    # unpooled reconnects every single query.
    assert pooled_stats["created"] == N_HOSTS
    assert pooled_stats["reused"] == N_QUERIES - N_HOSTS
    assert unpooled_stats["created"] == N_QUERIES
    assert unpooled_t > pooled_t * 1.3

    # Wall-time kernel: the pooled steady state.
    site = fresh_site(name="e1k", n_hosts=N_HOSTS, agents=("snmp",))
    benchmark(run_queries, site, 50)


@pytest.mark.benchmark(group="E1-connection-pool")
def test_e1_pool_capacity_sweep(benchmark, report):
    """Secondary: pool capacity interacts with concurrent-ish reuse —
    a capacity-1 pool on a 16-source fan-out behaves like per-source
    single caching and still wins."""
    rows = []
    for cap in (1, 4, 8):
        site = fresh_site(
            name=f"e1c{cap}",
            n_hosts=N_HOSTS,
            agents=("snmp",),
            policy=GatewayPolicy(pool_max_per_source=cap),
        )
        elapsed = run_queries(site, 100)
        rows.append([cap, elapsed * 1000 / 100, site.gateway.connection_manager.stats["created"]])
    report("E1b: pool capacity sweep", *fmt_table(["capacity", "virt ms/query", "connects"], rows))
    # Shape: capacity beyond 1 brings nothing for sequential clients.
    assert abs(rows[0][1] - rows[-1][1]) / rows[-1][1] < 0.2

    site = fresh_site(name="e1ck", n_hosts=4, agents=("snmp",))
    benchmark(run_queries, site, 20)
