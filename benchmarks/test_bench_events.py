"""E6 — Event manager buffering under load (paper §3.1.5, Figure 4).

Claim: a "Fast Buffer (ensures events are not lost in a busy system)"
sits between native event arrival and processing, with a disk buffer
behind it.

Workload: SNMP trap storms at swept arrival rates against an
EventManager draining 64 events/second.  Metrics: delivery ratio, spills
to the disk buffer, drops.  Expected shape: no loss at or below the
drain rate; above it the fast buffer fills, traffic spills to disk, and
only when both are full do events drop.
"""

import pytest

from repro.agents import snmp as wire
from repro.agents.host_model import HostSpec, SimulatedHost
from repro.agents.snmp import SnmpAgent
from repro.core.events import EventManager, SnmpTrapEventDriver
from repro.core.policy import GatewayPolicy
from repro.simnet.clock import VirtualClock
from repro.simnet.network import Address, Network
from conftest import fmt_table

DRAIN_BATCH = 64       # events per pump tick
DRAIN_PERIOD = 1.0     # pump ticks once per virtual second
DURATION = 30.0


def run(rate: float, fast: int = 256, disk: int = 1024):
    clock = VirtualClock()
    network = Network(clock, seed=6)
    network.add_host("gw", site="e6")
    network.add_host("n0", site="e6")
    em = EventManager(
        network,
        "gw",
        GatewayPolicy(event_fast_buffer_size=fast, event_disk_buffer_size=disk),
        drain_batch=DRAIN_BATCH,
        drain_period=DRAIN_PERIOD,
    )
    em.install_driver(SnmpTrapEventDriver())
    host = SimulatedHost(HostSpec.generate("n0", "e6", 1), clock)
    agent = SnmpAgent(host, network)
    agent.add_trap_sink(Address("gw", wire.TRAP_PORT))

    delivered = []
    em.register_listener(delivered.append)

    sent = 0
    interval = 1.0 / rate
    t_end = clock.now() + DURATION
    while clock.now() < t_end:
        agent.send_trap(wire.TRAP_LOAD_HIGH)
        sent += 1
        clock.advance(interval)
    # Grace period: let the buffers drain completely.
    clock.advance(max(60.0, sent / (DRAIN_BATCH / DRAIN_PERIOD)))
    return {
        "rate": rate,
        "sent": sent,
        "delivered": len(delivered),
        "spilled": em.stats["spilled"],
        "dropped": em.stats["dropped"],
    }


@pytest.mark.benchmark(group="E6-events")
def test_e6_trap_storm_rates(benchmark, report):
    drain_rate = DRAIN_BATCH / DRAIN_PERIOD
    rates = [drain_rate * f for f in (0.25, 0.5, 1.5, 4.0)]
    results = [run(r) for r in rates]
    rows = [
        [
            f"{r['rate']:.0f}",
            r["sent"],
            r["delivered"],
            r["spilled"],
            r["dropped"],
            f"{r['delivered'] / r['sent']:.3f}",
        ]
        for r in results
    ]
    report(
        f"E6: trap storm vs drain rate ({drain_rate:.0f} ev/s), "
        f"fast=256 disk=1024, {DURATION:g}s storm",
        *fmt_table(
            ["rate ev/s", "sent", "delivered", "spilled", "dropped", "delivery"],
            rows,
        ),
    )
    # Shape: below the drain rate nothing is lost or even spilled much;
    # above it the buffers absorb what fits and the delivery ratio holds
    # until both overflow.
    assert results[0]["delivered"] == results[0]["sent"]
    assert results[0]["dropped"] == 0
    assert results[1]["dropped"] == 0
    assert results[2]["spilled"] > 0          # past the fast buffer
    assert results[3]["dropped"] > 0          # past both buffers
    assert results[3]["delivered"] < results[3]["sent"]

    benchmark(run, drain_rate * 0.5)


@pytest.mark.benchmark(group="E6-events")
def test_e6_buffer_sizing(benchmark, report):
    """Bigger buffers turn drops into (recoverable) spills."""
    rate = DRAIN_BATCH / DRAIN_PERIOD * 4.0
    results = []
    for fast, disk in ((64, 0), (64, 512), (256, 2048), (1024, 8192)):
        r = run(rate, fast=fast, disk=disk)
        results.append([f"{fast}/{disk}", r["sent"], r["delivered"], r["dropped"]])
    report(
        "E6b: buffer sizing at 4x overload",
        *fmt_table(["fast/disk", "sent", "delivered", "dropped"], results),
    )
    drops = [r[3] for r in results]
    assert drops[0] > drops[1] > drops[3]
    assert drops[3] == 0  # big enough buffers: storm fully absorbed

    benchmark(run, rate, 256, 2048)
