"""E9 — Multi-source coordination and consolidation (paper §3.1.1).

Claim: "The RequestManager coordinates queries across multiple data
sources and consolidates results.  Furthermore, the manager is
responsible for executing queries that span real-time resource requests
and historical (or cached) data."

Workload: one ``SELECT * FROM Processor`` fanned over 2-64 SNMP sources;
plus a mixed real-time/history phase.  Metrics: virtual latency and rows
vs source count.  Expected shape: rows grow linearly with sources (the
gateway consolidates each) while latency stays roughly *flat* — the
concurrent dispatch layer overlaps the per-source round-trips, so the
query costs about one round-trip however wide the fan-out (see
test_bench_fanout.py for the serial-vs-concurrent comparison).  History
queries cost no agent traffic at all.
"""

import pytest

from repro.core.request_manager import QueryMode
from conftest import fresh_site, fmt_table

SQL = "SELECT * FROM Processor"


@pytest.mark.benchmark(group="E9-multisource")
def test_e9_fanout_scaling(benchmark, report):
    rows = []
    for n in (2, 8, 32, 64):
        site = fresh_site(name=f"e9-{n}", n_hosts=n, agents=("snmp",))
        gw = site.gateway
        urls = site.source_urls
        gw.query(urls, SQL)  # warm pools
        t0 = site.clock.now()
        result = gw.query(urls, SQL)
        elapsed = site.clock.now() - t0
        assert result.ok_sources == n
        rows.append([n, elapsed * 1000, elapsed * 1000 / n, len(result.rows)])
    report(
        "E9: consolidation fan-out over SNMP sources",
        *fmt_table(["sources", "virt ms", "virt ms/source", "rows"], rows),
    )
    # Shape: concurrent — total latency stays near one round-trip as the
    # fan-out widens (32x the sources may cost at most ~2x the time,
    # jitter included), so per-source cost *falls* with scale.
    elapsed_ms = [r[1] for r in rows]
    assert max(elapsed_ms) < min(elapsed_ms) * 2
    per_source = [r[2] for r in rows]
    assert per_source[-1] < per_source[0] / 8
    assert [r[3] for r in rows] == [r[0] for r in rows]

    site = fresh_site(name="e9k", n_hosts=8, agents=("snmp",))
    benchmark(site.gateway.query, site.source_urls, SQL)


@pytest.mark.benchmark(group="E9-multisource")
def test_e9_history_queries_cost_no_agent_traffic(benchmark, report):
    site = fresh_site(name="e9h", n_hosts=8, agents=("snmp",))
    gw = site.gateway
    for _ in range(5):
        gw.query(site.source_urls, SQL)
        site.clock.advance(10.0)
    polls_before = sum(a.requests_served for a in site.agents["snmp"])
    t0 = site.clock.now()
    result = gw.query(site.source_urls, SQL, mode=QueryMode.HISTORY)
    history_virt = site.clock.now() - t0
    polls_after = sum(a.requests_served for a in site.agents["snmp"])
    report(
        "E9b: history spans the same sources without touching agents",
        f"history rows: {len(result.rows)} (5 samples x 8 hosts), "
        f"agent polls during history query: {polls_after - polls_before}, "
        f"virtual cost: {history_virt*1000:.3f} ms",
    )
    assert len(result.rows) == 40
    assert polls_after == polls_before
    assert history_virt == 0.0

    benchmark(gw.query, site.source_urls, SQL, mode=QueryMode.HISTORY)


@pytest.mark.benchmark(group="E9-multisource")
def test_e9_partial_failure_does_not_block_consolidation(benchmark, report):
    """Failed sources degrade the answer instead of failing it, and each
    failure costs one timeout, not a cascade."""
    site = fresh_site(name="e9f", n_hosts=8, agents=("snmp",))
    gw = site.gateway
    gw.query(site.source_urls, SQL)  # warm
    for dead in site.host_names()[:2]:
        site.network.set_host_up(dead, False)
    t0 = site.clock.now()
    result = gw.query(site.source_urls, SQL)
    elapsed = site.clock.now() - t0
    report(
        "E9c: consolidation with 2/8 sources dead",
        f"ok={result.ok_sources} failed={result.failed_sources} "
        f"rows={len(result.rows)} virt={elapsed*1000:.0f} ms",
    )
    assert result.ok_sources == 6 and result.failed_sources == 2
    assert len(result.rows) == 6

    site2 = fresh_site(name="e9fk", n_hosts=4, agents=("snmp",))
    benchmark(site2.gateway.query, site2.source_urls, SQL)
