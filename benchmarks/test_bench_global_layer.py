"""E7 — Global-layer routing and inter-gateway caching (Figure 1, §4).

Claims: gateways route remote queries through the GMA-based Global
layer; "this approach is used between gateways to increase scalability by
reducing unnecessary requests".

Workload: 2-16 sites on a simulated WAN; a client at site-a fans one
query out to every other site, with the inter-gateway cache on and off.
Metrics: virtual latency per remote query, WAN requests.  Expected
shape: cold remote queries cost WAN round-trips that grow linearly with
the number of sites; with the cache a repeat fan-out costs (almost)
nothing.
"""

import pytest

from repro.gma.directory import GMADirectory
from repro.gma.global_layer import GlobalLayer
from repro.testbed import build_testbed
from conftest import fmt_table

SQL = "SELECT HostName, LoadAverage1Min FROM Processor"


def build(n_sites: int):
    network, sites = build_testbed(
        n_sites=n_sites, n_hosts=2, agents=("snmp",), seed=7
    )
    network.clock.advance(20.0)
    directory = GMADirectory(network)
    layers = [GlobalLayer(s.gateway, directory) for s in sites]
    return network, sites, layers


def fan_out(network, sites, home: GlobalLayer):
    t0 = network.clock.now()
    rows = 0
    for site in sites[1:]:
        result = home.query_remote(site.name, SQL, mode="realtime")
        rows += len(result.rows)
    return network.clock.now() - t0, rows


@pytest.mark.benchmark(group="E7-global-layer")
def test_e7_site_scaling(benchmark, report):
    rows = []
    for n in (2, 4, 8, 16):
        network, sites, layers = build(n)
        network.stats.reset()
        cold_t, got = fan_out(network, sites, layers[0])
        cold_requests = network.stats.requests
        network.stats.reset()
        warm_t, _ = fan_out(network, sites, layers[0])
        warm_requests = network.stats.requests
        rows.append([n, cold_t * 1000, cold_requests, warm_t * 1000, warm_requests, got])
    report(
        "E7: remote fan-out to all sites, cold vs inter-gateway cached",
        *fmt_table(
            ["sites", "cold virt ms", "cold reqs", "warm virt ms", "warm reqs", "rows"],
            rows,
        ),
    )
    # Shape: cold cost grows with site count; cached repeat is free.
    assert rows[-1][1] > rows[0][1] * 3
    for r in rows:
        assert r[3] == 0.0 and r[4] == 0

    network, sites, layers = build(2)
    benchmark(fan_out, network, sites, layers[0])


@pytest.mark.benchmark(group="E7-global-layer")
def test_e7_remote_vs_local_latency(benchmark, report):
    """A remote query pays WAN latency the local query does not — the
    reason the paper routes clients to their nearest gateway."""
    network, sites, layers = build(2)
    home = layers[0]
    # Local.
    t0 = network.clock.now()
    sites[0].gateway.query(sites[0].url_for("snmp"), SQL)
    local = network.clock.now() - t0
    # Remote (cold, realtime).
    t0 = network.clock.now()
    home.query_remote(sites[1].name, SQL, mode="realtime")
    remote = network.clock.now() - t0
    report(
        "E7b: local vs remote single query",
        f"local: {local*1000:.2f} virt ms, remote: {remote*1000:.2f} virt ms "
        f"({remote/local:.1f}x)",
    )
    assert remote > local * 5

    benchmark(
        lambda: home.query_remote(sites[1].name, SQL, mode="cached_ok")
    )


@pytest.mark.benchmark(group="E7-global-layer")
def test_e7_remote_cached_ok_uses_remote_gateway_cache(benchmark, report):
    """Even with the local inter-gateway cache disabled, mode=cached_ok
    lets the REMOTE gateway answer from its own query cache, halving the
    intrusion on that site's agents."""
    network, sites, layers = build(2)
    directory2 = GMADirectory(network, host="gma-dir2", port=8201)
    home = GlobalLayer(
        sites[0].gateway, directory2, producer_port=8301, cache_remote=False
    )
    GlobalLayer(sites[1].gateway, directory2, producer_port=8302)
    agent_before = sites[1].agents["snmp"][0].requests_served
    home.query_remote(sites[1].name, SQL, mode="cached_ok")
    home.query_remote(sites[1].name, SQL, mode="cached_ok")
    polls = sites[1].agents["snmp"][0].requests_served - agent_before
    report(
        "E7c: remote cached_ok",
        f"2 remote queries -> {polls} poll(s) of site-b's first agent",
    )
    assert polls <= 2  # connect probe + one data fetch at most

    benchmark(lambda: home.query_remote(sites[1].name, SQL, mode="cached_ok"))
