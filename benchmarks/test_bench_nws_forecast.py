"""E12 — NWS forecaster-bank ablation (substrate fidelity for §3.3).

The NWS driver consumes forecasts produced by a bank of competing
predictors whose cumulative MAE drives selection.  This ablation checks
the substrate reproduces the NWS result: the adaptive bank tracks (and on
mixed workloads beats) every fixed predictor, so GridRM's NetworkForecast
rows carry meaningful error estimates.

Workload: three synthetic CPU-availability regimes (smooth diurnal,
bursty episodes, noisy random walk) from the host model.  Metric: MAE of
each fixed predictor vs the adaptive bank.  Expected shape:
``adaptive <= min(fixed) * 1.05`` on every regime, while no single fixed
predictor wins all regimes.
"""

import pytest

from repro.agents.host_model import HostSpec, SimulatedHost
from repro.agents.nws import ForecasterBank, default_bank
from repro.simnet.clock import VirtualClock
from conftest import fmt_table


def series_for(regime: str, n: int = 400):
    clock = VirtualClock()
    if regime == "smooth":
        host = SimulatedHost(HostSpec.generate("smooth", "e12", 3), clock)
        return [
            min(1.0, host.snapshot(t * 30.0)["cpu"]["idle"] / 100.0) for t in range(n)
        ]
    if regime == "bursty":
        host = SimulatedHost(HostSpec.generate("bursty", "e12", 7), clock)
        return [max(0.0, 1.0 - host._episode(t * 10.0) / 2.0) for t in range(n)]
    if regime == "noisy":
        import random

        rng = random.Random(12)
        level, out = 0.5, []
        for _ in range(n):
            level = min(1.0, max(0.0, level + rng.uniform(-0.08, 0.08)))
            out.append(min(1.0, max(0.0, level + rng.uniform(-0.15, 0.15))))
        return out
    raise ValueError(regime)


def evaluate(series):
    """MAE per fixed predictor and for the adaptive bank."""
    fixed = default_bank()
    errors = {f.name: [] for f in fixed}
    for value in series:
        for f in fixed:
            pred = f.predict()
            if pred is not None:
                errors[f.name].append(abs(pred - value))
            f.observe(value)
    fixed_mae = {name: sum(e) / len(e) for name, e in errors.items() if e}

    bank = ForecasterBank()
    adaptive_errors = []
    for value in series:
        fc = bank.forecast()
        if fc.value is not None:
            adaptive_errors.append(abs(fc.value - value))
        bank.observe(value)
    adaptive_mae = sum(adaptive_errors) / len(adaptive_errors)
    return fixed_mae, adaptive_mae, bank.forecast().method


@pytest.mark.benchmark(group="E12-nws")
def test_e12_adaptive_tracks_best_fixed(benchmark, report):
    regimes = ("smooth", "bursty", "noisy")
    table = []
    winners = set()
    for regime in regimes:
        fixed_mae, adaptive_mae, method = evaluate(series_for(regime))
        best_name = min(fixed_mae, key=fixed_mae.get)
        winners.add(best_name)
        table.append(
            [
                regime,
                f"{adaptive_mae:.4f}",
                f"{fixed_mae[best_name]:.4f}",
                best_name,
                f"{fixed_mae['last_value']:.4f}",
                method,
            ]
        )
        # Shape: the adaptive bank tracks the best fixed predictor.
        assert adaptive_mae <= fixed_mae[best_name] * 1.10, regime
    report(
        "E12: adaptive predictor selection vs fixed predictors (MAE)",
        *fmt_table(
            ["regime", "adaptive", "best fixed", "who", "last_value", "selected"],
            table,
        ),
    )
    # Shape: no single fixed predictor wins every regime — that is WHY
    # NWS selects dynamically.
    assert len(winners) >= 2, winners

    benchmark(evaluate, series_for("noisy", 200))


@pytest.mark.benchmark(group="E12-nws")
def test_e12_forecast_error_reaches_clients(benchmark, report):
    """End-to-end: the selected method and its MAE surface in the GLUE
    NetworkForecast rows clients query."""
    from conftest import fresh_site

    site = fresh_site(name="e12c", n_hosts=3, agents=("nws",), warmup=600.0)
    gw = site.gateway
    result = gw.query(
        site.url_for("nws"),
        "SELECT Resource, ForecastValue, ForecastError, Method FROM NetworkForecast "
        "WHERE Resource = 'availableCpu'",
    )
    row = result.dicts()[0]
    report(
        "E12b: forecast row as a client sees it",
        f"{row}",
    )
    assert row["ForecastError"] is not None and row["ForecastError"] >= 0.0
    assert row["Method"]

    benchmark(
        gw.query,
        site.url_for("nws"),
        "SELECT Resource, ForecastValue FROM NetworkForecast",
    )
