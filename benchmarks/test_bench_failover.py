"""E10 — Driver failure policies (paper §4, Figure 8).

Claim: "If the specified driver(s) are unable to connect to the data
source for a given request, the user can determine the action that
should follow: provide notification of a connection failure, or retry
the specified drivers for n iterations, or dynamically select a new
driver from the set of registered drivers."

Workload: hosts running BOTH an SNMP and an SCMS agent, with the SNMP
agent (the preferred/cached driver's agent) killed on a fraction of
hosts.  Each policy handles 60 queries.  Metrics: success ratio and mean
virtual latency.  Expected shape: REPORT fails on affected hosts fast;
RETRY fails too but burns time; TRY_NEXT/DYNAMIC restore success at
moderate latency cost.
"""

import pytest

from repro.agents.host_model import HostSpec, SimulatedHost
from repro.agents.scms import ScmsAgent
from repro.agents.snmp import SnmpAgent
from repro.core.gateway import Gateway
from repro.core.policy import FailureAction, GatewayPolicy
from repro.simnet.clock import VirtualClock
from repro.simnet.network import Network
from conftest import fmt_table

N_HOSTS = 6
N_DEAD = 3  # hosts whose SNMP agent is killed
N_QUERIES = 60
SQL = "SELECT HostName, LoadAverage1Min FROM Processor"


def build(action: FailureAction, retries: int = 1):
    clock = VirtualClock()
    network = Network(clock, seed=10)
    policy = GatewayPolicy(
        failure_action=action,
        failure_retries=retries,
        pool_enabled=False,        # every query re-selects: stress the policy
        query_cache_ttl=0.0,
        breaker_enabled=False,     # E10 measures the *within-query* policies;
                                   # the cross-query breaker is E13's subject
    )
    gw = Gateway(network, "e10-gw", site="e10", policy=policy, install_event_drivers=False)
    hosts = []
    snmp_agents = []
    for i in range(N_HOSTS):
        name = f"e10-n{i}"
        network.add_host(name, site="e10")
        host = SimulatedHost(HostSpec.generate(name, "e10", i), clock)
        hosts.append(host)
        snmp_agents.append(SnmpAgent(host, network))
        ScmsAgent(f"c{i}", [host], network, bind_host=name)
        gw.add_source(f"jdbc://{name}/perf")  # wildcard: policy chooses
    clock.advance(10.0)
    # Warm the last-driver cache onto SNMP for every host.
    for s in gw.sources():
        gw.query(str(s.url), SQL)
    # Kill SNMP on half the hosts: the cached driver reference goes stale.
    for agent in snmp_agents[:N_DEAD]:
        network.close(agent.address)
    return network, gw


def run(action: FailureAction, retries: int = 1):
    network, gw = build(action, retries)
    ok = 0
    t0 = network.clock.now()
    urls = [str(s.url) for s in gw.sources()]
    for i in range(N_QUERIES):
        result = gw.query(urls[i % len(urls)], SQL)
        ok += result.ok_sources
    elapsed = network.clock.now() - t0
    return {
        "policy": action.value + (f"(n={retries})" if action is FailureAction.RETRY else ""),
        "success": ok / N_QUERIES,
        "virt_ms": elapsed * 1000 / N_QUERIES,
        "failovers": gw.driver_manager.stats["failovers"],
    }


@pytest.mark.benchmark(group="E10-failover")
def test_e10_policy_comparison(benchmark, report):
    results = [
        run(FailureAction.REPORT),
        run(FailureAction.RETRY, retries=2),
        run(FailureAction.TRY_NEXT),
        run(FailureAction.DYNAMIC),
    ]
    rows = [
        [r["policy"], f"{r['success']:.2f}", r["virt_ms"], r["failovers"]]
        for r in results
    ]
    report(
        f"E10: failure policies, SNMP dead on {N_DEAD}/{N_HOSTS} hosts "
        f"(SCMS still alive everywhere)",
        *fmt_table(["policy", "success ratio", "virt ms/query", "failovers"], rows),
    )
    by = {r["policy"].split("(")[0]: r for r in results}
    # Shape: report/retry cannot reach the alternate agent; try_next and
    # dynamic recover full success; retry burns the most time failing.
    assert by["report"]["success"] == pytest.approx(0.5)
    assert by["retry"]["success"] == pytest.approx(0.5)
    assert by["try_next"]["success"] == 1.0
    assert by["dynamic"]["success"] == 1.0
    assert by["retry"]["virt_ms"] > by["report"]["virt_ms"]
    assert by["dynamic"]["virt_ms"] > by["report"]["virt_ms"] * 0.5

    benchmark(run, FailureAction.DYNAMIC)


@pytest.mark.benchmark(group="E10-failover")
def test_e10_flaky_network_retry_helps(benchmark, report):
    """RETRY is the right policy for *transient* loss (vs hard death):
    with 30% packet loss, more retries convert failures into successes."""
    rows = []
    for retries in (0, 2, 5):
        clock = VirtualClock()
        network = Network(clock, seed=11)
        policy = GatewayPolicy(
            failure_action=FailureAction.RETRY,
            failure_retries=retries,
            pool_enabled=False,
            query_cache_ttl=0.0,
            default_query_timeout=0.05,
            breaker_enabled=False,  # isolate the retry budget from the breaker
        )
        gw = Gateway(network, "gw", site="e10b", policy=policy, install_event_drivers=False)
        network.add_host("flaky", site="e10b")
        host = SimulatedHost(HostSpec.generate("flaky", "e10b", 1), clock)
        SnmpAgent(host, network)
        network.set_extra_loss("flaky", 0.3)
        ok = 0
        for _ in range(40):
            result = gw.query("jdbc:snmp://flaky/x", SQL)
            ok += result.ok_sources
        rows.append([retries, f"{ok / 40:.2f}"])
    report(
        "E10b: retry budget vs 30% transient loss",
        *fmt_table(["retries", "success ratio"], rows),
    )
    assert float(rows[2][1]) > float(rows[0][1])

    benchmark(run, FailureAction.TRY_NEXT)
