"""E11 — Runtime driver (un)registration (paper §3.2.2, Table 1).

Claim: "Plug-ins are dynamic, drivers can be added or removed at runtime
without affecting normal Gateway operation."

Workload: a steady query stream while drivers are registered and
unregistered every few queries.  Metrics: per-query virtual latency with
and without churn; queries failed due to churn.  Expected shape: no
failures and no measurable latency difference.
"""

import pytest

from repro.drivers.nws_driver import NwsDriver
from conftest import fresh_site, fmt_table

N_QUERIES = 120
SQL = "SELECT HostName, LoadAverage1Min FROM Processor"


class ChurnDriver(NwsDriver):
    """An unrelated driver to register/unregister during the stream."""

    protocol = "churnproto"
    display_name = "JDBC-Churn"


def run(churn: bool):
    site = fresh_site(name=f"e11-{churn}", n_hosts=4, agents=("snmp",))
    gw = site.gateway
    urls = site.source_urls
    extra = None
    failures = 0
    latencies = []
    for i in range(N_QUERIES):
        if churn and i % 5 == 0:
            if extra is None:
                extra = ChurnDriver(site.network, gateway_host=gw.host)
                gw.register_driver(extra)
            else:
                gw.unregister_driver(extra)
                extra = None
        t0 = site.clock.now()
        result = gw.query(urls[i % len(urls)], SQL)
        latencies.append(site.clock.now() - t0)
        if result.failed_sources:
            failures += 1
        site.clock.advance(0.5)
    return {
        "churn": churn,
        "failures": failures,
        "mean_virt_ms": sum(latencies) / len(latencies) * 1000,
        "max_virt_ms": max(latencies) * 1000,
    }


@pytest.mark.benchmark(group="E11-registration")
def test_e11_registration_churn_does_not_disturb_queries(benchmark, report):
    quiet = run(False)
    churned = run(True)
    rows = [
        ["steady", quiet["failures"], quiet["mean_virt_ms"], quiet["max_virt_ms"]],
        ["churning", churned["failures"], churned["mean_virt_ms"], churned["max_virt_ms"]],
    ]
    report(
        f"E11: {N_QUERIES} queries with a driver (un)registered every 5",
        *fmt_table(["stream", "failed queries", "mean virt ms", "max virt ms"], rows),
    )
    assert churned["failures"] == 0
    assert churned["mean_virt_ms"] == pytest.approx(quiet["mean_virt_ms"], rel=0.1)

    benchmark(run, True)


@pytest.mark.benchmark(group="E11-registration")
def test_e11_reflective_registration_cost(benchmark, report):
    """Table 1's Class.forName-style load: spec string -> live driver."""
    from repro.core.driver_manager import load_driver
    from repro.simnet.clock import VirtualClock
    from repro.simnet.network import Network

    network = Network(VirtualClock())

    def load():
        return load_driver(
            "repro.drivers.snmp_driver:SnmpDriver", network, gateway_host="g"
        )

    driver = load()
    assert driver.name() == "JDBC-SNMP"
    benchmark(load)


@pytest.mark.benchmark(group="E11-registration")
def test_e11_persisted_restart_reregisters(benchmark, report):
    """Registration details are 'cached persistently within the Gateway':
    a restarted gateway comes back with the same driver set."""
    from repro.core.gateway import Gateway

    site = fresh_site(name="e11r", n_hosts=1, agents=("snmp",))
    store = dict(site.gateway.driver_manager.persistent_store)

    def restart():
        return Gateway(
            site.network,
            f"e11r-reborn-{site.clock.now()}",
            site="e11r",
            register_default_drivers=False,
            install_event_drivers=False,
            persistent_store=dict(store),
        )

    reborn = restart()
    assert set(reborn.driver_manager.driver_names()) == set(
        site.gateway.driver_manager.driver_names()
    )
    report(
        "E11c: restart restores persisted drivers",
        f"drivers restored: {len(reborn.driver_manager.driver_names())}",
    )

    counter = [0]

    def restart_unique():
        counter[0] += 1
        return Gateway(
            site.network,
            f"e11r-gw-{counter[0]}",
            site="e11r",
            register_default_drivers=False,
            install_event_drivers=False,
            persistent_store=dict(store),
        )

    benchmark(restart_unique)
