"""E5 — Gateway query cache and resource intrusion (paper §4, Figure 9).

Claim: "By utilising the cache, a heavily used GridRM Gateway can return
a view of the recent status of a site while limiting resource intrusion."

Workload: 32 simulated console users browsing the tree (each issues a
Processor query every ~5 virtual seconds for 120s) with the gateway
cache TTL swept.  Metrics: agent polls (intrusion), served-from-cache
ratio, mean staleness of answers.  Expected shape: intrusion is bounded
by duration/TTL regardless of user count; staleness grows with TTL —
the freshness/intrusion trade-off the paper describes.
"""

import pytest

from repro.core.policy import GatewayPolicy
from repro.core.request_manager import QueryMode
from conftest import fresh_site, fmt_table

N_USERS = 32
USER_PERIOD = 5.0
DURATION = 120.0
SQL = "SELECT HostName, LoadAverage1Min FROM Processor"


def run(ttl: float):
    site = fresh_site(
        name=f"e5-{ttl:g}",
        n_hosts=4,
        agents=("ganglia",),
        policy=GatewayPolicy(query_cache_ttl=ttl),
    )
    # Isolate the gateway cache from the driver's own dump cache.
    site.gateway.driver_manager.driver_by_name("JDBC-Ganglia").cache.ttl = 0.0
    agent = site.agents["ganglia"][0]
    gw = site.gateway
    url = site.url_for("ganglia")

    queries = cache_hits = 0
    staleness = []
    steps = int(DURATION / (USER_PERIOD / N_USERS))
    for step in range(steps):
        # Users are staggered: one of the 32 queries per tick.
        result = gw.query(url, SQL, mode=QueryMode.CACHED_OK)
        queries += 1
        status = result.statuses[0]
        if status.from_cache:
            cache_hits += 1
            entry = gw.cache.lookup(url, SQL)
            if entry is not None:
                staleness.append(entry.age(site.clock.now()))
        else:
            staleness.append(0.0)
        site.clock.advance(USER_PERIOD / N_USERS)
    return {
        "ttl": ttl,
        "queries": queries,
        "agent_requests": agent.requests_served,
        "cache_ratio": cache_hits / queries,
        "mean_staleness": sum(staleness) / len(staleness) if staleness else 0.0,
    }


@pytest.mark.benchmark(group="E5-gateway-cache")
def test_e5_intrusion_vs_ttl(benchmark, report):
    results = [run(ttl) for ttl in (0.0, 5.0, 15.0, 30.0, 60.0)]
    rows = [
        [
            r["ttl"],
            r["queries"],
            r["agent_requests"],
            f"{r['cache_ratio']:.2f}",
            r["mean_staleness"],
        ]
        for r in results
    ]
    report(
        f"E5: {N_USERS} users browsing for {DURATION:g}s, gateway cache TTL sweep",
        *fmt_table(
            ["ttl (s)", "client queries", "agent polls", "cache ratio", "staleness (s)"],
            rows,
        ),
    )
    by_ttl = {r["ttl"]: r for r in results}
    # Shape: intrusion bounded by ~DURATION/TTL once TTL > 0, independent
    # of the number of users; staleness grows with TTL.
    assert by_ttl[0.0]["agent_requests"] >= by_ttl[0.0]["queries"]
    for ttl in (5.0, 15.0, 30.0, 60.0):
        expected_polls = DURATION / ttl
        assert by_ttl[ttl]["agent_requests"] <= expected_polls * 2 + 4
    assert by_ttl[60.0]["mean_staleness"] > by_ttl[5.0]["mean_staleness"]
    assert by_ttl[60.0]["cache_ratio"] > 0.95

    benchmark(run, 30.0)


@pytest.mark.benchmark(group="E5-gateway-cache")
def test_e5_explicit_poll_refreshes_for_everyone(benchmark, report):
    """Figure 9's protocol: one user's explicit poll refreshes the view
    other users' refreshes see."""
    site = fresh_site(
        name="e5b", n_hosts=4, agents=("ganglia",),
        policy=GatewayPolicy(query_cache_ttl=300.0),
    )
    from repro.web.console import Console

    console = Console(site.gateway)
    console.poll(site.url_for("ganglia"), SQL)
    site.clock.advance(100.0)
    # A second user accepts cached data: no agent traffic, stale answer.
    r = site.gateway.query(site.url_for("ganglia"), SQL, mode=QueryMode.CACHED_OK)
    assert r.statuses[0].from_cache
    age_before = site.gateway.cache.lookup(site.url_for("ganglia"), SQL).age(
        site.clock.now()
    )
    # First user polls explicitly; second user now sees fresh data.
    console.poll(site.url_for("ganglia"), SQL)
    age_after = site.gateway.cache.lookup(site.url_for("ganglia"), SQL).age(
        site.clock.now()
    )
    report(
        "E5b: explicit poll refresh",
        f"staleness before poll: {age_before:.1f}s, after: {age_after:.1f}s",
    )
    assert age_before > 99.0 and age_after == 0.0

    benchmark(console.refresh)
