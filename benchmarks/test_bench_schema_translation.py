"""E8 — GLUE schema translation cost (paper §3.1.4, §3.2.3).

Claim: drivers "translate data values, so that meaning and value
correspond to the format defined by GLUE"; the SchemaManager provides
"mapping and translation services".  The homogeneous view must not cost
more than the data movement it normalises.

Workload: translate batches of native Ganglia/SNMP/SCMS records to GLUE
rows.  Metrics: wall time per row (CPU), translation share of a full
query's virtual latency, NULL (untranslatable) rates per driver.
Expected shape: translation is linear in rows and a small fraction of
end-to-end query cost; NULL rates reflect each agent's coverage.
"""

import time

import pytest

from repro.drivers.ganglia_driver import parse_ganglia_xml
from repro.glue.schema import STANDARD_SCHEMA
from conftest import fresh_site, fmt_table


def ganglia_records(n_hosts: int):
    site = fresh_site(name=f"e8-{n_hosts}", n_hosts=n_hosts, agents=("ganglia",))
    xml = site.agents["ganglia"][0].render_xml()
    records = parse_ganglia_xml(xml)
    driver = site.gateway.driver_manager.driver_by_name("JDBC-Ganglia")
    return records, driver.default_mapping()


@pytest.mark.benchmark(group="E8-translation")
def test_e8_translation_linear_in_rows(benchmark, report):
    rows = []
    for n in (4, 16, 64):
        records, mapping = ganglia_records(n)
        t0 = time.perf_counter()
        reps = 50
        for _ in range(reps):
            mapping.translate("Processor", records, STANDARD_SCHEMA)
        per_row = (time.perf_counter() - t0) / reps / len(records)
        rows.append([n, per_row * 1e6])
    report(
        "E8: GLUE translation cost (Ganglia Processor records)",
        *fmt_table(["rows", "us/row"], rows),
    )
    # Shape: per-row cost roughly flat (linear total) — within 3x across
    # a 16x batch-size range.
    costs = [r[1] for r in rows]
    assert max(costs) < min(costs) * 3

    records, mapping = ganglia_records(16)
    benchmark(mapping.translate, "Processor", records, STANDARD_SCHEMA)


@pytest.mark.benchmark(group="E8-translation")
def test_e8_translation_share_of_query(benchmark, report):
    """Translation CPU vs the query's virtual network cost."""
    site = fresh_site(name="e8s", n_hosts=8, agents=("ganglia",))
    gw = site.gateway
    # Disable the driver's dump cache so the query pays the real fetch.
    gw.driver_manager.driver_by_name("JDBC-Ganglia").cache.ttl = 0.0
    url = site.url_for("ganglia")
    gw.query(url, "SELECT * FROM Processor")  # warm connection
    t0 = site.clock.now()
    gw.query(url, "SELECT * FROM Processor")
    query_virtual = site.clock.now() - t0

    records, mapping = ganglia_records(8)
    t0 = time.perf_counter()
    for _ in range(100):
        mapping.translate("Processor", records, STANDARD_SCHEMA)
    translate_wall = (time.perf_counter() - t0) / 100

    report(
        "E8b: translation share",
        f"query (virtual, incl. network): {query_virtual*1000:.3f} ms",
        f"translation (wall, 8 rows): {translate_wall*1000:.3f} ms",
    )
    # Shape: normalisation is cheap relative to moving the XML dump.
    assert translate_wall < query_virtual

    benchmark(mapping.translate, "Processor", records, STANDARD_SCHEMA)


@pytest.mark.benchmark(group="E8-translation")
def test_e8_null_rates_by_driver(benchmark, report):
    """§3.2.3: untranslatable fields are NULL.  Coverage differs by
    agent: Ganglia knows clock speed, SNMP does not, etc."""
    site = fresh_site(
        name="e8n", n_hosts=4, agents=("snmp", "ganglia", "scms"), warmup=60.0
    )
    gw = site.gateway
    rows = []
    for kind in ("snmp", "ganglia", "scms"):
        result = gw.query(site.url_for(kind), "SELECT * FROM Processor")
        dicts = result.dicts()
        total = sum(len(r) for r in dicts)
        nulls = sum(1 for r in dicts for v in r.values() if v is None)
        rows.append([kind, len(dicts), f"{nulls / total:.2f}"])
    report(
        "E8c: NULL (untranslatable) rate per driver, Processor group",
        *fmt_table(["agent", "rows", "null rate"], rows),
    )
    by_kind = {r[0]: float(r[2]) for r in rows}
    # Shape: every driver has gaps (no agent fills Vendor/Model here
    # except none), and SNMP (no clock speed) has more than SCMS.
    assert 0.0 < by_kind["ganglia"] < 0.6
    assert by_kind["snmp"] >= by_kind["scms"]

    benchmark(gw.query, site.url_for("ganglia"), "SELECT * FROM Processor")
