"""E2 — Dynamic driver location and the last-driver cache (§3.1.3, Fig 5).

Claims: drivers are located dynamically by scanning ``accepts_url`` over
the registered set (Table 2); "for performance, the GridRMDriverManager
maintains a cache containing details of the driver last successfully used
for a data source".

Workload: wildcard-URL connections against a host running only the LAST
registered protocol, so the dynamic scan must probe every driver before
finding the right one.  Variants: cold scan on every connect (cache
disabled) vs last-driver cache (enabled).  Expected shape: cached
selection does ~1 probe; cold selection does ~#drivers probes.
"""

import pytest

from repro.agents.scms import ScmsAgent
from repro.core.policy import GatewayPolicy
from repro.simnet.clock import VirtualClock
from repro.simnet.network import Network
from repro.core.gateway import Gateway
from conftest import fmt_table

N_CONNECTS = 50


def make_rig(driver_cache_enabled: bool):
    clock = VirtualClock()
    network = Network(clock, seed=2)
    network.add_host("lonely", site="e2")
    gw = Gateway(
        network,
        "e2-gw",
        site="e2",
        policy=GatewayPolicy(driver_cache_enabled=driver_cache_enabled),
        install_event_drivers=False,
    )
    # SCMS is registered 5th of 6; its agent is the only one alive, so a
    # wildcard scan pays 4 failed probes before the hit.
    from repro.agents.host_model import HostSpec, SimulatedHost

    host = SimulatedHost(HostSpec.generate("lonely", "e2", 1), clock)
    ScmsAgent("e2", [host], network, bind_host="lonely")
    return network, gw


def connect_loop(gw, n=N_CONNECTS):
    t0 = gw.network.clock.now()
    for _ in range(n):
        conn = gw.driver_manager.open_connection("jdbc://lonely/x")
        gw.connection_manager.release(conn)
    return gw.network.clock.now() - t0


def total_probes(gw):
    return sum(
        d.stats["probes"]
        for d in gw.registry.drivers()
        if hasattr(d, "stats")
    )


@pytest.mark.benchmark(group="E2-driver-selection")
def test_e2_cached_vs_cold_selection(benchmark, report):
    results = []
    for cached in (True, False):
        network, gw = make_rig(cached)
        elapsed = connect_loop(gw)
        results.append(
            [
                "last-driver cache" if cached else "cold scan",
                elapsed * 1000 / N_CONNECTS,
                total_probes(gw) / N_CONNECTS,
                gw.driver_manager.stats["dynamic_scans"],
            ]
        )
    report(
        "E2: wildcard driver selection over 6 registered drivers",
        *fmt_table(
            ["variant", "virt ms/connect", "probes/connect", "scans"], results
        ),
    )
    cached_probes, cold_probes = results[0][2], results[1][2]
    # Shape: the cache collapses per-connect probing to ~1 (the connect
    # liveness probe); cold scans probe many drivers every time.
    assert cached_probes < 2.0
    assert cold_probes > cached_probes * 2
    assert results[0][1] < results[1][1]

    network, gw = make_rig(True)
    benchmark(connect_loop, gw, 10)


@pytest.mark.benchmark(group="E2-driver-selection")
def test_e2_cache_invalidation_recovers(benchmark, report):
    """When the cached driver stops working, DYNAMIC policy re-scans and
    finds another (paper: 'if a cached driver reference is no longer
    valid ... retry the driver, try another, report the error')."""
    from repro.agents.host_model import HostSpec, SimulatedHost
    from repro.agents.snmp import SnmpAgent

    clock = VirtualClock()
    network = Network(clock, seed=3)
    network.add_host("dual", site="e2")
    gw = Gateway(network, "e2b-gw", site="e2", install_event_drivers=False)
    host = SimulatedHost(HostSpec.generate("dual", "e2", 1), clock)
    snmp = SnmpAgent(host, network)
    ScmsAgent("e2", [host], network, bind_host="dual")

    first = gw.driver_manager.open_connection("jdbc://dual/x")
    assert first.driver.name() == "JDBC-SNMP"
    first.close()

    network.close(snmp.address)  # the cached driver's agent dies
    t0 = clock.now()
    second = gw.driver_manager.open_connection("jdbc://dual/x")
    failover_cost = clock.now() - t0
    assert second.driver.name() == "JDBC-SCMS"
    second.close()

    t1 = clock.now()
    third = gw.driver_manager.open_connection("jdbc://dual/x")
    cached_cost = clock.now() - t1
    third.close()

    report(
        "E2b: cached-driver death and recovery",
        f"failover connect: {failover_cost*1000:.3f} virt ms "
        f"(re-scan) vs re-cached: {cached_cost*1000:.3f} virt ms",
    )
    assert cached_cost < failover_cost

    benchmark(lambda: gw.driver_manager.open_connection("jdbc://dual/x").close())
