"""A1 (ablation) — native query pushdown.

DESIGN.md calls out pushdown as a driver design choice: the SQL driver
rewrites mappable WHERE clauses into native SQL and the NetLogger driver
maps equality/time constraints onto MATCH/SINCE requests.  This ablation
quantifies what turning that off would cost.

Workload: selective queries against a 2000-record accounting database
and a busy NetLogger stream, with pushdown engaged (normal) vs disabled
(fetch-all + filter locally).  Metrics: bytes on the wire and rows
shipped.  Expected shape: savings proportional to selectivity; results
identical either way.
"""

import pytest

from repro.agents.netlogger import NetLoggerAgent
from repro.agents.sqlagent import SqlAgent
from repro.drivers.netlogger_driver import NetLoggerDriver
from repro.drivers.sql_driver import SqlDriver
from repro.simnet.clock import VirtualClock
from repro.simnet.network import Network
from repro.sql.database import Database
from conftest import fmt_table


class NoPushdownSqlDriver(SqlDriver):
    """Ablated SQL driver: never ships the WHERE clause."""

    display_name = "JDBC-SQL-nopush"

    def fetch_group(self, connection, group, select):
        import dataclasses

        return super().fetch_group(
            connection, group, dataclasses.replace(select, where=None)
        )


class NoPushdownNetLoggerDriver(NetLoggerDriver):
    """Ablated NetLogger driver: always TAILs the whole window."""

    display_name = "JDBC-NetLogger-nopush"

    def fetch_group(self, connection, group, select):
        import dataclasses

        # TAIL the agent's whole retention window, filter locally.
        neutered = dataclasses.replace(select, where=None, limit=10**6)
        return super().fetch_group(connection, group, neutered)


def sql_rig():
    clock = VirtualClock()
    network = Network(clock, seed=13)
    network.add_host("db", site="a1")
    network.add_host("gateway", site="a1")
    db = Database()
    db.create_table(
        "jobs",
        [
            ("jobid", "TEXT"),
            ("owner", "TEXT"),
            ("node", "TEXT"),
            ("queue", "TEXT"),
            ("state", "TEXT"),
            ("cpusec", "REAL"),
            ("wallsec", "REAL"),
            ("nodes", "INTEGER"),
            ("submitted", "TIMESTAMP"),
        ],
    )
    db.create_table("hosts", [("name", "TEXT"), ("site", "TEXT")])
    import random

    rng = random.Random(13)
    db.insert_rows(
        "jobs",
        (
            {
                "jobid": f"j{i:05d}",
                "owner": rng.choice(["grid", "mbaker", "gsmith", "ops", "guest"]),
                "node": f"n{rng.randrange(16):02d}",
                "queue": rng.choice(["batch", "express"]),
                "state": rng.choice(["done"] * 8 + ["failed", "running"]),
                "cpusec": rng.uniform(1, 4000),
                "wallsec": rng.uniform(10, 8000),
                "nodes": 1,
                "submitted": float(i),
            }
            for i in range(2000)
        ),
    )
    SqlAgent(db, network, "db")
    return network


SELECTIVE_SQL = "SELECT JobId, CPUSeconds FROM Job WHERE Owner = 'mbaker' AND State = 'failed'"


@pytest.mark.benchmark(group="A1-pushdown")
def test_a1_sql_where_pushdown(benchmark, report):
    rows = []
    results = {}
    for label, cls in (("pushdown", SqlDriver), ("fetch-all", NoPushdownSqlDriver)):
        network = sql_rig()
        driver = cls(network, gateway_host="gateway")
        conn = driver.connect("jdbc:sql://db/acct")
        network.stats.reset()
        rs = conn.create_statement().execute_query(SELECTIVE_SQL)
        results[label] = sorted(r["JobId"] for r in rs.to_dicts())
        rows.append([label, network.stats.bytes_sent, len(rs)])
    report(
        "A1: SQL WHERE pushdown on a 2000-job accounting DB "
        "(selective owner+state query)",
        *fmt_table(["variant", "wire bytes", "rows"], rows),
        f"wire saving: {rows[1][1] / rows[0][1]:.0f}x",
    )
    # Correctness identical; pushdown moves far fewer bytes.
    assert results["pushdown"] == results["fetch-all"]
    assert rows[0][1] * 10 < rows[1][1]

    network = sql_rig()
    driver = SqlDriver(network, gateway_host="gateway")
    conn = driver.connect("jdbc:sql://db/acct")
    benchmark(lambda: conn.create_statement().execute_query(SELECTIVE_SQL))


@pytest.mark.benchmark(group="A1-pushdown")
def test_a1_netlogger_match_pushdown(benchmark, report):
    rows = []
    results = {}
    for label, cls in (
        ("MATCH pushdown", NetLoggerDriver),
        ("tail-everything", NoPushdownNetLoggerDriver),
    ):
        clock = VirtualClock()
        network = Network(clock, seed=14)
        network.add_host("n0", site="a1")
        network.add_host("gateway", site="a1")
        from repro.agents.host_model import HostSpec, SimulatedHost

        host = SimulatedHost(HostSpec.generate("n0", "a1", 5), clock)
        NetLoggerAgent(host, network, capacity=100_000)
        clock.advance(3600.0)  # an hour of instrumentation records
        driver = cls(network, gateway_host="gateway")
        conn = driver.connect("jdbc:netlogger://n0/ulm")
        network.stats.reset()
        rs = conn.create_statement().execute_query(
            "SELECT EventTime, Message FROM LogEvent WHERE EventName = 'disk.full'"
        )
        results[label] = len(rs)
        rows.append([label, network.stats.bytes_sent, len(rs)])
    report(
        "A1b: NetLogger MATCH pushdown over an hour of records",
        *fmt_table(["variant", "wire bytes", "rows"], rows),
    )
    assert results["MATCH pushdown"] == results["tail-everything"]
    assert rows[0][1] * 3 < rows[1][1]

    benchmark(lambda: sql_rig())
