"""SNMP agent substrate.

Implements enough of SNMPv1/v2c to exercise a real driver end-to-end:

* a BER-style TLV codec (INTEGER, OCTET STRING, NULL, OBJECT IDENTIFIER,
  SEQUENCE, and the PDU context tags) with genuine base-128 OID packing;
* a MIB tree of OIDs whose leaves may be constants or callables sampled
  at query time from a :class:`~repro.agents.host_model.SimulatedHost`;
* GET / GETNEXT / SET request handling with community-string auth and the
  v1 error codes (noSuchName, badValue, readOnly);
* TRAP emission to registered sinks when metric thresholds are crossed
  (the paper's Event Manager consumes these, Figure 4).

SNMP is the paper's canonical *fine-grained* source: one OID per request,
"generally little or no parsing required" (§3.3) — experiment E3 measures
exactly this against Ganglia's coarse XML dumps.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro.agents.host_model import SimulatedHost
from repro.simnet.network import Address, Network

# ----------------------------------------------------------------------
# OIDs
# ----------------------------------------------------------------------
Oid = tuple[int, ...]


def oid_parse(text: str) -> Oid:
    """Parse dotted-decimal OID text ("1.3.6.1.2.1.1.3.0")."""
    text = text.strip().lstrip(".")
    if not text:
        raise ValueError("empty OID")
    try:
        return tuple(int(part) for part in text.split("."))
    except ValueError as exc:
        raise ValueError(f"bad OID: {text!r}") from exc


def oid_str(oid: Oid) -> str:
    return ".".join(str(x) for x in oid)


# ----------------------------------------------------------------------
# BER-lite codec
# ----------------------------------------------------------------------
TAG_INTEGER = 0x02
TAG_OCTET_STRING = 0x04
TAG_NULL = 0x05
TAG_OID = 0x06
TAG_SEQUENCE = 0x30
TAG_COUNTER32 = 0x41
TAG_GAUGE32 = 0x42
TAG_TIMETICKS = 0x43
TAG_GET = 0xA0
TAG_GETNEXT = 0xA1
TAG_RESPONSE = 0xA2
TAG_SET = 0xA3
TAG_TRAP = 0xA4
TAG_GETBULK = 0xA5

#: SNMPv1 error-status codes.
ERR_NONE = 0
ERR_TOO_BIG = 1
ERR_NO_SUCH_NAME = 2
ERR_BAD_VALUE = 3
ERR_READ_ONLY = 4
ERR_GEN_ERR = 5


class SnmpCodecError(ValueError):
    """Malformed BER input."""


def _encode_length(n: int) -> bytes:
    if n < 0x80:
        return bytes([n])
    out = []
    while n:
        out.append(n & 0xFF)
        n >>= 8
    out.reverse()
    return bytes([0x80 | len(out)]) + bytes(out)


def _encode_tlv(tag: int, payload: bytes) -> bytes:
    return bytes([tag]) + _encode_length(len(payload)) + payload


def encode_integer(value: int, tag: int = TAG_INTEGER) -> bytes:
    """Two's-complement big-endian integer, minimal length."""
    if value == 0:
        return _encode_tlv(tag, b"\x00")
    negative = value < 0
    out = bytearray()
    v = value
    while True:
        out.append(v & 0xFF)
        v >>= 8
        if (v == 0 and not out[-1] & 0x80) or (v == -1 and out[-1] & 0x80):
            break
        if negative and v == -1 and not (out[-1] & 0x80):
            out.append(0xFF)
            break
    out.reverse()
    return _encode_tlv(tag, bytes(out))


def encode_string(value: str | bytes) -> bytes:
    data = value.encode() if isinstance(value, str) else bytes(value)
    return _encode_tlv(TAG_OCTET_STRING, data)


def encode_null() -> bytes:
    return _encode_tlv(TAG_NULL, b"")


def encode_oid(oid: Oid) -> bytes:
    """X.690 OID packing: first two arcs combined, base-128 thereafter."""
    if len(oid) < 2:
        raise SnmpCodecError(f"OID needs >= 2 arcs: {oid!r}")
    if oid[0] > 2 or oid[1] > 39:
        raise SnmpCodecError(f"bad leading arcs in {oid!r}")
    body = bytearray([oid[0] * 40 + oid[1]])
    for arc in oid[2:]:
        if arc < 0:
            raise SnmpCodecError(f"negative arc in {oid!r}")
        chunk = bytearray([arc & 0x7F])
        arc >>= 7
        while arc:
            chunk.append(0x80 | (arc & 0x7F))
            arc >>= 7
        chunk.reverse()
        body.extend(chunk)
    return _encode_tlv(TAG_OID, bytes(body))


def encode_sequence(*parts: bytes, tag: int = TAG_SEQUENCE) -> bytes:
    return _encode_tlv(tag, b"".join(parts))


def encode_value(value: Any) -> bytes:
    """Encode a Python value with the natural SNMP tag."""
    if value is None:
        return encode_null()
    if isinstance(value, bool):
        return encode_integer(int(value))
    if isinstance(value, int):
        return encode_integer(value)
    if isinstance(value, float):
        # SNMP has no float type; agents ship scaled integers or strings.
        return encode_string(repr(value))
    if isinstance(value, (str, bytes)):
        return encode_string(value)
    if isinstance(value, tuple):
        return encode_oid(value)
    raise SnmpCodecError(f"cannot encode {type(value).__name__}")


def _read_tlv(data: bytes, pos: int) -> tuple[int, bytes, int]:
    """Return (tag, payload, next_pos)."""
    if pos >= len(data):
        raise SnmpCodecError("truncated TLV (no tag)")
    tag = data[pos]
    pos += 1
    if pos >= len(data):
        raise SnmpCodecError("truncated TLV (no length)")
    first = data[pos]
    pos += 1
    if first < 0x80:
        length = first
    else:
        n = first & 0x7F
        if n == 0 or n > 4:
            raise SnmpCodecError(f"unsupported length-of-length {n}")
        if pos + n > len(data):
            raise SnmpCodecError("truncated long length")
        length = int.from_bytes(data[pos : pos + n], "big")
        pos += n
    if pos + length > len(data):
        raise SnmpCodecError("TLV payload overruns buffer")
    return tag, data[pos : pos + length], pos + length


def decode_value(tag: int, payload: bytes) -> Any:
    if tag in (TAG_INTEGER, TAG_COUNTER32, TAG_GAUGE32, TAG_TIMETICKS):
        return int.from_bytes(payload, "big", signed=(tag == TAG_INTEGER))
    if tag == TAG_OCTET_STRING:
        return payload.decode("utf-8", errors="replace")
    if tag == TAG_NULL:
        return None
    if tag == TAG_OID:
        return _decode_oid_body(payload)
    raise SnmpCodecError(f"cannot decode tag 0x{tag:02x}")


def _decode_oid_body(payload: bytes) -> Oid:
    if not payload:
        raise SnmpCodecError("empty OID body")
    arcs = [payload[0] // 40, payload[0] % 40]
    value = 0
    for byte in payload[1:]:
        value = (value << 7) | (byte & 0x7F)
        if not byte & 0x80:
            arcs.append(value)
            value = 0
    if value:
        raise SnmpCodecError("truncated base-128 arc")
    return tuple(arcs)


# ----------------------------------------------------------------------
# Messages
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class VarBind:
    oid: Oid
    value: Any = None


@dataclass(frozen=True)
class SnmpMessage:
    """Either a request, a response or a trap (selected by ``pdu_type``)."""

    version: int
    community: str
    pdu_type: int
    request_id: int
    error_status: int
    error_index: int
    varbinds: tuple[VarBind, ...]

    def encode(self) -> bytes:
        vb_parts = []
        for vb in self.varbinds:
            vb_parts.append(
                encode_sequence(encode_oid(vb.oid) + encode_value(vb.value))
            )
        pdu = encode_sequence(
            encode_integer(self.request_id)
            + encode_integer(self.error_status)
            + encode_integer(self.error_index)
            + encode_sequence(b"".join(vb_parts)),
            tag=self.pdu_type,
        )
        return encode_sequence(
            encode_integer(self.version) + encode_string(self.community) + pdu
        )

    @classmethod
    def decode(cls, data: bytes) -> "SnmpMessage":
        tag, body, _ = _read_tlv(data, 0)
        if tag != TAG_SEQUENCE:
            raise SnmpCodecError(f"message must be SEQUENCE, got 0x{tag:02x}")
        pos = 0
        tag, payload, pos = _read_tlv(body, pos)
        version = decode_value(tag, payload)
        tag, payload, pos = _read_tlv(body, pos)
        community = decode_value(tag, payload)
        pdu_type, pdu_body, _ = _read_tlv(body, pos)
        if pdu_type not in (
            TAG_GET,
            TAG_GETNEXT,
            TAG_RESPONSE,
            TAG_SET,
            TAG_TRAP,
            TAG_GETBULK,
        ):
            raise SnmpCodecError(f"unknown PDU type 0x{pdu_type:02x}")
        pos = 0
        tag, payload, pos = _read_tlv(pdu_body, pos)
        request_id = decode_value(tag, payload)
        tag, payload, pos = _read_tlv(pdu_body, pos)
        error_status = decode_value(tag, payload)
        tag, payload, pos = _read_tlv(pdu_body, pos)
        error_index = decode_value(tag, payload)
        tag, vb_body, pos = _read_tlv(pdu_body, pos)
        if tag != TAG_SEQUENCE:
            raise SnmpCodecError("varbind list must be SEQUENCE")
        varbinds = []
        vpos = 0
        while vpos < len(vb_body):
            tag, vb_item, vpos = _read_tlv(vb_body, vpos)
            if tag != TAG_SEQUENCE:
                raise SnmpCodecError("varbind must be SEQUENCE")
            tag, oid_payload, inner = _read_tlv(vb_item, 0)
            if tag != TAG_OID:
                raise SnmpCodecError("varbind name must be OID")
            oid = _decode_oid_body(oid_payload)
            tag, value_payload, _ = _read_tlv(vb_item, inner)
            varbinds.append(VarBind(oid=oid, value=decode_value(tag, value_payload)))
        return cls(
            version=version,
            community=community,
            pdu_type=pdu_type,
            request_id=request_id,
            error_status=error_status,
            error_index=error_index,
            varbinds=tuple(varbinds),
        )


# ----------------------------------------------------------------------
# Well-known OIDs served by the agent
# ----------------------------------------------------------------------
SYS_DESCR = oid_parse("1.3.6.1.2.1.1.1.0")
SYS_NAME = oid_parse("1.3.6.1.2.1.1.5.0")
SYS_UPTIME = oid_parse("1.3.6.1.2.1.1.3.0")
HR_SYSTEM_PROCESSES = oid_parse("1.3.6.1.2.1.25.1.6.0")
HR_SYSTEM_USERS = oid_parse("1.3.6.1.2.1.25.1.5.0")
LA_LOAD_1 = oid_parse("1.3.6.1.4.1.2021.10.1.3.1")
LA_LOAD_5 = oid_parse("1.3.6.1.4.1.2021.10.1.3.2")
LA_LOAD_15 = oid_parse("1.3.6.1.4.1.2021.10.1.3.3")
SS_CPU_USER = oid_parse("1.3.6.1.4.1.2021.11.9.0")
SS_CPU_SYSTEM = oid_parse("1.3.6.1.4.1.2021.11.10.0")
SS_CPU_IDLE = oid_parse("1.3.6.1.4.1.2021.11.11.0")
MEM_TOTAL_REAL = oid_parse("1.3.6.1.4.1.2021.4.5.0")
MEM_AVAIL_REAL = oid_parse("1.3.6.1.4.1.2021.4.6.0")
MEM_TOTAL_SWAP = oid_parse("1.3.6.1.4.1.2021.4.3.0")
MEM_AVAIL_SWAP = oid_parse("1.3.6.1.4.1.2021.4.4.0")
MEM_BUFFER = oid_parse("1.3.6.1.4.1.2021.4.14.0")
MEM_CACHED = oid_parse("1.3.6.1.4.1.2021.4.15.0")
HR_PROCESSOR_COUNT = oid_parse("1.3.6.1.2.1.25.3.3.1.2.0")  # simplified scalar
IF_DESCR = oid_parse("1.3.6.1.2.1.2.2.1.2.1")
IF_MTU = oid_parse("1.3.6.1.2.1.2.2.1.4.1")
IF_SPEED = oid_parse("1.3.6.1.2.1.2.2.1.5.1")
IF_IN_OCTETS = oid_parse("1.3.6.1.2.1.2.2.1.10.1")
IF_OUT_OCTETS = oid_parse("1.3.6.1.2.1.2.2.1.16.1")
IF_IN_ERRORS = oid_parse("1.3.6.1.2.1.2.2.1.14.1")
IF_OUT_ERRORS = oid_parse("1.3.6.1.2.1.2.2.1.20.1")
#: Enterprise OID used for the load-threshold trap the EventManager eats.
TRAP_LOAD_HIGH = oid_parse("1.3.6.1.4.1.42000.1.1")

#: hrStorageTable-style filesystem table: column OIDs are extended with a
#: 1-based row index per mounted filesystem (``<column>.<index>``).
HR_STORAGE_DESCR = oid_parse("1.3.6.1.2.1.25.2.3.1.3")
HR_STORAGE_SIZE_MB = oid_parse("1.3.6.1.2.1.25.2.3.1.5")
HR_STORAGE_USED_MB = oid_parse("1.3.6.1.2.1.25.2.3.1.6")

#: hrSWRunTable-style process table, indexed by PID.
HR_SWRUN_NAME = oid_parse("1.3.6.1.2.1.25.4.2.1.2")
HR_SWRUN_STATUS = oid_parse("1.3.6.1.2.1.25.4.2.1.7")
HR_SWRUN_CPU = oid_parse("1.3.6.1.2.1.25.5.1.1.1")  # perf CPU (percent*10)
HR_SWRUN_MEM = oid_parse("1.3.6.1.2.1.25.5.1.1.2")  # perf mem (percent*10)

#: hrSWRunStatus enumeration (RFC 2790): textual state -> integer code.
SWRUN_STATUS_CODES = {"R": 1, "S": 2, "D": 3, "Z": 4}  # running/runnable/notRunnable/invalid

SNMP_PORT = 161
TRAP_PORT = 162


class MibTree:
    """A sorted OID -> provider map with GETNEXT traversal."""

    def __init__(self) -> None:
        self._entries: dict[Oid, Callable[[], Any] | Any] = {}
        self._sorted: list[Oid] | None = None
        self._writable: set[Oid] = set()

    def put(
        self, oid: Oid, provider: Callable[[], Any] | Any, *, writable: bool = False
    ) -> None:
        self._entries[oid] = provider
        self._sorted = None
        if writable:
            self._writable.add(oid)

    def get(self, oid: Oid) -> Any:
        if oid not in self._entries:
            raise KeyError(oid_str(oid))
        provider = self._entries[oid]
        return provider() if callable(provider) else provider

    def set(self, oid: Oid, value: Any) -> None:
        if oid not in self._entries:
            raise KeyError(oid_str(oid))
        if oid not in self._writable:
            raise PermissionError(oid_str(oid))
        self._entries[oid] = value

    def remove_subtree(self, base: Oid) -> int:
        """Remove every OID under ``base``; returns how many were dropped.

        Used for dynamic conceptual tables (the process table re-registers
        itself as processes come and go)."""
        doomed = [oid for oid in self._entries if oid[: len(base)] == base]
        for oid in doomed:
            del self._entries[oid]
            self._writable.discard(oid)
        if doomed:
            self._sorted = None
        return len(doomed)

    def next_after(self, oid: Oid) -> Optional[Oid]:
        """Lexicographically next OID strictly after ``oid``."""
        if self._sorted is None:
            self._sorted = sorted(self._entries)
        import bisect

        i = bisect.bisect_right(self._sorted, oid)
        return self._sorted[i] if i < len(self._sorted) else None

    def oids(self) -> list[Oid]:
        if self._sorted is None:
            self._sorted = sorted(self._entries)
        return list(self._sorted)

    def __len__(self) -> int:
        return len(self._entries)


@dataclass
class TrapSink:
    """Where this agent sends traps (the gateway's event listener)."""

    address: Address
    community: str = "public"


class SnmpAgent:
    """An SNMP agent bound to one simulated host.

    Values are sampled live from the host model; float metrics are shipped
    SNMP-style as scaled integers (load*100, percent*10) and the driver
    descales them — a faithful source of the unit friction the GLUE
    mapping layer exists to hide.
    """

    def __init__(
        self,
        host: SimulatedHost,
        network: Network,
        *,
        community: str = "public",
        port: int = SNMP_PORT,
        load_trap_threshold: float | None = None,
        trap_check_period: float = 30.0,
    ) -> None:
        self.host = host
        self.network = network
        self.community = community
        self.address = Address(host.spec.name, port)
        self.mib = MibTree()
        self.trap_sinks: list[TrapSink] = []
        self.requests_served = 0
        self.traps_sent = 0
        self._trap_ids = 0
        self._load_trap_threshold = load_trap_threshold
        self._snapshot_cache: tuple[float, dict] | None = None
        self._populate_mib()
        network.listen(self.address, self._handle)
        if load_trap_threshold is not None:
            network.clock.call_every(trap_check_period, self._check_thresholds)

    # ------------------------------------------------------------------
    def _snap(self) -> dict:
        t = self.network.clock.now()
        if self._snapshot_cache is None or self._snapshot_cache[0] != t:
            self._snapshot_cache = (t, self.host.snapshot(t))
            self._refresh_process_table(self._snapshot_cache[1])
        return self._snapshot_cache[1]

    def _refresh_process_table(self, snapshot: dict) -> None:
        """Re-register the hrSWRun table rows for the current processes.

        Unlike the static scalars, the process table's row indices (PIDs)
        change as jobs come and go, so the subtree is rebuilt whenever a
        fresh snapshot is taken.
        """
        for base in (HR_SWRUN_NAME, HR_SWRUN_STATUS, HR_SWRUN_CPU, HR_SWRUN_MEM):
            self.mib.remove_subtree(base)
        for proc in sorted(snapshot["processes"], key=lambda p: p["pid"]):
            pid = proc["pid"]
            self.mib.put(HR_SWRUN_NAME + (pid,), proc["name"])
            self.mib.put(
                HR_SWRUN_STATUS + (pid,), SWRUN_STATUS_CODES.get(proc["state"], 4)
            )
            # Perf columns follow the SNMP scaled-integer convention.
            self.mib.put(HR_SWRUN_CPU + (pid,), int(proc["cpu_percent"] * 10))
            self.mib.put(HR_SWRUN_MEM + (pid,), int(proc["mem_percent"] * 10))

    def _populate_mib(self) -> None:
        spec = self.host.spec
        mib = self.mib
        mib.put(
            SYS_DESCR,
            lambda: f"{spec.os_name} {spec.os_release} {spec.platform} "
            f"({spec.vendor} {spec.model})",
        )
        mib.put(SYS_NAME, spec.name, writable=True)
        # sysUpTime is in TimeTicks (hundredths of a second).
        mib.put(SYS_UPTIME, lambda: int(self._snap()["os"]["uptime_s"] * 100))
        mib.put(HR_SYSTEM_PROCESSES, lambda: self._snap()["os"]["process_count"])
        mib.put(HR_SYSTEM_USERS, lambda: self._snap()["os"]["user_count"])
        mib.put(HR_PROCESSOR_COUNT, spec.cpu_count)
        # UCD laLoad convention: load average * 100 as integer.
        mib.put(LA_LOAD_1, lambda: int(self._snap()["cpu"]["load_1"] * 100))
        mib.put(LA_LOAD_5, lambda: int(self._snap()["cpu"]["load_5"] * 100))
        mib.put(LA_LOAD_15, lambda: int(self._snap()["cpu"]["load_15"] * 100))
        mib.put(SS_CPU_USER, lambda: int(self._snap()["cpu"]["user"]))
        mib.put(SS_CPU_SYSTEM, lambda: int(self._snap()["cpu"]["system"]))
        mib.put(SS_CPU_IDLE, lambda: int(self._snap()["cpu"]["idle"]))
        # UCD memory: kilobytes.
        mib.put(MEM_TOTAL_REAL, lambda: int(self._snap()["memory"]["ram_total_mb"] * 1024))
        mib.put(MEM_AVAIL_REAL, lambda: int(self._snap()["memory"]["ram_free_mb"] * 1024))
        mib.put(MEM_TOTAL_SWAP, lambda: int(self._snap()["memory"]["swap_total_mb"] * 1024))
        mib.put(MEM_AVAIL_SWAP, lambda: int(self._snap()["memory"]["swap_free_mb"] * 1024))
        mib.put(MEM_BUFFER, lambda: int(self._snap()["memory"]["buffers_mb"] * 1024))
        mib.put(MEM_CACHED, lambda: int(self._snap()["memory"]["cached_mb"] * 1024))
        mib.put(IF_DESCR, lambda: self._snap()["network"]["name"])
        mib.put(IF_MTU, lambda: self._snap()["network"]["mtu"])
        # ifSpeed is bits/second.
        mib.put(IF_SPEED, lambda: int(self._snap()["network"]["bandwidth_mbps"] * 1e6))
        mib.put(IF_IN_OCTETS, lambda: self._snap()["network"]["bytes_rx"])
        mib.put(IF_OUT_OCTETS, lambda: self._snap()["network"]["bytes_tx"])
        mib.put(IF_IN_ERRORS, lambda: self._snap()["network"]["errors_in"])
        mib.put(IF_OUT_ERRORS, lambda: self._snap()["network"]["errors_out"])
        # Filesystem table (hrStorage style): one row index per mount.
        # Sizes are served directly in MB (a real hrStorageTable uses
        # allocation units; the driver-visible unit friction is already
        # covered by the KB-based memory OIDs).
        for index in range(1, len(spec.filesystems) + 1):
            i = index - 1
            mib.put(
                HR_STORAGE_DESCR + (index,),
                lambda i=i: self._snap()["filesystems"][i]["root"],
            )
            mib.put(
                HR_STORAGE_SIZE_MB + (index,),
                lambda i=i: int(self._snap()["filesystems"][i]["size_mb"]),
            )
            mib.put(
                HR_STORAGE_USED_MB + (index,),
                lambda i=i: int(
                    self._snap()["filesystems"][i]["size_mb"]
                    - self._snap()["filesystems"][i]["avail_mb"]
                ),
            )

    # ------------------------------------------------------------------
    def _handle(self, payload: bytes, src: Address) -> bytes:
        self.requests_served += 1
        # Take a fresh snapshot per request so dynamic tables (processes)
        # are current before any GET/GETNEXT touches the MIB.
        self._snap()
        try:
            msg = SnmpMessage.decode(payload)
        except SnmpCodecError:
            # A real agent silently drops garbage; we answer genErr so the
            # driver sees a decodable failure instead of a timeout.
            return SnmpMessage(
                version=0,
                community="",
                pdu_type=TAG_RESPONSE,
                request_id=0,
                error_status=ERR_GEN_ERR,
                error_index=0,
                varbinds=(),
            ).encode()
        if msg.community != self.community:
            # v1 agents drop requests with a bad community; the driver's
            # timeout machinery then kicks in.  We model the drop as an
            # explicit genErr-free empty response to keep the virtual
            # clock cheap, tagged with an error the driver can detect.
            return SnmpMessage(
                version=msg.version,
                community=msg.community,
                pdu_type=TAG_RESPONSE,
                request_id=msg.request_id,
                error_status=ERR_GEN_ERR,
                error_index=0,
                varbinds=(),
            ).encode()

        if msg.pdu_type == TAG_GET:
            return self._do_get(msg).encode()
        if msg.pdu_type == TAG_GETNEXT:
            return self._do_getnext(msg).encode()
        if msg.pdu_type == TAG_GETBULK:
            return self._do_getbulk(msg).encode()
        if msg.pdu_type == TAG_SET:
            return self._do_set(msg).encode()
        return SnmpMessage(
            version=msg.version,
            community=msg.community,
            pdu_type=TAG_RESPONSE,
            request_id=msg.request_id,
            error_status=ERR_GEN_ERR,
            error_index=0,
            varbinds=(),
        ).encode()

    def _respond(
        self, msg: SnmpMessage, varbinds: tuple[VarBind, ...], error: int = ERR_NONE,
        error_index: int = 0,
    ) -> SnmpMessage:
        return SnmpMessage(
            version=msg.version,
            community=msg.community,
            pdu_type=TAG_RESPONSE,
            request_id=msg.request_id,
            error_status=error,
            error_index=error_index,
            varbinds=varbinds,
        )

    def _do_get(self, msg: SnmpMessage) -> SnmpMessage:
        out = []
        for i, vb in enumerate(msg.varbinds, start=1):
            try:
                out.append(VarBind(oid=vb.oid, value=self.mib.get(vb.oid)))
            except KeyError:
                return self._respond(msg, msg.varbinds, ERR_NO_SUCH_NAME, i)
        return self._respond(msg, tuple(out))

    def _do_getnext(self, msg: SnmpMessage) -> SnmpMessage:
        out = []
        for i, vb in enumerate(msg.varbinds, start=1):
            nxt = self.mib.next_after(vb.oid)
            if nxt is None:
                return self._respond(msg, msg.varbinds, ERR_NO_SUCH_NAME, i)
            out.append(VarBind(oid=nxt, value=self.mib.get(nxt)))
        return self._respond(msg, tuple(out))

    def _do_getbulk(self, msg: SnmpMessage) -> SnmpMessage:
        """SNMPv2c GetBulk: up to max-repetitions successors per varbind.

        As in RFC 1905, the request reuses the error fields:
        ``error_status`` carries non-repeaters (we support only 0) and
        ``error_index`` carries max-repetitions.  The walk simply stops
        early when the subtree ends — no error is reported.
        """
        max_repetitions = max(1, msg.error_index)
        out: list[VarBind] = []
        for vb in msg.varbinds:
            cursor = vb.oid
            for _ in range(max_repetitions):
                nxt = self.mib.next_after(cursor)
                if nxt is None:
                    break
                out.append(VarBind(oid=nxt, value=self.mib.get(nxt)))
                cursor = nxt
        return self._respond(msg, tuple(out))

    def _do_set(self, msg: SnmpMessage) -> SnmpMessage:
        # Validate all, then apply all (v1 SET is atomic).
        for i, vb in enumerate(msg.varbinds, start=1):
            if vb.oid not in set(self.mib.oids()):
                return self._respond(msg, msg.varbinds, ERR_NO_SUCH_NAME, i)
            if vb.oid not in self.mib._writable:
                return self._respond(msg, msg.varbinds, ERR_READ_ONLY, i)
        for vb in msg.varbinds:
            self.mib.set(vb.oid, vb.value)
        return self._respond(msg, msg.varbinds)

    # ------------------------------------------------------------------
    # Traps
    # ------------------------------------------------------------------
    def add_trap_sink(self, address: Address, community: str = "public") -> None:
        self.trap_sinks.append(TrapSink(address=address, community=community))

    def send_trap(self, trap_oid: Oid, varbinds: tuple[VarBind, ...] = ()) -> None:
        """Emit a trap to every sink (one-way datagrams, may be lost)."""
        self._trap_ids += 1
        for sink in self.trap_sinks:
            msg = SnmpMessage(
                version=1,
                community=sink.community,
                pdu_type=TAG_TRAP,
                request_id=self._trap_ids,
                error_status=0,
                error_index=0,
                varbinds=(VarBind(oid=trap_oid, value=oid_str(trap_oid)),) + varbinds,
            )
            self.network.send(self.host.spec.name, sink.address, msg.encode())
            self.traps_sent += 1

    def _check_thresholds(self) -> None:
        threshold = self._load_trap_threshold
        if threshold is None:
            return
        load1 = self._snap()["cpu"]["load_1"]
        if load1 > threshold:
            self.send_trap(
                TRAP_LOAD_HIGH,
                (VarBind(oid=LA_LOAD_1, value=int(load1 * 100)),),
            )
