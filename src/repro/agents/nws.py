"""Network Weather Service agent.

The real NWS runs sensors that periodically measure CPU availability and
end-to-end network latency/bandwidth, then serves *forecasts* produced by
a bank of competing predictors whose cumulative error is tracked — the
forecast reported is the prediction of whichever predictor currently has
the lowest mean absolute error.  This module implements that mechanism
for real (experiment E12 checks the adaptive bank beats any fixed
predictor), fed from the simulated host and link models.

Protocol (plain text, coarse-grained — the driver must parse key=value
responses, §3.3):

* ``FORECAST <resource> [peer]`` — one ``KEY=VALUE ...`` line.
* ``SERIES <resource> [peer] <n>`` — the last *n* ``t value`` lines.
* ``RESOURCES`` — the resources this sensor measures.
"""

from __future__ import annotations

import random
import statistics
from collections import deque
from dataclasses import dataclass
from typing import Deque, Iterable

from repro.agents.host_model import SimulatedHost, _stable_seed
from repro.simnet.network import Address, Network

NWS_PORT = 8090


# ----------------------------------------------------------------------
# Forecasters
# ----------------------------------------------------------------------
class Forecaster:
    """One predictor in the bank: predict next value, then observe it."""

    name = "base"

    def predict(self) -> float | None:
        """Forecast for the next measurement; None until warmed up."""
        raise NotImplementedError

    def observe(self, value: float) -> None:
        raise NotImplementedError


class LastValue(Forecaster):
    name = "last_value"

    def __init__(self) -> None:
        self._last: float | None = None

    def predict(self) -> float | None:
        return self._last

    def observe(self, value: float) -> None:
        self._last = value


class RunningMean(Forecaster):
    name = "running_mean"

    def __init__(self) -> None:
        self._sum = 0.0
        self._n = 0

    def predict(self) -> float | None:
        return self._sum / self._n if self._n else None

    def observe(self, value: float) -> None:
        self._sum += value
        self._n += 1


class SlidingMean(Forecaster):
    def __init__(self, window: int) -> None:
        if window < 1:
            raise ValueError(f"window must be >= 1: {window}")
        self.name = f"sliding_mean_{window}"
        self._buf: Deque[float] = deque(maxlen=window)

    def predict(self) -> float | None:
        return sum(self._buf) / len(self._buf) if self._buf else None

    def observe(self, value: float) -> None:
        self._buf.append(value)


class SlidingMedian(Forecaster):
    def __init__(self, window: int) -> None:
        if window < 1:
            raise ValueError(f"window must be >= 1: {window}")
        self.name = f"sliding_median_{window}"
        self._buf: Deque[float] = deque(maxlen=window)

    def predict(self) -> float | None:
        return statistics.median(self._buf) if self._buf else None

    def observe(self, value: float) -> None:
        self._buf.append(value)


class ExpSmooth(Forecaster):
    def __init__(self, alpha: float) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"alpha must be in (0, 1]: {alpha}")
        self.name = f"exp_smooth_{alpha:g}"
        self.alpha = alpha
        self._state: float | None = None

    def predict(self) -> float | None:
        return self._state

    def observe(self, value: float) -> None:
        if self._state is None:
            self._state = value
        else:
            self._state = self.alpha * value + (1.0 - self.alpha) * self._state


def default_bank() -> list[Forecaster]:
    """The classic NWS-style predictor mix."""
    return [
        LastValue(),
        RunningMean(),
        SlidingMean(5),
        SlidingMean(21),
        SlidingMedian(5),
        SlidingMedian(21),
        ExpSmooth(0.1),
        ExpSmooth(0.5),
    ]


@dataclass
class Forecast:
    """The bank's current best forecast for a resource."""

    value: float | None
    mae: float | None
    method: str


class ForecasterBank:
    """Competing predictors with per-predictor cumulative MAE.

    On each new measurement every predictor is first scored against it
    (updating its MAE), then shown the value.  :meth:`forecast` reports
    the prediction of the current minimum-MAE predictor — the NWS
    "dynamic predictor selection" algorithm.
    """

    def __init__(self, forecasters: Iterable[Forecaster] | None = None) -> None:
        self.forecasters = list(forecasters) if forecasters is not None else default_bank()
        if not self.forecasters:
            raise ValueError("need at least one forecaster")
        self._abs_err = [0.0] * len(self.forecasters)
        self._scored = [0] * len(self.forecasters)
        self.observations = 0

    def observe(self, value: float) -> None:
        for i, f in enumerate(self.forecasters):
            pred = f.predict()
            if pred is not None:
                self._abs_err[i] += abs(pred - value)
                self._scored[i] += 1
        for f in self.forecasters:
            f.observe(value)
        self.observations += 1

    def mae(self, index: int) -> float | None:
        if self._scored[index] == 0:
            return None
        return self._abs_err[index] / self._scored[index]

    def best_index(self) -> int | None:
        best, best_mae = None, None
        for i in range(len(self.forecasters)):
            m = self.mae(i)
            if m is None:
                continue
            if best_mae is None or m < best_mae:
                best, best_mae = i, m
        return best

    def forecast(self) -> Forecast:
        i = self.best_index()
        if i is None:
            # Not enough data to score anyone: fall back to the first
            # predictor's raw prediction.
            pred = self.forecasters[0].predict()
            return Forecast(value=pred, mae=None, method=self.forecasters[0].name)
        return Forecast(
            value=self.forecasters[i].predict(),
            mae=self.mae(i),
            method=self.forecasters[i].name,
        )


# ----------------------------------------------------------------------
# The agent
# ----------------------------------------------------------------------
class NwsAgent:
    """An NWS sensor bound to one host, with optional network probes.

    CPU availability is measured from the host model; latency/bandwidth
    series to each configured peer are synthesised from the link model
    plus measurement noise, the way a real sensor's pings would sample the
    path.
    """

    MEASUREMENT_PERIOD = 10.0

    def __init__(
        self,
        host: SimulatedHost,
        network: Network,
        *,
        peers: Iterable[str] = (),
        port: int = NWS_PORT,
        history: int = 512,
    ) -> None:
        self.host = host
        self.network = network
        self.address = Address(host.spec.name, port)
        self.requests_served = 0
        self._rng = random.Random(_stable_seed(host.spec.seed, "nws"))
        self._series: dict[str, Deque[tuple[float, float]]] = {}
        self._banks: dict[str, ForecasterBank] = {}
        self._history = history
        self._peers = list(peers)
        for res in self._resources():
            self._series[res] = deque(maxlen=history)
            self._banks[res] = ForecasterBank()
        network.listen(self.address, self._handle)
        network.clock.call_every(self.MEASUREMENT_PERIOD, self._measure, first_in=0.0)

    def _resources(self) -> list[str]:
        out = ["availableCpu", "currentCpu"]
        for p in self._peers:
            out.append(f"latencyMs:{p}")
            out.append(f"bandwidthMbps:{p}")
        return out

    # ------------------------------------------------------------------
    def _measure(self) -> None:
        t = self.network.clock.now()
        snap = self.host.snapshot(t)
        idle_frac = snap["cpu"]["idle"] / 100.0
        self._record("availableCpu", t, idle_frac)
        # currentCpu: share a new process would get (NWS semantics).
        load = max(0.0, snap["cpu"]["load_1"])
        self._record(
            "currentCpu", t, min(1.0, self.host.spec.cpu_count / (load + 1.0))
        )
        for p in self._peers:
            try:
                link = self.network.link_for(self.host.spec.name, p)
            except KeyError:
                continue
            latency = link.base_latency + self._rng.uniform(0, link.jitter or 1e-5)
            self._record(f"latencyMs:{p}", t, latency * 1000.0)
            bw = (link.bandwidth * 8 / 1e6) if link.bandwidth else 100.0
            self._record(
                f"bandwidthMbps:{p}", t, bw * self._rng.uniform(0.7, 1.0)
            )

    def _record(self, resource: str, t: float, value: float) -> None:
        self._series[resource].append((t, value))
        self._banks[resource].observe(value)

    # ------------------------------------------------------------------
    def _handle(self, payload: object, src: Address) -> str:
        self.requests_served += 1
        text = str(payload).strip()
        parts = text.split()
        if not parts:
            return "ERROR empty request"
        cmd = parts[0].upper()
        if cmd == "RESOURCES":
            return "\n".join(self._resources())
        if cmd == "FORECAST":
            resource = self._resolve(parts[1:])
            if resource is None:
                return f"ERROR unknown resource in {text!r}"
            return self._forecast_line(resource)
        if cmd == "SERIES":
            if len(parts) < 2:
                return "ERROR SERIES needs a resource"
            try:
                n = int(parts[-1])
                resource = self._resolve(parts[1:-1])
            except ValueError:
                n = 32
                resource = self._resolve(parts[1:])
            if resource is None:
                return f"ERROR unknown resource in {text!r}"
            rows = list(self._series[resource])[-n:]
            return "\n".join(f"{t:.3f} {v:.6f}" for t, v in rows)
        return f"ERROR unknown command {cmd!r}"

    def _resolve(self, parts: list[str]) -> str | None:
        if not parts:
            return None
        name = parts[0]
        if len(parts) > 1:
            name = f"{name}:{parts[1]}"
        return name if name in self._series else None

    def _forecast_line(self, resource: str) -> str:
        series = self._series[resource]
        measured = series[-1][1] if series else float("nan")
        t = series[-1][0] if series else self.network.clock.now()
        fc = self._banks[resource].forecast()
        fields = [
            f"RESOURCE={resource}",
            f"TIME={t:.3f}",
            f"MEASURED={measured:.6f}",
            f"FORECAST={fc.value:.6f}" if fc.value is not None else "FORECAST=NA",
            f"MAE={fc.mae:.6f}" if fc.mae is not None else "MAE=NA",
            f"METHOD={fc.method}",
        ]
        return " ".join(fields)
