"""Networked SQL data source.

The paper's architecture diagram (Figure 2) lists "SQL" among the data
sources behind the Abstract Data Layer: sites often keep accounting or
inventory data in a relational database.  This agent exposes a
:class:`repro.sql.database.Database` over the simulated network with a
trivial wire protocol: the request payload is a SQL string, the response
is either ``("ok", columns, rows)``, ``("count", n)`` or
``("error", message)``.

:func:`seed_site_database` builds the kind of content a 2003 Grid site
database held — a host inventory and a job accounting table — refreshed
on a schedule from the host models so queries see live data.
"""

from __future__ import annotations

import random
from typing import Any, Iterable

from repro.agents.host_model import SimulatedHost, _stable_seed
from repro.simnet.network import Address, Network
from repro.sql.database import Database
from repro.sql.errors import SqlError
from repro.sql.executor import SelectResult

SQLAGENT_PORT = 5432

Response = tuple[str, Any, Any] | tuple[str, Any]


class SqlAgent:
    """Serves a Database over the network, one SQL statement per request."""

    def __init__(
        self,
        database: Database,
        network: Network,
        bind_host: str,
        *,
        port: int = SQLAGENT_PORT,
        read_only: bool = True,
    ) -> None:
        self.database = database
        self.network = network
        self.read_only = read_only
        self.address = Address(bind_host, port)
        self.requests_served = 0
        network.listen(self.address, self._handle)

    def _handle(self, payload: object, src: Address) -> Response:
        self.requests_served += 1
        sql = str(payload)
        if self.read_only and not sql.lstrip().upper().startswith("SELECT"):
            return ("error", "data source is read-only")
        try:
            result = self.database.execute(sql)
        except SqlError as exc:
            return ("error", str(exc))
        if isinstance(result, SelectResult):
            return ("ok", result.columns, result.rows)
        return ("count", result)


def seed_site_database(
    hosts: Iterable[SimulatedHost],
    network: Network,
    *,
    refresh_period: float = 60.0,
) -> Database:
    """Create and keep refreshed a site inventory/accounting database.

    Tables:

    * ``hosts(name, site, cpus, mhz, ram_mb, os, load1, updated)`` — one
      row per node, refreshed every ``refresh_period`` virtual seconds.
    * ``jobs(jobid, owner, node, queue, state, cpusec, wallsec, nodes,
      submitted)`` — grows slowly over time, like a real accounting DB.
    """
    hosts = list(hosts)
    db = Database()
    db.create_table(
        "hosts",
        [
            ("name", "TEXT"),
            ("site", "TEXT"),
            ("cpus", "INTEGER"),
            ("mhz", "REAL"),
            ("ram_mb", "REAL"),
            ("os", "TEXT"),
            ("load1", "REAL"),
            ("updated", "TIMESTAMP"),
        ],
    )
    db.create_table(
        "jobs",
        [
            ("jobid", "TEXT"),
            ("owner", "TEXT"),
            ("node", "TEXT"),
            ("queue", "TEXT"),
            ("state", "TEXT"),
            ("cpusec", "REAL"),
            ("wallsec", "REAL"),
            ("nodes", "INTEGER"),
            ("submitted", "TIMESTAMP"),
        ],
    )
    rng = random.Random(_stable_seed("sqlagent", *(h.spec.name for h in hosts)))
    job_counter = [0]

    def refresh() -> None:
        t = network.clock.now()
        db.execute("DELETE FROM hosts")
        for h in hosts:
            snap = h.snapshot(t)
            db.insert_rows(
                "hosts",
                [
                    {
                        "name": h.spec.name,
                        "site": h.spec.site,
                        "cpus": h.spec.cpu_count,
                        "mhz": h.spec.clock_mhz,
                        "ram_mb": h.spec.ram_mb,
                        "os": h.spec.os_name,
                        "load1": snap["cpu"]["load_1"],
                        "updated": t,
                    }
                ],
            )
        # A couple of new accounting records per refresh.
        for _ in range(rng.randint(0, 2)):
            job_counter[0] += 1
            h = rng.choice(hosts)
            db.insert_rows(
                "jobs",
                [
                    {
                        "jobid": f"db{job_counter[0]:06d}",
                        "owner": rng.choice(["grid", "mbaker", "gsmith", "ops"]),
                        "node": h.spec.name,
                        "queue": rng.choice(["batch", "express", "gridq"]),
                        "state": rng.choice(["done", "done", "running", "failed"]),
                        "cpusec": rng.uniform(1, 4000),
                        "wallsec": rng.uniform(10, 8000),
                        "nodes": rng.choice([1, 1, 2, 4]),
                        "submitted": t,
                    }
                ],
            )

    refresh()
    network.clock.call_every(refresh_period, refresh)
    return db
