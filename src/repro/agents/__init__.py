"""Native data-source agents.

The paper harvests from real agents — SNMP, Ganglia, NWS, NetLogger,
SCMS, SQL databases — each speaking its own protocol and data format.
This package implements all six against the simulated network:

* :mod:`repro.agents.host_model` — the synthetic machine every agent
  observes (seeded, deterministic, time-evolving metrics).
* :mod:`repro.agents.snmp` — BER-lite SNMP agent: OID tree, GET/GETNEXT/
  SET, community auth, trap emission.  Fine-grained (per-OID) access.
* :mod:`repro.agents.ganglia` — gmond-style XML dump.  Coarse-grained:
  every query returns the whole cluster report.
* :mod:`repro.agents.nws` — Network Weather Service sensor with a real
  forecaster bank (the paper's NWS driver consumes forecasts).
* :mod:`repro.agents.netlogger` — ULM-format instrumentation log lines.
* :mod:`repro.agents.scms` — SCMS-style cluster status key-value protocol.
* :mod:`repro.agents.sqlagent` — a networked mini SQL database.

The heterogeneity is the point: drivers must normalise all of these onto
GLUE (experiments E3/E8 quantify the cost differences).
"""

from repro.agents.host_model import HostSpec, SimulatedHost

__all__ = ["HostSpec", "SimulatedHost"]
