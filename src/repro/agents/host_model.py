"""Synthetic host model.

Each :class:`SimulatedHost` is a deterministic function of (seed, time):
sampling the same host at the same virtual instant always yields the same
metrics, with no hidden state to advance.  Load is modelled as

``load(t) = base + diurnal sine + workload episodes + value noise``

where episodes are pseudo-random bursts (a batch job landing on the node)
and the noise is seeded value noise interpolated between integer-minute
knots.  All other metrics derive from load plus their own noise channels,
so CPU, memory, processes and network move plausibly together — which the
GLUE-translation tests rely on (utilisation within [0, 100], counters
monotone, free memory below total).
"""

from __future__ import annotations

import hashlib
import math
import random
from dataclasses import dataclass
from typing import Any

from repro.simnet.clock import VirtualClock

_VENDORS = [
    ("Intel", "Xeon 2.4GHz", 2400.0),
    ("Intel", "Pentium III", 1000.0),
    ("AMD", "Athlon MP", 1800.0),
    ("Sun", "UltraSPARC III", 900.0),
    ("Intel", "Itanium 2", 1300.0),
]
_OSES = [
    ("Linux", "2.4.20", "RedHat 9"),
    ("Linux", "2.4.18", "Debian 3.0"),
    ("SunOS", "5.8", "Solaris 8"),
    ("Linux", "2.6.0-test", "Fedora"),
]
_PLATFORMS = ["i686", "i686", "x86_64", "sparcv9", "ia64"]
_FS_NAMES = [("/", "ext3"), ("/home", "ext3"), ("/scratch", "ext2"), ("/tmp", "ext2")]
_PROGRAMS = ["gridftp", "mpirun", "condor_starter", "globus-job", "gatekeeper"]


def _stable_seed(*parts: Any) -> int:
    """A 64-bit seed derived stably from arbitrary parts (not Python
    ``hash``, which is salted per-process)."""
    h = hashlib.sha256("|".join(str(p) for p in parts).encode()).digest()
    return int.from_bytes(h[:8], "big")


@dataclass(frozen=True)
class HostSpec:
    """Static configuration of a simulated machine."""

    name: str
    site: str
    cpu_count: int
    clock_mhz: float
    vendor: str
    model: str
    ram_mb: float
    swap_mb: float
    os_name: str
    os_release: str
    os_version: str
    platform: str
    ip_address: str
    nic_bandwidth_mbps: float
    filesystems: tuple[tuple[str, str, float], ...]  # (root, type, size MB)
    boot_offset: float  # virtual seconds before t=0 the host booted
    base_load: float
    diurnal_amplitude: float
    seed: int

    @classmethod
    def generate(cls, name: str, site: str, seed: int) -> "HostSpec":
        """Deterministically roll a host's hardware from its identity."""
        rng = random.Random(_stable_seed("spec", name, site, seed))
        vendor, model, clock = rng.choice(_VENDORS)
        os_name, os_release, os_version = rng.choice(_OSES)
        cpu_count = rng.choice([1, 1, 2, 2, 4, 8])
        ram_mb = rng.choice([256.0, 512.0, 1024.0, 2048.0, 4096.0])
        n_fs = rng.randint(1, len(_FS_NAMES))
        filesystems = tuple(
            (root, fstype, float(rng.choice([4096, 9216, 18432, 36864])))
            for root, fstype in _FS_NAMES[:n_fs]
        )
        octets = (rng.randint(1, 254), rng.randint(1, 254))
        return cls(
            name=name,
            site=site,
            cpu_count=cpu_count,
            clock_mhz=clock * rng.choice([0.5, 1.0, 1.0, 1.5]),
            vendor=vendor,
            model=model,
            ram_mb=ram_mb,
            swap_mb=ram_mb * rng.choice([1.0, 2.0]),
            os_name=os_name,
            os_release=os_release,
            os_version=os_version,
            platform=rng.choice(_PLATFORMS),
            ip_address=f"192.168.{octets[0]}.{octets[1]}",
            nic_bandwidth_mbps=float(rng.choice([10, 100, 100, 1000])),
            filesystems=filesystems,
            boot_offset=rng.uniform(3600.0, 30 * 24 * 3600.0),
            base_load=rng.uniform(0.1, 0.6) * cpu_count,
            diurnal_amplitude=rng.uniform(0.1, 0.4) * cpu_count,
            seed=_stable_seed("host", name, site, seed),
        )


class SimulatedHost:
    """A machine whose metrics are a pure function of virtual time.

    >>> from repro.simnet import VirtualClock
    >>> clock = VirtualClock()
    >>> host = SimulatedHost(HostSpec.generate("n0", "site-a", 42), clock)
    >>> snap = host.snapshot()
    >>> 0.0 <= snap["cpu"]["utilization"] <= 100.0
    True
    """

    #: Diurnal period: compressed to 1h of virtual time so experiments see
    #: full cycles without simulating a day.
    DIURNAL_PERIOD = 3600.0

    def __init__(self, spec: HostSpec, clock: VirtualClock) -> None:
        self.spec = spec
        self.clock = clock

    # ------------------------------------------------------------------
    # Noise and load primitives
    # ------------------------------------------------------------------
    def _value_noise(self, channel: str, t: float, knot: float = 60.0) -> float:
        """Seeded value noise in [-1, 1], C0-interpolated between knots."""
        k = math.floor(t / knot)
        frac = (t / knot) - k

        def at(i: int) -> float:
            rng = random.Random(_stable_seed(self.spec.seed, channel, i))
            return rng.uniform(-1.0, 1.0)

        return at(k) * (1.0 - frac) + at(k + 1) * frac

    def _episode(self, t: float, window: float = 600.0) -> float:
        """Pseudo-random workload bursts: each window may host a job."""
        w = math.floor(t / window)
        rng = random.Random(_stable_seed(self.spec.seed, "episode", w))
        if rng.random() < 0.35:  # a job lands in this window
            intensity = rng.uniform(0.5, 2.0) * self.spec.cpu_count
            start = rng.uniform(0.0, 0.3) * window
            length = rng.uniform(0.3, 0.9) * window
            offset = t - w * window
            if start <= offset <= start + length:
                return intensity
        return 0.0

    def load_at(self, t: float) -> float:
        """Instantaneous run-queue length at virtual time ``t``."""
        s = self.spec
        diurnal = s.diurnal_amplitude * math.sin(
            2 * math.pi * t / self.DIURNAL_PERIOD + (s.seed % 628) / 100.0
        )
        noise = 0.15 * s.cpu_count * self._value_noise("load", t)
        return max(0.0, s.base_load + diurnal + self._episode(t) + noise)

    def _load_avg(self, t: float, horizon: float) -> float:
        """Approximate exponential load average by sampling the window."""
        samples = 5
        total = 0.0
        for i in range(samples):
            total += self.load_at(max(0.0, t - horizon * i / samples))
        return total / samples

    # ------------------------------------------------------------------
    # Snapshot
    # ------------------------------------------------------------------
    def snapshot(self, t: float | None = None) -> dict[str, Any]:
        """Full metric snapshot at virtual time ``t`` (default: now)."""
        t = self.clock.now() if t is None else t
        s = self.spec
        load1 = self._load_avg(t, 60.0)
        load5 = self._load_avg(t, 300.0)
        load15 = self._load_avg(t, 900.0)
        util = round(min(100.0, 100.0 * self.load_at(t) / s.cpu_count), 2)
        # Split busy time 70/30 user/system; rounding is arranged so the
        # three parts sum exactly to util (drivers re-derive util from
        # idle, so the identity must hold on the wire).
        user = round(util * 0.7, 2)
        system = round(util - user, 2)
        idle = round(100.0 - util, 2)

        mem_pressure = 0.25 + 0.5 * (util / 100.0)
        noise_mem = 0.05 * self._value_noise("mem", t)
        ram_used = s.ram_mb * min(0.97, max(0.1, mem_pressure + noise_mem))
        swap_used = s.swap_mb * min(0.8, max(0.0, (mem_pressure - 0.5)) * 0.6)
        buffers = s.ram_mb * 0.05
        cached = s.ram_mb * max(0.02, 0.2 - 0.1 * (util / 100.0))

        # Cumulative counters must be monotone in t: integrate a strictly
        # positive rate analytically (base) plus a bounded wiggle term
        # whose integral we approximate by its mean (zero).
        byte_rate = s.nic_bandwidth_mbps * 1e6 / 8.0 * 0.02
        bytes_rx = byte_rate * t * 1.3
        bytes_tx = byte_rate * t
        pkt_rx = bytes_rx / 800.0
        pkt_tx = bytes_tx / 780.0

        filesystems = []
        for root, fstype, size_mb in s.filesystems:
            frac_used = min(
                0.95,
                0.4
                + 0.1 * self._value_noise(f"fs:{root}", t, knot=3600.0)
                + t / (400 * 24 * 3600.0),  # slow fill over virtual months
            )
            filesystems.append(
                {
                    "root": root,
                    "type": fstype,
                    "size_mb": size_mb,
                    "avail_mb": size_mb * (1.0 - frac_used),
                    "read_only": False,
                }
            )

        n_proc = int(40 + 30 * (util / 100.0) + 10 * self._value_noise("proc", t))
        processes = []
        rng = random.Random(_stable_seed(s.seed, "plist", math.floor(t / 30.0)))
        for i in range(min(8, max(1, n_proc // 12))):
            processes.append(
                {
                    "pid": 1000 + rng.randint(0, 30000),
                    "name": rng.choice(_PROGRAMS),
                    "state": rng.choice(["R", "S", "S", "D"]),
                    "cpu_percent": round(rng.uniform(0.0, util), 1),
                    "mem_percent": round(rng.uniform(0.1, 20.0), 1),
                    "owner": rng.choice(["grid", "root", "mbaker", "gsmith"]),
                }
            )

        return {
            "host": s.name,
            "site": s.site,
            "time": t,
            "cpu": {
                "vendor": s.vendor,
                "model": s.model,
                "clock_mhz": s.clock_mhz,
                "count": s.cpu_count,
                "load_1": round(load1, 3),
                "load_5": round(load5, 3),
                "load_15": round(load15, 3),
                "utilization": round(util, 2),
                "user": round(user, 2),
                "system": round(system, 2),
                "idle": round(idle, 2),
            },
            "memory": {
                "ram_total_mb": s.ram_mb,
                "ram_free_mb": round(s.ram_mb - ram_used, 1),
                "swap_total_mb": s.swap_mb,
                "swap_free_mb": round(s.swap_mb - swap_used, 1),
                "buffers_mb": round(buffers, 1),
                "cached_mb": round(cached, 1),
            },
            "os": {
                "name": s.os_name,
                "release": s.os_release,
                "version": s.os_version,
                "uptime_s": t + s.boot_offset,
                "process_count": max(1, n_proc),
                "user_count": 1 + int(abs(self._value_noise("users", t)) * 5),
                "platform": s.platform,
            },
            "network": {
                "name": "eth0",
                "ip": s.ip_address,
                "mtu": 1500,
                "bandwidth_mbps": s.nic_bandwidth_mbps,
                "bytes_rx": int(bytes_rx),
                "bytes_tx": int(bytes_tx),
                "packets_rx": int(pkt_rx),
                "packets_tx": int(pkt_tx),
                "errors_in": int(t / 3600.0),
                "errors_out": int(t / 7200.0),
            },
            "filesystems": filesystems,
            "processes": processes,
        }
