"""SCMS (Scalable Cluster Management System) agent.

SCMS is a cluster-wide management system: one master node answers status
queries about every node in its cluster, in a simple key-value text
format.  Like Ganglia it is cluster-scoped, but the protocol allows
per-section requests (CPU / MEM / NODE / QUEUE), putting its granularity
between SNMP and Ganglia.

Protocol (plain text):

* ``NODES`` — the node names this master manages.
* ``CPU [node]`` / ``MEM [node]`` / ``NODE [node]`` — sections of
  ``node.key value`` lines, all nodes when no node given.
* ``QUEUE`` — batch queue entries, one ``key=value ...`` line per job.
"""

from __future__ import annotations

import random
from typing import Iterable

from repro.agents.host_model import SimulatedHost, _stable_seed
from repro.simnet.network import Address, Network

SCMS_PORT = 3000

_QUEUES = ["batch", "express", "gridq"]
_STATES = ["running", "running", "queued", "held"]


class ScmsAgent:
    """An SCMS master serving status for a set of cluster nodes."""

    def __init__(
        self,
        cluster_name: str,
        hosts: Iterable[SimulatedHost],
        network: Network,
        *,
        bind_host: str | None = None,
        port: int = SCMS_PORT,
    ) -> None:
        self.cluster_name = cluster_name
        self.hosts = list(hosts)
        if not self.hosts:
            raise ValueError("ScmsAgent needs at least one host")
        self.network = network
        bind = bind_host or self.hosts[0].spec.name
        self.address = Address(bind, port)
        self.requests_served = 0
        self._rng_seed = _stable_seed("scms", cluster_name)
        network.listen(self.address, self._handle)

    def _hosts_named(self, name: str | None) -> list[SimulatedHost]:
        if name is None:
            return self.hosts
        return [h for h in self.hosts if h.spec.name == name]

    # ------------------------------------------------------------------
    def _handle(self, payload: object, src: Address) -> str:
        self.requests_served += 1
        parts = str(payload).strip().split()
        if not parts:
            return "ERROR empty request"
        cmd = parts[0].upper()
        arg = parts[1] if len(parts) > 1 else None
        if cmd == "NODES":
            return "\n".join(h.spec.name for h in self.hosts)
        if cmd in ("CPU", "MEM", "NODE"):
            hosts = self._hosts_named(arg)
            if arg is not None and not hosts:
                return f"ERROR unknown node {arg!r}"
            t = self.network.clock.now()
            lines: list[str] = []
            for h in hosts:
                snap = h.snapshot(t)
                name = h.spec.name
                if cmd == "CPU":
                    c = snap["cpu"]
                    lines += [
                        f"{name}.ncpu {c['count']}",
                        f"{name}.mhz {c['clock_mhz']:.0f}",
                        f"{name}.load1 {c['load_1']:.2f}",
                        f"{name}.load5 {c['load_5']:.2f}",
                        f"{name}.load15 {c['load_15']:.2f}",
                        f"{name}.user {c['user']:.1f}",
                        f"{name}.sys {c['system']:.1f}",
                        f"{name}.idle {c['idle']:.1f}",
                    ]
                elif cmd == "MEM":
                    m = snap["memory"]
                    lines += [
                        f"{name}.memtotal {int(m['ram_total_mb'])}",
                        f"{name}.memfree {int(m['ram_free_mb'])}",
                        f"{name}.swaptotal {int(m['swap_total_mb'])}",
                        f"{name}.swapfree {int(m['swap_free_mb'])}",
                    ]
                else:  # NODE
                    o = snap["os"]
                    lines += [
                        f"{name}.os {o['name']}",
                        f"{name}.release {o['release']}",
                        f"{name}.arch {o['platform']}",
                        f"{name}.uptime {int(o['uptime_s'])}",
                        f"{name}.nproc {o['process_count']}",
                        f"{name}.alive 1",
                    ]
            return "\n".join(lines)
        if cmd == "QUEUE":
            return "\n".join(self._queue_lines())
        return f"ERROR unknown command {cmd!r}"

    def _queue_lines(self) -> list[str]:
        """Synthetic batch queue derived from current cluster load."""
        t = self.network.clock.now()
        rng = random.Random(_stable_seed(self._rng_seed, int(t / 60.0)))
        lines = []
        total_load = sum(h.snapshot(t)["cpu"]["load_1"] for h in self.hosts)
        n_jobs = max(0, int(total_load * 1.5) + rng.randint(0, 3))
        for i in range(n_jobs):
            host = rng.choice(self.hosts).spec.name
            lines.append(
                f"jobid=s{rng.randrange(100000)} queue={rng.choice(_QUEUES)} "
                f"owner={rng.choice(['grid', 'mbaker', 'gsmith', 'ops'])} "
                f"state={rng.choice(_STATES)} node={host} "
                f"cpusec={rng.uniform(1, 4000):.0f} wallsec={rng.uniform(10, 8000):.0f} "
                f"nodes={rng.choice([1, 1, 2, 4])}"
            )
        return lines
