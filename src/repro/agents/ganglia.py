"""Ganglia (gmond-style) agent.

Ganglia's gmond answers any TCP connection with an XML dump describing
*every* host in the cluster — the paper's canonical *coarse-grained*
source: "responses are typically coarse grained.  A greater overhead is
required to parse values from the response, which is typically XML"
(§3.3).  One agent serves a whole site, exactly like a real gmond that
has heard the multicast chatter of its peers.

The XML matches the gmond 2.5.x shape (GANGLIA_XML / CLUSTER / HOST /
METRIC elements with NAME/VAL/TYPE/UNITS attributes) and uses the
standard metric names (``load_one``, ``cpu_num``, ``mem_total`` in KB,
``bytes_in`` as a rate, ...) so the driver's unit-normalisation work is
genuine.
"""

from __future__ import annotations

from typing import Iterable

from repro.agents.host_model import SimulatedHost
from repro.simnet.network import Address, Network

GANGLIA_PORT = 8649

#: (gmond metric name, snapshot path, type, units) — snapshot path is a
#: dotted path into SimulatedHost.snapshot() plus an optional scale.
_METRICS: list[tuple[str, tuple[str, str], str, str, float]] = [
    ("load_one", ("cpu", "load_1"), "float", "", 1.0),
    ("load_five", ("cpu", "load_5"), "float", "", 1.0),
    ("load_fifteen", ("cpu", "load_15"), "float", "", 1.0),
    ("cpu_num", ("cpu", "count"), "uint16", "CPUs", 1.0),
    ("cpu_speed", ("cpu", "clock_mhz"), "uint32", "MHz", 1.0),
    ("cpu_user", ("cpu", "user"), "float", "%", 1.0),
    ("cpu_system", ("cpu", "system"), "float", "%", 1.0),
    ("cpu_idle", ("cpu", "idle"), "float", "%", 1.0),
    ("mem_total", ("memory", "ram_total_mb"), "uint32", "KB", 1024.0),
    ("mem_free", ("memory", "ram_free_mb"), "uint32", "KB", 1024.0),
    ("swap_total", ("memory", "swap_total_mb"), "uint32", "KB", 1024.0),
    ("swap_free", ("memory", "swap_free_mb"), "uint32", "KB", 1024.0),
    ("mem_buffers", ("memory", "buffers_mb"), "uint32", "KB", 1024.0),
    ("mem_cached", ("memory", "cached_mb"), "uint32", "KB", 1024.0),
    ("proc_total", ("os", "process_count"), "uint32", "", 1.0),
    ("bytes_in", ("network", "bytes_rx"), "float", "bytes/sec", 1.0),
    ("bytes_out", ("network", "bytes_tx"), "float", "bytes/sec", 1.0),
    ("pkts_in", ("network", "packets_rx"), "float", "packets/sec", 1.0),
    ("pkts_out", ("network", "packets_tx"), "float", "packets/sec", 1.0),
]

_STRING_METRICS: list[tuple[str, tuple[str, str]]] = [
    ("os_name", ("os", "name")),
    ("os_release", ("os", "release")),
    ("machine_type", ("os", "platform")),
]


def _xml_escape(text: str) -> str:
    return (
        text.replace("&", "&amp;")
        .replace("<", "&lt;")
        .replace(">", "&gt;")
        .replace('"', "&quot;")
    )


class GangliaAgent:
    """A gmond that reports every host of one cluster/site.

    Any request payload produces the full XML dump — there is no way to
    ask for a single metric, which is precisely what makes driver-side
    caching worthwhile (experiment E4).
    """

    def __init__(
        self,
        cluster_name: str,
        hosts: Iterable[SimulatedHost],
        network: Network,
        *,
        bind_host: str | None = None,
        port: int = GANGLIA_PORT,
    ) -> None:
        self.cluster_name = cluster_name
        self.hosts = list(hosts)
        if not self.hosts:
            raise ValueError("GangliaAgent needs at least one host")
        self.network = network
        bind = bind_host or self.hosts[0].spec.name
        self.address = Address(bind, port)
        self.requests_served = 0
        network.listen(self.address, self._handle)

    # ------------------------------------------------------------------
    def _handle(self, payload: object, src: Address) -> str:
        self.requests_served += 1
        return self.render_xml()

    def render_xml(self) -> str:
        """The full cluster dump at the current virtual time."""
        t = self.network.clock.now()
        out: list[str] = []
        out.append('<?xml version="1.0" encoding="ISO-8859-1"?>')
        out.append('<GANGLIA_XML VERSION="2.5.7" SOURCE="gmond">')
        out.append(
            f'<CLUSTER NAME="{_xml_escape(self.cluster_name)}" '
            f'LOCALTIME="{int(t)}" OWNER="gridrm" URL="">'
        )
        for host in self.hosts:
            snap = host.snapshot(t)
            out.append(
                f'<HOST NAME="{_xml_escape(host.spec.name)}" '
                f'IP="{host.spec.ip_address}" REPORTED="{int(t)}" '
                f'TN="0" TMAX="20" DMAX="0" GMOND_STARTED="0">'
            )
            for name, (section, key), mtype, units, scale in _METRICS:
                value = snap[section][key] * scale
                if mtype.startswith("uint"):
                    rendered = str(int(value))
                else:
                    rendered = f"{value:.2f}"
                out.append(
                    f'<METRIC NAME="{name}" VAL="{rendered}" TYPE="{mtype}" '
                    f'UNITS="{_xml_escape(units)}" TN="0" TMAX="60" DMAX="0" '
                    f'SLOPE="both" SOURCE="gmond"/>'
                )
            for name, (section, key) in _STRING_METRICS:
                out.append(
                    f'<METRIC NAME="{name}" VAL="{_xml_escape(str(snap[section][key]))}" '
                    f'TYPE="string" UNITS="" TN="0" TMAX="1200" DMAX="0" '
                    f'SLOPE="zero" SOURCE="gmond"/>'
                )
            out.append("</HOST>")
        out.append("</CLUSTER>")
        out.append("</GANGLIA_XML>")
        return "\n".join(out)
