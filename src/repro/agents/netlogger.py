"""NetLogger agent.

NetLogger instruments applications with timestamped ULM
(Universal Logger Message) records::

    DATE=20030615120001.123456 HOST=n0 PROG=gridftp LVL=Info \
    NL.EVNT=ftp.transfer.start SIZE=1048576

This agent synthesises a stream of such records from the host model's
process activity (jobs starting/finishing, transfers, load samples) into
a bounded ring buffer, and answers fine-grained queries over it — the
paper groups NetLogger with SNMP as sources where "fine grained native
requests for data are possible, with generally little or no parsing
required" (§3.3).

Protocol (plain text):

* ``TAIL <n>`` — last *n* records.
* ``SINCE <t>`` — records with virtual event time >= t.
* ``MATCH <field>=<value> [<n>]`` — last *n* (default all) records whose
  ULM field equals the value.
"""

from __future__ import annotations

import random
from collections import deque
from typing import Deque

from repro.agents.host_model import SimulatedHost, _stable_seed, _PROGRAMS
from repro.simnet.network import Address, Network

NETLOGGER_PORT = 14830

_EVENTS = [
    ("ftp.transfer.start", "Info"),
    ("ftp.transfer.end", "Info"),
    ("job.start", "Info"),
    ("job.end", "Info"),
    ("checkpoint.write", "Debug"),
    ("auth.failure", "Warning"),
    ("disk.full", "Error"),
]


def format_ulm_date(t: float) -> str:
    """Virtual seconds -> ULM DATE field (epoch-style, microsecond part)."""
    whole = int(t)
    micros = int(round((t - whole) * 1e6))
    return f"20030615{whole:010d}.{micros:06d}"


def parse_ulm_line(line: str) -> dict[str, str]:
    """Split one ULM record into its fields (best effort on bad input)."""
    out: dict[str, str] = {}
    for part in line.split():
        key, sep, value = part.partition("=")
        if sep:
            out[key] = value
    return out


class NetLoggerAgent:
    """Synthesises and serves ULM instrumentation records for one host."""

    GENERATION_PERIOD = 5.0

    def __init__(
        self,
        host: SimulatedHost,
        network: Network,
        *,
        port: int = NETLOGGER_PORT,
        capacity: int = 4096,
    ) -> None:
        self.host = host
        self.network = network
        self.address = Address(host.spec.name, port)
        self.requests_served = 0
        self._records: Deque[tuple[float, str]] = deque(maxlen=capacity)
        self._rng = random.Random(_stable_seed(host.spec.seed, "netlogger"))
        network.listen(self.address, self._handle)
        network.clock.call_every(self.GENERATION_PERIOD, self._generate, first_in=0.0)

    # ------------------------------------------------------------------
    def _generate(self) -> None:
        """Emit 0-3 records per tick, busier when the host is loaded."""
        t = self.network.clock.now()
        snap = self.host.snapshot(t)
        busy = snap["cpu"]["utilization"] / 100.0
        n = self._rng.choices([0, 1, 2, 3], weights=[1.0 - busy * 0.5, 1.0, busy, busy])[0]
        for _ in range(n):
            event, level = self._rng.choice(_EVENTS)
            prog = self._rng.choice(_PROGRAMS)
            extra = ""
            if event.startswith("ftp.transfer"):
                extra = f" SIZE={self._rng.randrange(1 << 12, 1 << 28)}"
            elif event.startswith("job"):
                extra = f" JOBID=j{self._rng.randrange(10000)}"
            line = (
                f"DATE={format_ulm_date(t)} HOST={self.host.spec.name} "
                f"PROG={prog} LVL={level} NL.EVNT={event}{extra}"
            )
            self._records.append((t, line))

    def record_count(self) -> int:
        return len(self._records)

    # ------------------------------------------------------------------
    def _handle(self, payload: object, src: Address) -> str:
        self.requests_served += 1
        text = str(payload).strip()
        parts = text.split()
        if not parts:
            return "ERROR empty request"
        cmd = parts[0].upper()
        if cmd == "TAIL":
            n = int(parts[1]) if len(parts) > 1 and parts[1].isdigit() else 32
            return "\n".join(line for _, line in list(self._records)[-n:])
        if cmd == "SINCE":
            if len(parts) < 2:
                return "ERROR SINCE needs a time"
            try:
                t0 = float(parts[1])
            except ValueError:
                return f"ERROR bad time {parts[1]!r}"
            return "\n".join(line for t, line in self._records if t >= t0)
        if cmd == "MATCH":
            if len(parts) < 2 or "=" not in parts[1]:
                return "ERROR MATCH needs field=value"
            field, _, wanted = parts[1].partition("=")
            limit = int(parts[2]) if len(parts) > 2 and parts[2].isdigit() else None
            hits = [
                line
                for _, line in self._records
                if parse_ulm_line(line).get(field) == wanted
            ]
            if limit is not None:
                hits = hits[-limit:]
            return "\n".join(hits)
        return f"ERROR unknown command {cmd!r}"
