"""Gateway-level error hierarchy."""

from __future__ import annotations


class GridRmError(Exception):
    """Base class for gateway failures."""


class SecurityError(GridRmError):
    """The principal is not allowed to perform the operation."""


class SessionError(GridRmError):
    """Missing, expired or invalid session."""


class NoSuitableDriverError(GridRmError):
    """No registered driver can serve the data source."""


class DataSourceError(GridRmError):
    """The data source failed after the configured failure policy was
    exhausted (connect errors, timeouts, driver errors)."""


class SourceQuarantinedError(DataSourceError):
    """The source's circuit breaker is OPEN: the request was
    short-circuited without touching the source (no connect attempts,
    no retry budget spent).  Cleared by a successful HALF_OPEN probe."""


class DeadlineExceededError(GridRmError):
    """The query's end-to-end deadline ran out.

    Raised by :class:`repro.core.deadline.Deadline` checks at every hop
    (gateway dispatch, driver selection, connection acquisition, native
    requests): once the remaining budget hits zero, the hop fails fast
    instead of starting work whose answer nobody is waiting for."""


class OverloadError(GridRmError):
    """The gateway refused the query to protect itself (load shed).

    Raised by the admission controller (:mod:`repro.core.admission`)
    when the gateway is saturated and the query's class is sheddable,
    and decoded off the GMA wire when a *remote* gateway shed the query.
    A shed says nothing about data-source health: it must never count as
    a circuit-breaker failure, never consume a retry-budget token, and
    never trigger a hedge — the client should back off and retry after
    ``retry_after`` (virtual seconds, 0 = unknown).
    """

    def __init__(
        self,
        message: str,
        *,
        retry_after: float = 0.0,
        query_class: str = "",
    ) -> None:
        super().__init__(message)
        #: Hint: seconds (virtual) until the pressure state could relax.
        self.retry_after = retry_after
        #: The shed query's class ("critical" / "interactive" / "batch").
        self.query_class = query_class


class PolicyError(GridRmError):
    """Invalid gateway policy configuration."""


class QueryValidationError(GridRmError):
    """The query was rejected at compile time by the GLUE validator —
    unknown group, unknown attribute or type-incompatible predicate —
    before any driver was selected or any agent traffic spent.

    ``findings`` holds the :class:`repro.analysis.findings.Finding`
    objects explaining exactly what is wrong.
    """

    def __init__(self, message: str, findings: "list | None" = None) -> None:
        super().__init__(message)
        self.findings = list(findings or [])
