"""Gateway-level error hierarchy."""

from __future__ import annotations


class GridRmError(Exception):
    """Base class for gateway failures."""


class SecurityError(GridRmError):
    """The principal is not allowed to perform the operation."""


class SessionError(GridRmError):
    """Missing, expired or invalid session."""


class NoSuitableDriverError(GridRmError):
    """No registered driver can serve the data source."""


class DataSourceError(GridRmError):
    """The data source failed after the configured failure policy was
    exhausted (connect errors, timeouts, driver errors)."""


class PolicyError(GridRmError):
    """Invalid gateway policy configuration."""
