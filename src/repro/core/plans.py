"""Plan cache: parse + validate + compile a query exactly once.

Every layer that used to re-parse SQL on its own — the request manager,
the driver translation path, the history scan — now asks the
:class:`PlanCache` instead.  An entry is keyed by the **same**
normalised-SQL text the result cache and single-flight layers already
compute (:func:`repro.core.cache.normalise_sql`), so one client query
maps to one cache key across all three subsystems.

Each entry carries the parsed AST, the compile-time GLUE validation
findings, and (when the query validated cleanly) a
:class:`~repro.sql.plan.CompiledPlan`.  Warm queries therefore skip the
lexer, the parser, the validator and all closure construction: the trace
shows a single ``plan.cache_hit`` span where a cold query shows
``plan.compile`` with ``parse`` and ``validate`` children.

Invalidation is versioned: the cache polls ``version_fn`` (wired to
``SchemaManager.version``, which bumps on every GLUE mapping change) and
drops every entry when the schema moves — a plan compiled against an old
schema must never serve a new one.  Capacity is a deterministic LRU.
"""

from __future__ import annotations

import hashlib
from typing import Any, Callable, Sequence

from repro.analysis import races
from repro.analysis.findings import Finding
from repro.analysis.query_check import validate_select
from repro.core.cache import normalise_sql
from repro.glue.schema import GlueSchema
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import NO_TRACER, Tracer
from repro.sql import ast_nodes as ast
from repro.sql.errors import SqlError
from repro.sql.parser import parse_select
from repro.sql.plan import CompiledPlan, compile_plan


class PlanEntry:
    """One cached compilation: AST + validation findings + compiled plan.

    ``plan`` is None when validation produced findings (the request
    manager rejects such queries before execution) or when the statement
    uses a shape the compiler cannot handle — callers fall back to the
    interpreted executor in that case.
    """

    __slots__ = ("select", "findings", "plan")

    def __init__(
        self,
        select: ast.Select,
        findings: list[Finding],
        plan: CompiledPlan | None,
    ) -> None:
        self.select = select
        self.findings = findings
        self.plan = plan


class PlanCache:
    """LRU cache of :class:`PlanEntry` keyed by normalised SQL.

    ``_entries`` relies on dict insertion order as recency order (the
    same idiom as :class:`~repro.core.cache.CacheController`): hits move
    the key to the back, eviction pops the front.  All counters live in
    the shared metrics registry under the ``plans.`` prefix so the
    self-monitoring driver and the console see them.
    """

    def __init__(
        self,
        schema: GlueSchema,
        *,
        version_fn: "Callable[[], Any] | None" = None,
        max_entries: int = 128,
        registry: "MetricsRegistry | None" = None,
        tracer: "Tracer | None" = None,
    ) -> None:
        if max_entries < 0:
            raise ValueError(f"negative max_entries: {max_entries!r}")
        self.schema = schema
        self.version_fn = version_fn
        self.max_entries = max_entries
        self.tracer = tracer if tracer is not None else NO_TRACER
        self._entries: dict[tuple[str, tuple[str, ...]], PlanEntry] = {}
        self._version: Any = version_fn() if version_fn is not None else None
        reg = registry if registry is not None else MetricsRegistry()
        self._hits = reg.counter("plans.hits")
        self._misses = reg.counter("plans.misses")
        self._invalidations = reg.counter("plans.invalidations")
        self._evictions = reg.counter("plans.evictions")

    @property
    def hits(self) -> int:
        return self._hits.value

    @property
    def misses(self) -> int:
        return self._misses.value

    @property
    def invalidations(self) -> int:
        return self._invalidations.value

    @property
    def evictions(self) -> int:
        return self._evictions.value

    def key(
        self, sql: str, extra_fields: Sequence[str] = ()
    ) -> tuple[str, tuple[str, ...]]:
        """Cache key: normalised SQL + the validator's extra-field set
        (a history query and a realtime query validate differently, so
        they cannot share an entry)."""
        return (normalise_sql(sql), tuple(extra_fields))

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, sql: str, *, extra_fields: Sequence[str] = ()) -> PlanEntry:
        """The entry for ``sql``, compiling on miss.

        Parse errors propagate as :class:`~repro.sql.errors.SqlError`
        (never cached: the raw text may be corrected retyped).  Entries
        with validation findings ARE cached — rejecting a doomed query
        repeatedly should not cost repeated parses.
        """
        self._check_version()
        key = self.key(sql, extra_fields)
        if races.ACTIVE is not None:
            races.ACTIVE.note(
                "plans", f"{key[0]}|{','.join(key[1])}", "r", site="PlanCache.get"
            )
        entry = self._entries.get(key)
        if entry is not None:
            self._hits.add(1)
            with self.tracer.span("plan.cache_hit"):
                pass
            self._entries.pop(key)
            self._entries[key] = entry
            return entry
        self._misses.add(1)
        with self.tracer.span("plan.compile"):
            with self.tracer.span("parse"):
                select = parse_select(sql)
            with self.tracer.span("validate"):
                findings = validate_select(
                    select, self.schema, extra_fields=extra_fields
                )
            plan: CompiledPlan | None = None
            if not findings:
                try:
                    plan = compile_plan(select)
                except (SqlError, RecursionError):
                    # Shape the compiler cannot hold — callers use the
                    # interpreted executor for this statement.
                    plan = None
        entry = PlanEntry(select, findings, plan)
        if races.ACTIVE is not None:
            digest = hashlib.sha256(repr(key).encode()).hexdigest()[:16]
            races.ACTIVE.note(
                "plans",
                f"{key[0]}|{','.join(key[1])}",
                "w",
                digest=digest,
                site="PlanCache.get",
            )
        self._entries[key] = entry
        if self.max_entries:
            while len(self._entries) > self.max_entries:
                oldest = next(iter(self._entries))
                del self._entries[oldest]
                self._evictions.add(1)
        return entry

    def _check_version(self) -> None:
        """Drop everything when the GLUE schema version moved."""
        if self.version_fn is None:
            return
        current = self.version_fn()
        if current != self._version:
            dropped = len(self._entries)
            self._entries.clear()
            if dropped:
                self._invalidations.add(dropped)
            self._version = current

    def invalidate(self) -> int:
        """Explicitly drop all entries; returns how many were dropped."""
        dropped = len(self._entries)
        self._entries.clear()
        if dropped:
            self._invalidations.add(dropped)
        return dropped
