"""Gateway policy.

The paper's Figure 2 shows a "Gateway Policy and Schemas" module feeding
the Local layer; §3.1.3 and §4 enumerate the configurable behaviours:
what to do when a cached driver reference is no longer valid or a
preferred driver fails (retry / try another / report the error), cache
lifetimes, and connection pooling.  :class:`GatewayPolicy` gathers them
in one validated value object.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.core.errors import PolicyError


class FailureAction(enum.Enum):
    """What the driver manager does when the selected driver(s) fail
    (paper §4: notify / retry n iterations / dynamically select anew)."""

    REPORT = "report"
    RETRY = "retry"
    TRY_NEXT = "try_next"
    DYNAMIC = "dynamic"


@dataclass
class GatewayPolicy:
    """All tunables of one gateway.

    Attributes:
        query_cache_ttl: lifetime of gateway-level query results backing
            the tree view and remote-gateway answers (s, virtual).
        history_enabled: record every real-time result into the internal
            database for historical queries.
        history_max_rows_per_group: ring-buffer bound per history table.
        pool_max_per_source: connection-pool capacity per data source.
        pool_idle_ttl: pooled connections idle longer than this are
            revalidated before reuse (s, virtual).
        pool_enabled: disable to measure unpooled behaviour (E1).
        failure_action: driver failure policy (paper §4).
        failure_retries: retry budget when ``failure_action`` is RETRY.
        driver_cache_enabled: remember the last driver that worked for a
            source (paper §3.1.3) — disable for the E2 ablation.
        security_enabled: enforce CGSL/FGSL checks.
        session_ttl: idle lifetime of client sessions (s, virtual).
        default_query_timeout: per-source deadline for native requests.
        event_fast_buffer_size: capacity of the EventManager's in-memory
            fast buffer ("ensures events are not lost in a busy system").
        event_disk_buffer_size: capacity of the spill buffer behind it.
        event_history_enabled: record events into the history database.
        breaker_enabled: per-source circuit breakers — remember failures
            across queries and short-circuit requests to sources that
            keep failing (see :mod:`repro.core.health`).
        breaker_failure_threshold: consecutive failure observations that
            trip a CLOSED breaker OPEN.
        breaker_base_backoff: OPEN duration after the first trip
            (s, virtual); doubles per consecutive trip, with jitter.
        breaker_max_backoff: ceiling on the (jittered) backoff — a
            tripped source is always re-probed within this bound.
        breaker_half_open_probes: consecutive successes required in
            HALF_OPEN to close the breaker again.
        serve_stale_on_open: when a breaker is OPEN, answer from the
            query cache even past its TTL, flagging the result
            ``degraded`` — a stale view beats an error (paper §4's
            "limit resource intrusion" cache, stretched to faults).
        query_cache_max_entries: LRU bound on the gateway query cache —
            inserting past it evicts the least recently used entry, so a
            long-running gateway's cache cannot grow without limit
            (0 = unbounded).
        fanout_enabled: dispatch multi-source / multi-group / multi-site
            sub-queries concurrently in virtual time (elapsed = max of
            branch delays).  Disable for the serial-baseline ablation.
        max_concurrent_per_source: cap on simultaneously in-flight
            requests to one data source (or remote gateway), so a
            gateway fan-out cannot stampede an agent (0 = unlimited).
        singleflight_enabled: coalesce identical concurrently in-flight
            ``(source url, normalised SQL)`` requests into one agent
            round-trip shared by every waiter.
        default_deadline: end-to-end budget stamped on queries that
            arrive without one (s, virtual); 0 disables implicit
            deadlines.  See :mod:`repro.core.deadline`.
        retry_attempts: max attempts per source per query, including the
            first (1 = no query-level retries).  Only transient failures
            against idempotent drivers are retried.
        retry_budget: retry tokens shared by all sources of one query —
            the anti-amplification cap (see :mod:`repro.core.retry`).
        retry_base_backoff: jittered-exponential backoff base between
            attempts (s, virtual).
        retry_max_backoff: ceiling on the per-attempt backoff.
        hedge_enabled: after a configurable latency percentile elapses
            with no answer, fire a second request to the same source and
            take whichever responds first ("The Tail at Scale" hedging).
            Only idempotent drivers are hedged.
        hedge_percentile: percentile of the source's observed latencies
            that arms the hedge timer (95 = hedge the slowest 5%).
        hedge_min_samples: observed latencies required per source before
            hedging activates (cold sources are never hedged).
        hedge_min_delay: floor on the hedge timer, so very fast sources
            do not double their traffic on micro-jitter.
        tracing_enabled: record one span per hop of every query into the
            gateway's :class:`~repro.obs.trace.Tracer` (console
            ``trace_panel``, ``GET /trace/<qid>``, ``repro trace``).
        trace_max_traces: finished traces retained in the tracer's ring
            buffer before the oldest are dropped.
        history_durable: persist history through a write-ahead log and
            checkpointed segments (:mod:`repro.storage`) so recorded
            rows survive a gateway crash.  Requires a disk to be passed
            to the gateway; off by default (the original in-memory
            ring).
        history_fsync_interval: group-commit interval — WAL appends per
            fsync.  1 fsyncs every record (safest, slowest); larger
            values amortise the fsync at the cost of a longer
            unacknowledged tail lost on crash.
        history_checkpoint_interval: seconds (virtual) between periodic
            checkpoints that seal the memtable into segments and
            truncate the WAL; 0 disables the periodic task (checkpoints
            then happen only at shutdown or on demand).
        history_retention_age: drop sealed history segments whose newest
            row is older than this many virtual seconds at checkpoint
            time; 0 disables age-based retention (ring bound only).
        admission_enabled: gateway-entry admission control — bounded
            priority queue, doomed-on-dequeue drops, brownout/shed state
            machine (:mod:`repro.core.admission`).  Off by default so
            existing replay signatures and golden traces are untouched.
        admission_queue_limit: capacity of the gateway admission queue;
            a full queue sheds sheddable classes with
            :class:`~repro.core.errors.OverloadError`.
        admission_batch_queue_share: fraction of the admission queue
            BATCH-class queries may occupy before being shed (the
            priority bound that sheds batch first).
        admission_initial_limit: starting gateway-wide concurrency limit
            of the admission controller's gradient limiter.
        adaptive_concurrency: replace the static per-source caps in the
            fan-out dispatcher with AIMD gradient limiters (probe up
            under low latency, multiplicative backoff when latency
            inflates or attempts fail).
        limiter_floor: lower clamp on every adaptive concurrency limit.
        limiter_ceiling: upper clamp on every adaptive concurrency
            limit.
        limiter_tolerance: an epoch whose mean latency exceeds
            ``tolerance x baseline`` counts as congestion (backoff).
        limiter_backoff: multiplicative decrease factor applied to the
            limit on congestion (0 < backoff < 1).
        limiter_window: latency observations folded per limiter epoch.
        brownout_enter_pressure: admission-queue fill fraction at which
            the gateway enters BROWNOUT (serve stale instead of
            dispatching for sheddable classes).
        shed_enter_pressure: fill fraction at which the gateway enters
            SHED (refuse BATCH outright).
        pressure_min_dwell: minimum virtual seconds in a pressure state
            before de-escalating (hysteresis against flapping).
        default_query_class: class stamped on queries that arrive
            without one ("critical" / "interactive" / "batch").
        subscription_buffer_limit: per-subscription bounded buffer for
            continuous-query streams (backpressure for slow consumers).
        streaming_enabled: the continuous-SQL streaming plane
            (:mod:`repro.gma.streams`) — register a SELECT once, receive
            matching tuples on every publish.  Off by default so
            existing replay signatures and golden traces are untouched.
        stream_max_subscriptions: cap on live continuous queries per
            hub; registrations past it are refused with a typed shed.
        stream_default_lease: lease stamped on registrations that arrive
            without one (s, virtual).
        stream_sweep_period: cadence of the hub's lease sweeper; a swept
            registration stays renew-resurrectable for one period
            (tombstone grace).
        stream_replay_limit: newest history rows an attach replay of a
            ``history``-flavour subscription may ship.
    """

    query_cache_ttl: float = 30.0
    query_cache_max_entries: int = 4096
    fanout_enabled: bool = True
    max_concurrent_per_source: int = 4
    singleflight_enabled: bool = True
    history_enabled: bool = True
    history_max_rows_per_group: int = 100_000
    pool_max_per_source: int = 8
    pool_idle_ttl: float = 120.0
    pool_enabled: bool = True
    failure_action: FailureAction = FailureAction.DYNAMIC
    failure_retries: int = 1
    driver_cache_enabled: bool = True
    security_enabled: bool = False
    session_ttl: float = 3600.0
    default_query_timeout: float = 5.0
    event_fast_buffer_size: int = 1024
    event_disk_buffer_size: int = 65536
    event_history_enabled: bool = True
    breaker_enabled: bool = True
    breaker_failure_threshold: int = 3
    breaker_base_backoff: float = 5.0
    breaker_max_backoff: float = 300.0
    breaker_half_open_probes: int = 1
    serve_stale_on_open: bool = True
    default_deadline: float = 0.0
    retry_attempts: int = 1
    retry_budget: int = 3
    retry_base_backoff: float = 0.05
    retry_max_backoff: float = 2.0
    hedge_enabled: bool = False
    hedge_percentile: float = 95.0
    hedge_min_samples: int = 8
    hedge_min_delay: float = 0.005
    tracing_enabled: bool = True
    trace_max_traces: int = 256
    history_durable: bool = False
    history_fsync_interval: int = 8
    history_checkpoint_interval: float = 600.0
    history_retention_age: float = 0.0
    admission_enabled: bool = False
    admission_queue_limit: int = 32
    admission_batch_queue_share: float = 0.5
    admission_initial_limit: int = 8
    adaptive_concurrency: bool = False
    limiter_floor: int = 1
    limiter_ceiling: int = 64
    limiter_tolerance: float = 2.0
    limiter_backoff: float = 0.8
    limiter_window: int = 16
    brownout_enter_pressure: float = 0.25
    shed_enter_pressure: float = 0.75
    pressure_min_dwell: float = 5.0
    default_query_class: str = "interactive"
    subscription_buffer_limit: int = 256
    streaming_enabled: bool = False
    stream_max_subscriptions: int = 1024
    stream_default_lease: float = 300.0
    stream_sweep_period: float = 60.0
    stream_replay_limit: int = 256

    def __post_init__(self) -> None:
        if self.query_cache_ttl < 0:
            raise PolicyError(f"query_cache_ttl < 0: {self.query_cache_ttl!r}")
        if self.query_cache_max_entries < 0:
            raise PolicyError(
                f"query_cache_max_entries < 0: {self.query_cache_max_entries!r}"
            )
        if self.max_concurrent_per_source < 0:
            raise PolicyError(
                f"max_concurrent_per_source < 0: {self.max_concurrent_per_source!r}"
            )
        if self.pool_max_per_source < 1:
            raise PolicyError(
                f"pool_max_per_source must be >= 1: {self.pool_max_per_source!r}"
            )
        if self.pool_idle_ttl <= 0:
            raise PolicyError(f"pool_idle_ttl must be > 0: {self.pool_idle_ttl!r}")
        if self.failure_retries < 0:
            raise PolicyError(f"failure_retries < 0: {self.failure_retries!r}")
        if self.session_ttl <= 0:
            raise PolicyError(f"session_ttl must be > 0: {self.session_ttl!r}")
        if self.default_query_timeout <= 0:
            raise PolicyError(
                f"default_query_timeout must be > 0: {self.default_query_timeout!r}"
            )
        if self.event_fast_buffer_size < 1:
            raise PolicyError(
                f"event_fast_buffer_size must be >= 1: {self.event_fast_buffer_size!r}"
            )
        if self.event_disk_buffer_size < 0:
            raise PolicyError(
                f"event_disk_buffer_size < 0: {self.event_disk_buffer_size!r}"
            )
        if self.history_max_rows_per_group < 1:
            raise PolicyError(
                "history_max_rows_per_group must be >= 1: "
                f"{self.history_max_rows_per_group!r}"
            )
        if self.breaker_failure_threshold < 1:
            raise PolicyError(
                "breaker_failure_threshold must be >= 1: "
                f"{self.breaker_failure_threshold!r}"
            )
        if self.breaker_base_backoff <= 0:
            raise PolicyError(
                f"breaker_base_backoff must be > 0: {self.breaker_base_backoff!r}"
            )
        if self.breaker_max_backoff < self.breaker_base_backoff:
            raise PolicyError(
                "breaker_max_backoff must be >= breaker_base_backoff: "
                f"{self.breaker_max_backoff!r} < {self.breaker_base_backoff!r}"
            )
        if self.breaker_half_open_probes < 1:
            raise PolicyError(
                "breaker_half_open_probes must be >= 1: "
                f"{self.breaker_half_open_probes!r}"
            )
        if self.default_deadline < 0:
            raise PolicyError(f"default_deadline < 0: {self.default_deadline!r}")
        if self.retry_attempts < 1:
            raise PolicyError(f"retry_attempts must be >= 1: {self.retry_attempts!r}")
        if self.retry_budget < 0:
            raise PolicyError(f"retry_budget < 0: {self.retry_budget!r}")
        if self.retry_base_backoff <= 0:
            raise PolicyError(
                f"retry_base_backoff must be > 0: {self.retry_base_backoff!r}"
            )
        if self.retry_max_backoff < self.retry_base_backoff:
            raise PolicyError(
                "retry_max_backoff must be >= retry_base_backoff: "
                f"{self.retry_max_backoff!r} < {self.retry_base_backoff!r}"
            )
        if not 0.0 < self.hedge_percentile <= 100.0:
            raise PolicyError(
                f"hedge_percentile must be in (0, 100]: {self.hedge_percentile!r}"
            )
        if self.hedge_min_samples < 1:
            raise PolicyError(
                f"hedge_min_samples must be >= 1: {self.hedge_min_samples!r}"
            )
        if self.hedge_min_delay < 0:
            raise PolicyError(f"hedge_min_delay < 0: {self.hedge_min_delay!r}")
        if self.trace_max_traces < 1:
            raise PolicyError(
                f"trace_max_traces must be >= 1: {self.trace_max_traces!r}"
            )
        if self.history_fsync_interval < 1:
            raise PolicyError(
                f"history_fsync_interval must be >= 1: {self.history_fsync_interval!r}"
            )
        if self.history_checkpoint_interval < 0:
            raise PolicyError(
                "history_checkpoint_interval < 0: "
                f"{self.history_checkpoint_interval!r}"
            )
        if self.history_retention_age < 0:
            raise PolicyError(
                f"history_retention_age < 0: {self.history_retention_age!r}"
            )
        if self.admission_queue_limit < 1:
            raise PolicyError(
                f"admission_queue_limit must be >= 1: {self.admission_queue_limit!r}"
            )
        if not 0.0 < self.admission_batch_queue_share <= 1.0:
            raise PolicyError(
                "admission_batch_queue_share must be in (0, 1]: "
                f"{self.admission_batch_queue_share!r}"
            )
        if self.admission_initial_limit < 1:
            raise PolicyError(
                "admission_initial_limit must be >= 1: "
                f"{self.admission_initial_limit!r}"
            )
        if self.limiter_floor < 1:
            raise PolicyError(f"limiter_floor must be >= 1: {self.limiter_floor!r}")
        if self.limiter_ceiling < self.limiter_floor:
            raise PolicyError(
                "limiter_ceiling must be >= limiter_floor: "
                f"{self.limiter_ceiling!r} < {self.limiter_floor!r}"
            )
        if self.limiter_tolerance <= 1.0:
            raise PolicyError(
                f"limiter_tolerance must be > 1: {self.limiter_tolerance!r}"
            )
        if not 0.0 < self.limiter_backoff < 1.0:
            raise PolicyError(
                f"limiter_backoff must be in (0, 1): {self.limiter_backoff!r}"
            )
        if self.limiter_window < 1:
            raise PolicyError(f"limiter_window must be >= 1: {self.limiter_window!r}")
        if not 0.0 < self.brownout_enter_pressure <= self.shed_enter_pressure:
            raise PolicyError(
                "brownout_enter_pressure must be in (0, shed_enter_pressure]: "
                f"{self.brownout_enter_pressure!r}"
            )
        if self.shed_enter_pressure > 1.0:
            raise PolicyError(
                f"shed_enter_pressure must be <= 1: {self.shed_enter_pressure!r}"
            )
        if self.pressure_min_dwell < 0:
            raise PolicyError(
                f"pressure_min_dwell < 0: {self.pressure_min_dwell!r}"
            )
        if self.default_query_class not in ("critical", "interactive", "batch"):
            raise PolicyError(
                f"unknown default_query_class: {self.default_query_class!r}"
            )
        if self.subscription_buffer_limit < 1:
            raise PolicyError(
                "subscription_buffer_limit must be >= 1: "
                f"{self.subscription_buffer_limit!r}"
            )
        if self.stream_max_subscriptions < 1:
            raise PolicyError(
                "stream_max_subscriptions must be >= 1: "
                f"{self.stream_max_subscriptions!r}"
            )
        if self.stream_default_lease <= 0:
            raise PolicyError(
                f"stream_default_lease must be > 0: {self.stream_default_lease!r}"
            )
        if self.stream_sweep_period <= 0:
            raise PolicyError(
                f"stream_sweep_period must be > 0: {self.stream_sweep_period!r}"
            )
        if self.stream_replay_limit < 1:
            raise PolicyError(
                f"stream_replay_limit must be >= 1: {self.stream_replay_limit!r}"
            )
