"""SchemaManager (paper §3.1.4).

Provides "mapping and translation services for data source drivers": a
gateway-wide GLUE schema instance plus per-driver mapping overrides.
Connections cache the mapping they fetch at creation time together with
the manager's version stamp; statements call back before each query to
check consistency (Figure 5), so an administrator updating a mapping at
runtime takes effect without restarting connections.
"""

from __future__ import annotations

from repro.glue.mapping import SchemaMapping
from repro.glue.schema import GlueSchema, standard_schema


class SchemaManager:
    """GLUE schema + per-driver mapping registry with version stamping."""

    def __init__(self, schema: GlueSchema | None = None) -> None:
        self.schema = schema if schema is not None else standard_schema()
        self._overrides: dict[str, SchemaMapping] = {}
        #: Bumped on every mapping change; connections compare against it.
        self.version = 1

    def mapping_for(
        self, driver_name: str, default: SchemaMapping | None = None
    ) -> SchemaMapping:
        """The mapping a driver should use: override if present, else the
        driver's built-in default."""
        override = self._overrides.get(driver_name)
        if override is not None:
            return override
        if default is None:
            raise KeyError(
                f"no mapping registered for driver {driver_name!r} and no default"
            )
        return default

    def set_mapping(self, driver_name: str, mapping: SchemaMapping) -> None:
        """Install/replace a driver's mapping; invalidates connection caches."""
        self._overrides[driver_name] = mapping
        self.version += 1

    def clear_mapping(self, driver_name: str) -> bool:
        """Drop an override, reverting the driver to its built-in mapping."""
        if driver_name in self._overrides:
            del self._overrides[driver_name]
            self.version += 1
            return True
        return False

    def overridden_drivers(self) -> list[str]:
        return sorted(self._overrides)

    def group_names(self) -> list[str]:
        return self.schema.group_names()

    def validate_sql(self, sql: str, *, path: str = "<query>") -> list:
        """Compile-time GLUE validation of ``sql`` against this schema.

        Returns the :class:`repro.analysis.findings.Finding` list the
        query validator produces (empty when the query is well-formed) —
        the translation-service face of the same check the
        RequestManager enforces before driver dispatch.
        """
        from repro.analysis.query_check import validate_sql

        return validate_sql(sql, self.schema, path=path)
