"""ConnectionManager (paper §3.1.2).

"Driver connections typically incur an overhead when a data source is
first connected, especially if drivers are dynamically mapped to the data
source.  Therefore the ConnectionManager provides pooling of driver
connections to reduce the overhead effects."

The pool is per data source (URL key).  Acquire pops an idle connection
when one exists — revalidating it first if it has been idle longer than
the policy's ``pool_idle_ttl`` — and otherwise asks the
GridRMDriverManager for a new one (which pays driver selection + native
probe + schema fetch).  Release returns the connection for reuse, or
closes it when the pool is at capacity.  Experiment E1 measures the
saving.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Iterator, Mapping

from repro.core.deadline import Deadline
from repro.core.driver_manager import GridRmDriverManager
from repro.core.health import BreakerState, HealthTracker
from repro.core.policy import GatewayPolicy
from repro.dbapi.url import JdbcUrl
from repro.drivers.base import GridRmConnection
from repro.obs.metrics import MetricsRegistry, StatsView
from repro.obs.trace import NO_TRACER, Tracer
from repro.simnet.clock import VirtualClock


@dataclass
class PooledConnection:
    """A pool entry: the connection plus its idle-since stamp."""

    connection: GridRmConnection
    idle_since: float


def _pool_key(url: JdbcUrl) -> str:
    """Pools are keyed by the FULL url text, protocol included.

    Unlike the driver manager's endpoint key (deliberately
    protocol-agnostic so wildcard URLs can cache their last driver), a
    pooled connection is bound to one concrete driver: handing a Ganglia
    session to a ``jdbc:scms://same-host/...`` query would be wrong even
    though both address the same endpoint key.
    """
    return str(url)


class ConnectionManager:
    """Per-source JDBC connection pool."""

    def __init__(
        self,
        driver_manager: GridRmDriverManager,
        clock: VirtualClock,
        policy: GatewayPolicy,
        *,
        health: HealthTracker | None = None,
        registry: MetricsRegistry | None = None,
        tracer: Tracer | None = None,
    ) -> None:
        self.driver_manager = driver_manager
        self.clock = clock
        self.policy = policy
        #: Shared per-source circuit breakers (injected by the Gateway).
        self.health = health
        self.tracer = tracer if tracer is not None else NO_TRACER
        self._idle: dict[str, list[PooledConnection]] = {}
        self.stats = StatsView(
            registry if registry is not None else MetricsRegistry(),
            "pool",
            (
                "acquires",
                "created",
                "reused",
                "revalidated",
                "evicted_invalid",
                "evicted_capacity",
                "evicted_unhealthy",
                "quarantined",
            ),
        )

    # ------------------------------------------------------------------
    def acquire(
        self,
        url: JdbcUrl | str,
        info: Mapping[str, Any] | None = None,
        *,
        deadline: Deadline | None = None,
    ) -> GridRmConnection:
        """An open connection to ``url`` — pooled when possible.

        ``deadline``: the borrowing query's end-to-end deadline, checked
        before any connect cost is paid and stamped onto the connection
        so the driver's native requests clamp to the remaining budget.
        """
        url = JdbcUrl.parse(url) if isinstance(url, str) else url
        with self.tracer.span("conn.acquire", url=str(url)) as span:
            if deadline is not None:
                # The budget this check catches was spent queueing
                # upstream (cap_wait / admission queue): name queue_wait
                # as the spending step rather than blaming the pool.
                deadline.check(f"queue_wait before connection acquire for {url}")
            self.stats["acquires"] += 1
            quarantined = self.health is not None and self.health.is_quarantined(
                _pool_key(url)
            )
            if self.policy.pool_enabled and not quarantined:
                key = _pool_key(url)
                idle = self._idle.get(key, [])
                now = self.clock.now()
                while idle:
                    entry = idle.pop()
                    conn = entry.connection
                    if conn.is_closed():
                        self.stats["evicted_invalid"] += 1
                        continue
                    if now - entry.idle_since > self.policy.pool_idle_ttl:
                        # Stale: pay one probe to revalidate before reuse,
                        # bounded by the borrowing query's remaining budget.
                        self.stats["revalidated"] += 1
                        span["revalidated"] = True
                        probe_timeout = 1.0
                        if deadline is not None:
                            probe_timeout = deadline.clamp(
                                probe_timeout, f"pool revalidation for {url}"
                            )
                        if not conn.is_valid(timeout=probe_timeout):
                            conn.close()
                            self.stats["evicted_invalid"] += 1
                            continue
                    self.stats["reused"] += 1
                    span["pooled"] = True
                    conn.deadline = deadline
                    conn.tracer = self.tracer
                    return conn
            self.stats["created"] += 1
            span["pooled"] = False
            conn = self.driver_manager.open_connection(url, info, deadline=deadline)
            conn.deadline = deadline
            conn.tracer = self.tracer
            return conn

    def release(self, connection: GridRmConnection) -> None:
        """Return a connection to its pool (or close it).

        Connections are validated before pooling: a connection whose
        source just failed — breaker OPEN, or any recent failure on
        record and the live probe now fails — is closed rather than
        handed to the next caller.  Healthy sources skip the probe, so
        the pool's whole point (no per-query native traffic) survives.
        """
        connection.deadline = None  # deadlines are per-query, not per-session
        connection.tracer = None  # spans are per-query too
        if connection.is_closed():
            return
        if not self.policy.pool_enabled:
            connection.close()
            return
        key = _pool_key(connection.url)
        if self.health is not None:
            entry = self.health.health(key)
            if self.health.is_quarantined(key):
                self.stats["quarantined"] += 1
                connection.close()
                return
            if entry.state is not BreakerState.CLOSED or entry.consecutive_failures:
                # Source recently misbehaved: pay one probe before pooling.
                if not connection.is_valid():
                    self.stats["evicted_unhealthy"] += 1
                    connection.close()
                    return
        idle = self._idle.setdefault(key, [])
        if len(idle) >= self.policy.pool_max_per_source:
            self.stats["evicted_capacity"] += 1
            connection.close()
            return
        idle.append(
            PooledConnection(connection=connection, idle_since=self.clock.now())
        )

    def discard(self, connection: GridRmConnection) -> None:
        """Close a connection that misbehaved instead of pooling it."""
        connection.deadline = None
        connection.tracer = None
        connection.close()

    def quarantine(self, url: JdbcUrl | str) -> int:
        """Drop and close every idle connection of one source.

        Called when the source's circuit breaker trips: a pooled session
        to a source known to be failing must never be handed to the next
        caller.  Returns the number of connections quarantined.
        """
        key = str(url) if isinstance(url, str) else _pool_key(url)
        entries = self._idle.pop(key, [])
        n = 0
        for entry in entries:
            if not entry.connection.is_closed():
                entry.connection.close()
                n += 1
        self.stats["quarantined"] += n
        return n

    @contextmanager
    def connection(
        self,
        url: JdbcUrl | str,
        info: Mapping[str, Any] | None = None,
        *,
        deadline: Deadline | None = None,
    ) -> Iterator[GridRmConnection]:
        """``with cm.connection(url) as conn:`` acquire/release guard.

        A body that raises discards the connection (it may be mid-protocol
        or pointing at a dead agent) rather than pooling it.
        """
        conn = self.acquire(url, info, deadline=deadline)
        try:
            yield conn
        except BaseException:
            self.discard(conn)
            raise
        self.release(conn)

    # ------------------------------------------------------------------
    def idle_count(self, url: JdbcUrl | str | None = None) -> int:
        if url is None:
            return sum(len(v) for v in self._idle.values())
        url = JdbcUrl.parse(url) if isinstance(url, str) else url
        return len(self._idle.get(_pool_key(url), []))

    def close_all(self) -> int:
        """Drain every pool (gateway shutdown); returns connections
        actually closed — entries something else already closed under us
        are drained but not counted."""
        n = 0
        for entries in self._idle.values():
            for entry in entries:
                if not entry.connection.is_closed():
                    entry.connection.close()
                    n += 1
        self._idle.clear()
        return n
