"""GridRMDriverManager (paper §3.1.3, §3.2.2, §4).

Registers and unregisters resource drivers and performs
driver-to-resource allocation.  Drivers are selected either

* **statically** — "using driver preferences registered in advance by the
  user", an ordered driver-name list per data source; or
* **dynamically** — scanning the registry's ``accepts_url`` loop at
  runtime (paper Table 2).

For performance the manager keeps "a cache containing details of the
driver last successfully used for a data source"; configuration rules
(:class:`~repro.core.policy.FailureAction`) determine what happens when a
cached or preferred driver no longer works: report the error, retry the
driver *n* times, try the next preference, or dynamically select a fresh
driver.

Registration is reflection-friendly, mirroring paper Table 1: a driver
can be (re)loaded from a ``"package.module:ClassName"`` spec, and every
successful registration is recorded in a persistent store so a restarted
gateway re-registers the same plug-ins.
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass, field
from typing import Any, Mapping, MutableMapping, Optional

from repro.core.deadline import Deadline
from repro.core.errors import (
    DataSourceError,
    GridRmError,
    NoSuitableDriverError,
    SourceQuarantinedError,
)
from repro.core.health import HealthTracker
from repro.core.policy import FailureAction, GatewayPolicy
from repro.dbapi.exceptions import SQLException
from repro.dbapi.interfaces import Driver
from repro.dbapi.registry import DriverRegistry
from repro.dbapi.url import JdbcUrl
from repro.drivers.base import GridRmConnection, GridRmDriver
from repro.obs.metrics import MetricsRegistry, StatsView
from repro.obs.trace import NO_TRACER, Tracer
from repro.simnet.network import Network


#: Default connect-time liveness-probe timeout (matches the DDK's
#: ``probe(url, timeout=1.0)`` default); clamped further by any deadline.
PROBE_TIMEOUT = 1.0


def driver_spec(driver: Driver) -> str:
    """The ``module:ClassName`` spec used for persistent registration."""
    cls = type(driver)
    return f"{cls.__module__}:{cls.__qualname__}"


def load_driver(spec: str, network: Network, *, gateway_host: str) -> GridRmDriver:
    """Instantiate a driver from its spec — the ``Class.forName`` trick of
    paper Table 1, kept generic by never referencing concrete names."""
    module_name, _, class_name = spec.partition(":")
    if not module_name or not class_name:
        raise NoSuitableDriverError(f"malformed driver spec {spec!r}")
    try:
        module = importlib.import_module(module_name)
        cls = getattr(module, class_name)
    except (ImportError, AttributeError) as exc:
        raise NoSuitableDriverError(f"cannot load driver {spec!r}: {exc}") from exc
    if not (isinstance(cls, type) and issubclass(cls, GridRmDriver)):
        raise NoSuitableDriverError(f"{spec!r} is not a GridRmDriver subclass")
    return cls(network, gateway_host=gateway_host)


@dataclass
class RestoreReport:
    """Outcome of :meth:`GridRmDriverManager.restore_persisted`.

    Iterating the report iterates the restored drivers, so callers that
    only care about the happy path can treat it as a list.
    """

    restored: list[GridRmDriver] = field(default_factory=list)
    skipped: list[tuple[str, str]] = field(default_factory=list)  # (spec, error)

    def __iter__(self):
        return iter(self.restored)

    def __len__(self) -> int:
        return len(self.restored)


@dataclass
class DriverPreference:
    """A user's static, prioritised driver choice for one data source."""

    url_key: str
    driver_names: list[str] = field(default_factory=list)


def _url_key(url: JdbcUrl) -> str:
    """Cache/preference key: the source endpoint, protocol-agnostic."""
    port = url.port if url.port is not None else 0
    return f"{url.host}:{port}/{url.path}"


class GridRmDriverManager:
    """Driver registration + driver-to-resource allocation."""

    def __init__(
        self,
        registry: DriverRegistry,
        policy: GatewayPolicy,
        *,
        persistent_store: MutableMapping[str, str] | None = None,
        health: HealthTracker | None = None,
        metrics: "MetricsRegistry | None" = None,
        tracer: "Tracer | None" = None,
    ) -> None:
        self.registry = registry
        self.policy = policy
        #: spec string -> display name; survives "restarts" when the
        #: caller passes the same mapping back in (paper §3.2.2).
        self.persistent_store = persistent_store if persistent_store is not None else {}
        #: Shared per-source circuit breakers (the Gateway injects one
        #: tracker across all managers); None disables health tracking.
        self.health = health
        self.tracer = tracer if tracer is not None else NO_TRACER
        self._preferences: dict[str, DriverPreference] = {}
        self._last_driver: dict[str, Driver] = {}
        self.stats = StatsView(
            metrics if metrics is not None else MetricsRegistry(),
            "drivers",
            (
                "selections",
                "cache_hits",
                "dynamic_scans",
                "failovers",
                "connect_failures",
                "breaker_fast_fails",
            ),
        )

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def register(self, driver: Driver, *, persist: bool = True) -> None:
        self.registry.register(driver)
        if persist:
            try:
                self.persistent_store[driver_spec(driver)] = driver.name()
            except SQLException:
                self.persistent_store[driver_spec(driver)] = type(driver).__name__

    def unregister(self, driver: Driver) -> bool:
        removed = self.registry.unregister(driver)
        if removed:
            self.persistent_store.pop(driver_spec(driver), None)
            # Drop any cached allocation pointing at the departed driver.
            for key in [k for k, d in self._last_driver.items() if d is driver]:
                del self._last_driver[key]
        return removed

    def restore_persisted(
        self, network: Network, *, gateway_host: str, skip_names: Any = ()
    ) -> "RestoreReport":
        """Re-register every persisted driver spec (gateway start-up).

        A malformed or unloadable spec (renamed class, missing module,
        corrupted store entry) must not abort start-up: it is skipped,
        left out of the restored set, and reported in the returned
        :class:`RestoreReport`'s ``skipped`` list for logging.

        ``skip_names`` lists driver display names already live in the
        registry (e.g. the default driver set), whose specs are left
        alone rather than re-instantiated.
        """
        report = RestoreReport()
        skip = set(skip_names)
        for spec, stored_name in list(self.persistent_store.items()):
            if stored_name in skip:
                continue
            try:
                driver = load_driver(spec, network, gateway_host=gateway_host)
                self.registry.register(driver)
            except (GridRmError, SQLException, TypeError) as exc:
                # NoSuitableDriverError for malformed/unloadable specs,
                # SQLException from a driver constructor or registration,
                # TypeError from a constructor with the wrong arity.
                report.skipped.append((spec, f"{type(exc).__name__}: {exc}"))
                continue
            report.restored.append(driver)
        return report

    def driver_names(self) -> list[str]:
        return self.registry.driver_names()

    def driver_by_name(self, name: str) -> Optional[Driver]:
        for d in self.registry.drivers():
            if d.name() == name:
                return d
        return None

    # ------------------------------------------------------------------
    # Preferences and the last-driver cache
    # ------------------------------------------------------------------
    def set_preference(self, url: JdbcUrl | str, driver_names: list[str]) -> None:
        """Pin an ordered driver list for one data source (paper Fig. 8)."""
        url = JdbcUrl.parse(url) if isinstance(url, str) else url
        key = _url_key(url)
        self._preferences[key] = DriverPreference(url_key=key, driver_names=list(driver_names))

    def clear_preference(self, url: JdbcUrl | str) -> bool:
        url = JdbcUrl.parse(url) if isinstance(url, str) else url
        return self._preferences.pop(_url_key(url), None) is not None

    def cached_driver(self, url: JdbcUrl) -> Optional[Driver]:
        if not self.policy.driver_cache_enabled:
            return None
        return self._last_driver.get(_url_key(url))

    def invalidate_cache(self, url: JdbcUrl | str | None = None) -> None:
        if url is None:
            self._last_driver.clear()
            return
        url = JdbcUrl.parse(url) if isinstance(url, str) else url
        self._last_driver.pop(_url_key(url), None)

    # ------------------------------------------------------------------
    # Allocation
    # ------------------------------------------------------------------
    def _candidates(self, url: JdbcUrl) -> tuple[list[Driver], bool]:
        """Candidate drivers in trial order: preferences > cache > scan.

        The boolean flag reports whether the list is just the cached
        last-successful driver — failure policies that "try another"
        must then widen to a fresh scan.
        """
        pref = self._preferences.get(_url_key(url))
        if pref is not None and pref.driver_names:
            out = []
            for name in pref.driver_names:
                d = self.driver_by_name(name)
                if d is not None:
                    out.append(d)
            if out:
                return out, False
        cached = self.cached_driver(url)
        if cached is not None and cached in self.registry:
            self.stats["cache_hits"] += 1
            return [cached], True
        self.stats["dynamic_scans"] += 1
        return self.registry.locate_all(url), False

    def open_connection(
        self,
        url: JdbcUrl | str,
        info: Mapping[str, Any] | None = None,
        *,
        deadline: Deadline | None = None,
    ) -> GridRmConnection:
        """Allocate a driver for ``url`` and open a connection, applying
        the configured failure policy on the way.

        When a health tracker is attached, the source's circuit breaker
        is consulted first: an OPEN breaker short-circuits the whole
        selection/retry machinery with :class:`SourceQuarantinedError`
        (no connect attempts, no retry budget spent), and connect
        outcomes are recorded back into the tracker.

        A ``deadline`` is re-checked before every connect attempt: a
        budget already eaten by earlier candidates (each costing a native
        probe timeout) stops the selection loop instead of trying ever
        more drivers nobody is waiting for.
        """
        url = JdbcUrl.parse(url) if isinstance(url, str) else url
        with self.tracer.span("driver.connect", url=str(url)) as span:
            return self._open_connection_traced(url, info, deadline, span)

    def _open_connection_traced(
        self,
        url: JdbcUrl,
        info: Mapping[str, Any] | None,
        deadline: Deadline | None,
        span: Any,
    ) -> GridRmConnection:
        source_key = str(url)
        if deadline is not None:
            deadline.check(f"driver selection for {url}")
        if self.health is not None and not self.health.allow_request(source_key):
            self.stats["breaker_fast_fails"] += 1
            span["fast_failed"] = True
            entry = self.health.health(source_key)
            raise SourceQuarantinedError(
                f"circuit open for {url} until t={entry.open_until:.1f}s "
                f"(last error: {entry.last_error or 'unknown'})"
            )
        self.stats["selections"] += 1
        candidates, only_cached = self._candidates(url)
        span["candidates"] = len(candidates)
        if not candidates:
            raise NoSuitableDriverError(f"no registered driver accepts {url}")

        action = self.policy.failure_action
        attempts_per_driver = (
            1 + self.policy.failure_retries if action is FailureAction.RETRY else 1
        )
        tried: list[Driver] = []
        last_error: Exception | None = None

        def try_driver(driver: Driver) -> Optional[GridRmConnection]:
            nonlocal last_error
            for _ in range(attempts_per_driver):
                attempt_info = dict(info or {})
                if deadline is not None:
                    deadline.check(f"driver selection for {url}")
                    # Bound the connect-time liveness probe by whatever
                    # budget remains, so a dead host cannot eat more of
                    # the deadline than the caller has left to give.
                    base = float(attempt_info.get("connect_timeout", PROBE_TIMEOUT))
                    attempt_info["connect_timeout"] = deadline.clamp(
                        base, f"connect probe for {url}"
                    )
                try:
                    conn = driver.connect(url, attempt_info)
                except SQLException as exc:
                    self.stats["connect_failures"] += 1
                    last_error = exc
                    continue
                if self.policy.driver_cache_enabled:
                    self._last_driver[_url_key(url)] = driver
                if self.health is not None:
                    self.health.record_success(source_key)
                try:
                    span["driver"] = driver.name()
                except SQLException:
                    span["driver"] = type(driver).__name__
                return conn
            return None

        for driver in candidates:
            tried.append(driver)
            conn = try_driver(driver)
            if conn is not None:
                return conn
            if action is FailureAction.REPORT:
                if self.health is not None:
                    self.health.record_failure(source_key, str(last_error))
                raise DataSourceError(
                    f"driver {driver.name()!r} failed for {url}: {last_error}"
                ) from last_error
            self.stats["failovers"] += 1
            # RETRY exhausts its budget on the first candidate only; the
            # remaining candidates exist for TRY_NEXT / DYNAMIC.
            if action is FailureAction.RETRY:
                break

        # TRY_NEXT means "try another driver": when the trial list was only
        # the cached last-success entry, the "next" drivers come from a
        # fresh scan.  DYNAMIC always widens to a fresh scan.
        if action is FailureAction.DYNAMIC or (
            action is FailureAction.TRY_NEXT and only_cached
        ):
            # Fresh dynamic scan for anything not yet tried — the cached /
            # preferred driver may be stale while another fits (paper §4).
            self.invalidate_cache(url)
            self.stats["dynamic_scans"] += 1
            for driver in self.registry.locate_all(url):
                if driver in tried:
                    continue
                tried.append(driver)
                conn = try_driver(driver)
                if conn is not None:
                    return conn

        if self.health is not None:
            self.health.record_failure(source_key, str(last_error))
        raise DataSourceError(
            f"all {len(tried)} driver(s) failed for {url} "
            f"(policy {action.value}): {last_error}"
        ) from last_error
