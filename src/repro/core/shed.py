"""Pressure state machine and priority shed policy.

The Zhang/Freschl/Schopf performance study shows the classic failure
shape of 2003-era monitoring services under concurrent-user sweeps:
throughput peaks, then *goodput* collapses as queues fill with requests
that will miss their deadlines anyway.  The cure is graceful
degradation: a gateway-level pressure signal (queue depth + limiter
headroom) drives a three-state machine, and each query class has a
per-state fate — shed the batch tier first, serve the interactive tier
stale, never refuse the critical tier.

States (escalation is immediate, de-escalation waits out a dwell so the
gateway does not flap between serving modes):

* ``NORMAL`` — every class dispatches; only the bounded admission queue
  applies.
* ``BROWNOUT`` — the gateway is saturated: BATCH and INTERACTIVE
  queries are answered from stale cache with a degraded marker instead
  of dispatching (PR 1's stale-serving machinery); BATCH with no stale
  coverage is shed, INTERACTIVE without coverage still dispatches.
* ``SHED`` — the queue is nearly full: BATCH is shed outright,
  INTERACTIVE is served stale or shed, CRITICAL still dispatches.

Everything here rides the virtual clock and is deterministic under
replay; the per-class shed counters are plain registry counters
(commutative under the PR 7 race discipline).
"""

from __future__ import annotations

import enum
from typing import Any, Callable, Optional

from repro.obs.metrics import MetricsRegistry
from repro.simnet.clock import VirtualClock


class PressureState(enum.Enum):
    """The gateway-level overload state (ordered by severity)."""

    NORMAL = "normal"
    BROWNOUT = "brownout"
    SHED = "shed"


#: Severity rank used for the hysteresis comparison.
_RANK = {PressureState.NORMAL: 0, PressureState.BROWNOUT: 1, PressureState.SHED: 2}


class ShedAction(enum.Enum):
    """What the admission layer does with one query, per state x class."""

    DISPATCH = "dispatch"
    STALE_THEN_DISPATCH = "stale_then_dispatch"
    STALE_THEN_SHED = "stale_then_shed"
    SHED = "shed"


def shed_action(state: PressureState, query_class: "QueryClassLike") -> ShedAction:
    """The per-class fate table (see module docstring).

    ``query_class`` is anything with a ``value`` of "critical" /
    "interactive" / "batch" (kept duck-typed so this module does not
    import :mod:`repro.core.admission`, which imports it).
    """
    cls = getattr(query_class, "value", str(query_class))
    if state is PressureState.NORMAL or cls == "critical":
        return ShedAction.DISPATCH
    if state is PressureState.BROWNOUT:
        if cls == "batch":
            return ShedAction.STALE_THEN_SHED
        return ShedAction.STALE_THEN_DISPATCH
    # SHED
    if cls == "batch":
        return ShedAction.SHED
    return ShedAction.STALE_THEN_SHED


# Forward-reference alias for the docstring above (no runtime import of
# repro.core.admission here — it imports this module).
QueryClassLike = object


class PressureMonitor:
    """NORMAL / BROWNOUT / SHED, driven by queue depth + limiter headroom.

    The pressure signal is the admission queue's fill fraction; running
    with zero limiter headroom while anything queues also counts as
    pressure (a saturated gateway with a short queue should brown out
    before the queue is deep).  Escalation is immediate; stepping down
    requires the raw signal to relax *and* ``min_dwell`` virtual seconds
    in the current state, so one fast round cannot flap the gateway
    between serving modes.
    """

    def __init__(
        self,
        clock: VirtualClock,
        *,
        queue_capacity: int,
        brownout_enter: float,
        shed_enter: float,
        min_dwell: float,
        registry: Optional[MetricsRegistry] = None,
        on_transition: Optional[
            Callable[[PressureState, PressureState], None]
        ] = None,
    ) -> None:
        self._clock = clock
        self.queue_capacity = max(1, queue_capacity)
        self.brownout_enter = brownout_enter
        self.shed_enter = shed_enter
        self.min_dwell = min_dwell
        self.registry = registry if registry is not None else MetricsRegistry()
        self.on_transition = on_transition
        self.state = PressureState.NORMAL
        self.since = clock.now()
        self.transitions = 0

    # ------------------------------------------------------------------
    def observe(self, queue_depth: int, headroom: int) -> PressureState:
        """Fold one observation in; returns the (possibly new) state."""
        pressure = queue_depth / self.queue_capacity
        if pressure >= self.shed_enter:
            raw = PressureState.SHED
        elif pressure >= self.brownout_enter or (headroom <= 0 and queue_depth > 0):
            raw = PressureState.BROWNOUT
        else:
            raw = PressureState.NORMAL
        if raw is self.state:
            return self.state
        now = self._clock.now()
        if _RANK[raw] < _RANK[self.state] and now - self.since < self.min_dwell:
            # De-escalation waits out the dwell (hysteresis).
            return self.state
        old, self.state, self.since = self.state, raw, now
        self.transitions += 1
        self.registry.counter("admission.transitions").add(1)
        if self.on_transition is not None:
            self.on_transition(old, raw)
        return self.state

    def retry_after(self) -> float:
        """Hint carried on :class:`~repro.core.errors.OverloadError`:
        the earliest instant (relative, virtual seconds) at which the
        current state could step down."""
        if self.state is PressureState.NORMAL:
            return 0.0
        remaining = (self.since + self.min_dwell) - self._clock.now()
        return max(0.1, remaining)

    def snapshot(self) -> dict[str, Any]:
        return {
            "state": self.state.value,
            "since": self.since,
            "transitions": self.transitions,
            "queue_capacity": self.queue_capacity,
        }


class ShedLedger:
    """Per-class shed counters (registry-backed, commutative)."""

    CLASSES = ("critical", "interactive", "batch")

    def __init__(self, registry: Optional[MetricsRegistry] = None) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self.registry.counter("shed.total")
        for cls in self.CLASSES:
            self.registry.counter(f"shed.{cls}")

    def record(self, query_class: "QueryClassLike") -> None:
        cls = getattr(query_class, "value", str(query_class))
        self.registry.counter("shed.total").add(1)
        if cls in self.CLASSES:
            self.registry.counter(f"shed.{cls}").add(1)

    def counts(self) -> dict[str, int]:
        out = {cls: self.registry.counter(f"shed.{cls}").value for cls in self.CLASSES}
        out["total"] = self.registry.counter("shed.total").value
        return out
