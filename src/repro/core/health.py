"""Per-source health tracking: circuit breakers with exponential backoff.

The paper's failure policies (§3.1.3, §4: report / retry / try-another /
dynamic reselection) decide what happens *within one query* when a driver
cannot reach its data source.  They are stateless across queries, so a
dead SNMP agent costs the full retry budget plus a dynamic scan — each a
multi-second native timeout — on *every* query, and a partitioned remote
gateway stalls every Global-layer request that touches it.  That is
precisely the intrusiveness/scalability failure mode the MDS2/R-GMA
performance study identifies, and that R-GMA mitigates with
registry-level liveness.

:class:`HealthTracker` gives the gateway a memory of source health: one
three-state circuit breaker per source key (the full JDBC URL text for
local sources, ``gma://<site>`` for remote gateways).

State machine::

                 success                failure (consecutive >= threshold)
    +--------+ <--------- +-----------+ <--------------------- +--------+
    | CLOSED |            | HALF_OPEN |                        |  OPEN  |
    +--------+ ---------> +-----------+ ---------------------> +--------+
       |   failure x N        |  ^  failure (backoff doubles)      |
       +--------------------->+  +---------------------------------+
                                        backoff elapsed (probe window)

* ``CLOSED`` — normal operation; failures are counted.
* ``OPEN`` — requests are short-circuited without touching the source;
  an exponential, jittered backoff (computed on the
  :class:`~repro.simnet.clock.VirtualClock`) decides when to probe.
* ``HALF_OPEN`` — the backoff elapsed; trial requests are allowed.  One
  failure re-opens with a doubled backoff; ``breaker_half_open_probes``
  consecutive successes close the breaker.

The tracker is deliberately passive: callers ask :meth:`allow_request`
before paying connect/retry cost and report outcomes with
:meth:`record_success` / :meth:`record_failure`.  Every state transition
is surfaced through the ``on_transition`` callback, which the Gateway
wires to the EventManager (history + listeners) and to connection-pool
quarantine.
"""

from __future__ import annotations

import enum
import random
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Callable, Iterator

from repro.analysis import races
from repro.core.policy import GatewayPolicy
from repro.obs.metrics import MetricsRegistry, StatsView
from repro.simnet.clock import VirtualClock

#: Upper bound of the multiplicative jitter applied to each backoff: the
#: wait is uniform in ``[backoff, backoff * (1 + BACKOFF_JITTER)]``, then
#: capped at ``breaker_max_backoff`` — so recovery is always due within
#: the configured maximum, while a fleet of breakers tripped by one
#: outage does not probe in lock-step when it heals.
BACKOFF_JITTER = 0.25


def jittered_backoff(raw: float, cap: float, rng: random.Random) -> float:
    """One jittered wait: uniform in ``[raw, raw * (1 + jitter)]``, capped.

    Shared by the circuit breakers (OPEN duration per trip) and the
    query retry layer (:mod:`repro.core.retry`), so every backoff in the
    gateway desynchronises the same way.
    """
    return min(cap, raw * (1 + rng.uniform(0.0, BACKOFF_JITTER)))


class BreakerState(enum.Enum):
    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"


@dataclass
class SourceHealth:
    """Everything the tracker knows about one source."""

    key: str
    state: BreakerState = BreakerState.CLOSED
    consecutive_failures: int = 0
    half_open_successes: int = 0
    total_failures: int = 0
    total_successes: int = 0
    trips: int = 0
    short_circuits: int = 0
    opened_at: float = 0.0
    open_until: float = 0.0
    #: The unjittered backoff of the current open streak (doubles per
    #: consecutive trip, reset when the breaker closes).
    current_backoff: float = 0.0
    last_error: str = ""
    last_change: float = 0.0

    def as_dict(self) -> dict[str, Any]:
        return {
            "state": self.state.value,
            "consecutive_failures": self.consecutive_failures,
            "total_failures": self.total_failures,
            "total_successes": self.total_successes,
            "trips": self.trips,
            "short_circuits": self.short_circuits,
            "open_until": self.open_until,
            "backoff": self.current_backoff,
            "last_error": self.last_error,
        }


#: ``on_transition(key, old_state, new_state, health)``.
TransitionListener = Callable[[str, BreakerState, BreakerState, SourceHealth], None]


class HealthTracker:
    """Per-source circuit breakers over the virtual clock.

    One success/failure *observation* is recorded per native interaction
    (a connect, a fetch, a remote-gateway round trip), so
    ``total_successes``/``total_failures`` count observations, not
    queries.  ``consecutive_failures`` resets on any success.
    """

    def __init__(
        self,
        clock: VirtualClock,
        policy: GatewayPolicy,
        *,
        on_transition: TransitionListener | None = None,
        jitter_seed: int = 0,
        registry: "MetricsRegistry | None" = None,
    ) -> None:
        self.clock = clock
        self.policy = policy
        self.on_transition = on_transition
        self._rng = random.Random(jitter_seed)
        self._sources: dict[str, SourceHealth] = {}
        # Admission decisions pinned for the duration of one dispatched
        # operation (see :meth:`pin`): key -> stack of frozen decisions,
        # plus the observations buffered until the outermost pin exits.
        self._pins: dict[str, list[bool]] = {}
        self._deferred: dict[str, list[tuple[str, str]]] = {}
        self.stats = StatsView(
            registry if registry is not None else MetricsRegistry(),
            "health",
            ("trips", "recoveries", "short_circuits"),
        )

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def _entry(self, key: str) -> SourceHealth:
        entry = self._sources.get(key)
        if entry is None:
            entry = self._sources[key] = SourceHealth(key=key)
        return entry

    def health(self, key: str) -> SourceHealth:
        """The health record for ``key`` (a fresh CLOSED one if unseen)."""
        return self._entry(key)

    def state(self, key: str) -> BreakerState:
        entry = self._sources.get(key)
        return entry.state if entry is not None else BreakerState.CLOSED

    def is_quarantined(self, key: str) -> bool:
        """True while the breaker is OPEN — pooled connections to the
        source must be discarded, not reused (backoff expiry does not
        clear this; only a successful probe does)."""
        if not self.policy.breaker_enabled:
            return False
        return self.state(key) is BreakerState.OPEN

    def allow_request(self, key: str) -> bool:
        """Consult the breaker before paying connect/retry cost.

        CLOSED and HALF_OPEN allow the request.  OPEN short-circuits it
        unless the backoff has elapsed, in which case the breaker moves
        to HALF_OPEN and the request becomes the probe.
        """
        if not self.policy.breaker_enabled:
            return True
        pinned = self._pins.get(key)
        if pinned:
            # Admission for the enclosing operation was decided before
            # its concurrent scope opened; re-checks inside the scope
            # (retry attempts, hedge siblings) read that frozen decision
            # rather than breaker state a sibling branch may be mutating
            # — a pinned read is not a shared-state access, so no race
            # note either.
            return pinned[-1]
        if races.ACTIVE is not None:
            races.ACTIVE.note(
                "health", key, "r", site="HealthTracker.allow_request"
            )
        entry = self._sources.get(key)
        if entry is None or entry.state is BreakerState.CLOSED:
            return True
        if entry.state is BreakerState.OPEN:
            if self.clock.now() >= entry.open_until:
                entry.half_open_successes = 0
                self._transition(entry, BreakerState.HALF_OPEN)
                return True
            entry.short_circuits += 1
            self.stats["short_circuits"] += 1
            return False
        return True  # HALF_OPEN: probes flow

    @contextmanager
    def pin(self, key: str, decision: bool) -> "Iterator[None]":
        """Freeze ``allow_request(key)`` to ``decision`` for the block.

        The request manager decides admission once, sequentially, before
        handing the fetch to the (possibly hedged, possibly retried)
        dispatch path; every breaker consult inside that operation then
        sees the decision as it stood at launch.  Without this, a hedge
        attempt's ``allow_request`` would read breaker state its
        virtually-simultaneous sibling just wrote — admission would
        depend on branch launch order (a GRM552 lane race).

        Observations made while pinned (connect failures from hedge
        siblings, retry attempts) are *deferred*: buffered, then applied
        when the outermost pin exits, failures before successes.  Two
        virtually-simultaneous attempts therefore contribute the same
        end state whatever order the dispatcher happened to launch them
        in — the write side of the same lane-race hazard.  Pins nest;
        the innermost decision wins and deferral lasts until the
        outermost exit.
        """
        stack = self._pins.setdefault(key, [])
        stack.append(decision)
        try:
            yield
        finally:
            stack.pop()
            if not stack:
                del self._pins[key]
                for kind, error in sorted(
                    self._deferred.pop(key, ()), key=lambda o: o[0] == "s"
                ):
                    if kind == "s":
                        self.record_success(key)
                    else:
                        self.record_failure(key, error)

    # ------------------------------------------------------------------
    # Outcome recording
    # ------------------------------------------------------------------
    def record_success(self, key: str) -> None:
        if self._pins.get(key):
            self._deferred.setdefault(key, []).append(("s", ""))
            return
        if races.ACTIVE is not None:
            races.ACTIVE.note(
                "health", key, "w", site="HealthTracker.record_success"
            )
        entry = self._entry(key)
        entry.total_successes += 1
        entry.consecutive_failures = 0
        entry.last_error = ""
        if not self.policy.breaker_enabled:
            return
        if entry.state is not BreakerState.CLOSED:
            entry.half_open_successes += 1
            if entry.half_open_successes >= self.policy.breaker_half_open_probes:
                entry.current_backoff = 0.0
                self.stats["recoveries"] += 1
                self._transition(entry, BreakerState.CLOSED)

    def record_failure(self, key: str, error: str = "") -> None:
        if self._pins.get(key):
            self._deferred.setdefault(key, []).append(("f", error))
            return
        if races.ACTIVE is not None:
            races.ACTIVE.note(
                "health", key, "w", site="HealthTracker.record_failure"
            )
        entry = self._entry(key)
        entry.total_failures += 1
        entry.consecutive_failures += 1
        entry.last_error = error
        if not self.policy.breaker_enabled:
            return
        if entry.state is BreakerState.HALF_OPEN:
            self._trip(entry)  # the probe failed: re-open, backoff doubles
        elif (
            entry.state is BreakerState.CLOSED
            and entry.consecutive_failures >= self.policy.breaker_failure_threshold
        ):
            self._trip(entry)

    # ------------------------------------------------------------------
    def _trip(self, entry: SourceHealth) -> None:
        now = self.clock.now()
        cap = self.policy.breaker_max_backoff
        if entry.current_backoff <= 0:
            raw = self.policy.breaker_base_backoff
        else:
            raw = min(cap, entry.current_backoff * 2)
        wait = jittered_backoff(raw, cap, self._rng)
        entry.current_backoff = raw
        entry.trips += 1
        entry.opened_at = now
        entry.open_until = now + wait
        entry.half_open_successes = 0
        self.stats["trips"] += 1
        self._transition(entry, BreakerState.OPEN)

    def _transition(self, entry: SourceHealth, new: BreakerState) -> None:
        old = entry.state
        if old is new:
            return
        entry.state = new
        entry.last_change = self.clock.now()
        if self.on_transition is not None:
            self.on_transition(entry.key, old, new, entry)

    # ------------------------------------------------------------------
    # Administration / observability
    # ------------------------------------------------------------------
    def reset(self, key: str | None = None) -> None:
        """Forget health state (all sources, or one) — e.g. after an
        operator fixed the source and wants traffic back immediately."""
        if key is None:
            self._sources.clear()
            return
        self._sources.pop(key, None)

    def scoreboard(self) -> dict[str, dict[str, Any]]:
        """Per-source health snapshot for ``Gateway.stats()``/consoles."""
        return {key: e.as_dict() for key, e in sorted(self._sources.items())}

    def summary(self) -> dict[str, Any]:
        """Aggregate counts for one-line dashboards."""
        by_state = {s: 0 for s in BreakerState}
        for entry in self._sources.values():
            by_state[entry.state] += 1
        return {
            "sources": len(self._sources),
            "closed": by_state[BreakerState.CLOSED],
            "open": by_state[BreakerState.OPEN],
            "half_open": by_state[BreakerState.HALF_OPEN],
            **self.stats,
        }
