"""Admission control and adaptive concurrency for one gateway.

The serving plane's overload protection (with :mod:`repro.core.shed`):

* **QueryClass** — every query carries a priority class (CRITICAL /
  INTERACTIVE / BATCH, settable via :class:`GatewayPolicy`, the dbapi
  and the GMA consumer APIs); under pressure the gateway sheds BATCH
  first and never refuses CRITICAL.
* **AdmissionController** — a bounded, priority-aware request queue at
  the Gateway entry.  Gateway-wide in-flight work is tracked as
  completion instants (the same virtual-time trick as the dispatcher's
  per-source caps): an entry whose end lies in the caller's future is in
  flight *right now*.  When the adaptive limit is reached, callers queue
  in virtual time under a ``queue_wait`` span; a full queue sheds
  (BATCH hits its share of the queue first), and a dequeued request
  whose remaining deadline budget is below the observed p50 service
  time is dropped as *doomed on dequeue* — never start work whose
  answer nobody will be waiting for.
* **GradientLimiter** — an AIMD concurrency limiter (in the spirit of
  TCP-Vegas-style limiters): probe the limit up by one when an epoch's
  latencies sit near the observed baseline, multiplicatively back off
  when the epoch mean inflates past ``tolerance`` x baseline or any
  attempt ended congested (timeout / failure).  Observations fold into
  commutative epoch aggregates (count / sum / min / congested-count) so
  unordered virtual-lane branches can feed one limiter without
  launch-order races; the folds are annotated for the PR 7 race
  detector ("limiter.window" COMMUTATIVE, the recomputed limit
  "limiter" VALUE-disciplined by its new value).

The raw in-flight / queue-interval lists are deliberately *not* noted to
the race detector: like the dispatcher's per-source cap machinery they
are launch-order-coupled by design (member k of a batch observes members
0..k-1's completion instants), which is deterministic under replay.

Everything is disabled by default (``GatewayPolicy.admission_enabled``)
so seeded replay signatures and golden traces of existing scenarios are
untouched; the overload chaos scenario, benchmark E18 and the console
turn it on.
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Optional

from repro.analysis import races
from repro.core.deadline import Deadline
from repro.core.errors import DeadlineExceededError, GridRmError, OverloadError
from repro.core.policy import GatewayPolicy
from repro.core.shed import (
    PressureMonitor,
    PressureState,
    ShedAction,
    ShedLedger,
    shed_action,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import NO_TRACER, Tracer
from repro.simnet.clock import VirtualClock

#: Sliding window of post-queue service times feeding the doomed-on-
#: dequeue p50 (matches the dispatcher's hedge-timer window size).
_SERVICE_WINDOW = 64


class QueryClass(enum.Enum):
    """Priority class of one query (shed order: BATCH first)."""

    CRITICAL = "critical"
    INTERACTIVE = "interactive"
    BATCH = "batch"

    @classmethod
    def parse(cls, value: "QueryClass | str | None") -> "QueryClass":
        """Accept an enum member, its string value, or None (default)."""
        if value is None:
            return cls.INTERACTIVE
        if isinstance(value, cls):
            return value
        try:
            return cls(str(value).lower())
        except ValueError:
            raise GridRmError(f"unknown query class {value!r}") from None


def _median(values: "deque[float]") -> float:
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2.0


class GradientLimiter:
    """AIMD concurrency limit over epoch-folded latency observations."""

    def __init__(
        self,
        clock: VirtualClock,
        *,
        initial: int,
        floor: int,
        ceiling: int,
        tolerance: float,
        backoff: float,
        window: int,
        registry: Optional[MetricsRegistry] = None,
        key: str = "",
    ) -> None:
        self._clock = clock
        self.key = key
        self.floor = floor
        self.ceiling = ceiling
        self.tolerance = tolerance
        self.backoff = backoff
        self.window = window
        self.registry = registry if registry is not None else MetricsRegistry()
        self._limit = float(min(max(initial, floor), ceiling))
        #: Long-run latency floor the epoch mean is judged against.
        self._baseline: Optional[float] = None
        # Epoch accumulators: every fold is commutative (count, sum,
        # min, congested count), so unordered branches may observe into
        # one limiter without the outcome depending on launch order.
        self._count = 0
        self._sum = 0.0
        self._min = float("inf")
        self._congested = 0

    @property
    def limit(self) -> int:
        """The current integer concurrency limit."""
        return max(self.floor, int(self._limit))

    @property
    def baseline(self) -> Optional[float]:
        return self._baseline

    def observe(self, latency: float, *, congested: bool = False) -> None:
        """Fold one attempt's latency into the current epoch."""
        if races.ACTIVE is not None:
            races.note("limiter.window", self.key, "w", site="limiter.observe")
        self._count += 1
        self._sum += latency
        if latency < self._min:
            self._min = latency
        if congested:
            self._congested += 1
        if self._count >= self.window:
            self._roll()

    def _roll(self) -> None:
        """Close the epoch: recompute the limit from its aggregates."""
        mean = self._sum / self._count
        epoch_min = self._min
        congested = self._congested
        self._count = 0
        self._sum = 0.0
        self._min = float("inf")
        self._congested = 0
        if self._baseline is None:
            self._baseline = epoch_min
        else:
            # Track the floor, creeping toward the new regime so a
            # permanently slower world stops reading as congestion.
            self._baseline = (
                0.95 * min(self._baseline, epoch_min) + 0.05 * epoch_min
            )
        if congested > 0 or mean > self._baseline * self.tolerance:
            self._limit = max(float(self.floor), self._limit * self.backoff)
            self.registry.counter("limiter.backoffs").add(1)
        else:
            self._limit = min(float(self.ceiling), self._limit + 1.0)
            self.registry.counter("limiter.probes").add(1)
        if races.ACTIVE is not None:
            # VALUE discipline: two unordered rolls only conflict when
            # they land on *different* limits (a real order dependence).
            races.note(
                "limiter",
                self.key,
                "w",
                digest=f"{self._limit:.3f}",
                site="limiter.roll",
            )

    def snapshot(self) -> dict[str, Any]:
        return {
            "limit": self.limit,
            "baseline": self._baseline,
            "pending_samples": self._count,
        }


@dataclass
class AdmissionTicket:
    """Proof of admission; hand it back via ``release`` when done."""

    query_class: QueryClass
    #: Instant the slot was granted (post-queue) — service time anchor.
    admitted_at: float
    queued_for: float = 0.0


class AdmissionController:
    """Bounded priority admission + gateway-wide adaptive concurrency."""

    def __init__(
        self,
        clock: VirtualClock,
        policy: GatewayPolicy,
        *,
        registry: Optional[MetricsRegistry] = None,
        tracer: Optional[Tracer] = None,
        on_transition: Optional[
            Callable[[PressureState, PressureState], None]
        ] = None,
    ) -> None:
        self.clock = clock
        self.policy = policy
        self.registry = registry if registry is not None else MetricsRegistry()
        self.tracer = tracer if tracer is not None else NO_TRACER
        self.limiter = GradientLimiter(
            clock,
            initial=policy.admission_initial_limit,
            floor=policy.limiter_floor,
            ceiling=policy.limiter_ceiling,
            tolerance=policy.limiter_tolerance,
            backoff=policy.limiter_backoff,
            window=policy.limiter_window,
            registry=self.registry,
            key="gateway",
        )
        self.monitor = PressureMonitor(
            clock,
            queue_capacity=policy.admission_queue_limit,
            brownout_enter=policy.brownout_enter_pressure,
            shed_enter=policy.shed_enter_pressure,
            min_dwell=policy.pressure_min_dwell,
            registry=self.registry,
            on_transition=on_transition,
        )
        self.sheds = ShedLedger(self.registry)
        #: Completion instants of admitted requests; an entry with
        #: ``end > now`` is in flight at ``now`` (dispatcher idiom).
        self._ends: list[float] = []
        #: ``(entered, slot_granted)`` intervals of queue waits; a
        #: request is queued at ``now`` while ``entered <= now < granted``.
        self._queue_spans: list[tuple[float, float]] = []
        #: Post-queue service times (doomed-on-dequeue p50 source).
        self._service: deque[float] = deque(maxlen=_SERVICE_WINDOW)
        for name in (
            "admission.admitted",
            "admission.queued",
            "admission.doomed",
            "admission.brownout_served",
        ):
            self.registry.counter(name)

    # ------------------------------------------------------------------
    @property
    def enabled(self) -> bool:
        return self.policy.admission_enabled

    @property
    def state(self) -> PressureState:
        return self.monitor.state

    def inflight(self, now: Optional[float] = None) -> int:
        now = self.clock.now() if now is None else now
        return sum(1 for e in self._ends if e > now)

    def queue_depth(self, now: Optional[float] = None) -> int:
        now = self.clock.now() if now is None else now
        self._queue_spans = [s for s in self._queue_spans if s[1] > now]
        return sum(1 for enter, _ in self._queue_spans if enter <= now)

    def headroom(self, now: Optional[float] = None) -> int:
        return self.limiter.limit - self.inflight(now)

    # ------------------------------------------------------------------
    def decide(self, query_class: QueryClass) -> ShedAction:
        """Observe pressure and return this query's per-class fate."""
        now = self.clock.now()
        state = self.monitor.observe(self.queue_depth(now), self.headroom(now))
        return shed_action(state, query_class)

    def shed(self, query_class: QueryClass, reason: str) -> None:
        """Record the shed and raise the typed refusal."""
        self.sheds.record(query_class)
        retry_after = self.monitor.retry_after()
        with self.tracer.span(
            "shed", query_class=query_class.value, state=self.monitor.state.value
        ) as span:
            span["reason"] = reason
        raise OverloadError(
            f"query shed ({reason}; state={self.monitor.state.value}, "
            f"class={query_class.value}, retry after {retry_after:.1f}s)",
            retry_after=retry_after,
            query_class=query_class.value,
        )

    def admit(
        self, query_class: QueryClass, deadline: Optional[Deadline] = None
    ) -> AdmissionTicket:
        """Wait for (or be refused) a gateway-wide dispatch slot.

        Raises :class:`OverloadError` when the bounded queue is full for
        this class (CRITICAL always waits), and
        :class:`DeadlineExceededError` for requests doomed on dequeue —
        the queue wait left less budget than the observed p50 service
        time, so starting the work would only waste capacity.
        """
        now = self.clock.now()
        entered = now
        limit = self.limiter.limit
        live = [e for e in self._ends if e > now]
        queued_for = 0.0
        with self.tracer.span(
            "admit", query_class=query_class.value, state=self.monitor.state.value
        ):
            if len(live) >= limit:
                depth = self.queue_depth(now)
                cap = self.policy.admission_queue_limit
                bound = cap
                if query_class is QueryClass.BATCH:
                    bound = int(cap * self.policy.admission_batch_queue_share)
                if query_class is not QueryClass.CRITICAL and depth >= bound:
                    self.shed(
                        query_class, f"admission queue full ({depth}/{cap})"
                    )
                with self.tracer.span("queue_wait", depth=depth) as wspan:
                    while len(live) >= limit:
                        self.clock.advance_to(min(live))
                        now = self.clock.now()
                        live = [e for e in live if e > now]
                    queued_for = now - entered
                    wspan["waited"] = queued_for
                self._queue_spans.append((entered, now))
                self.registry.counter("admission.queued").add(1)
                self.registry.histogram("admission.queue_wait_time").record(
                    queued_for
                )
                if deadline is not None and self._service:
                    p50 = _median(self._service)
                    if deadline.remaining() <= p50:
                        self.registry.counter("admission.doomed").add(1)
                        raise DeadlineExceededError(
                            "doomed on dequeue: remaining budget "
                            f"{deadline.remaining():.3f}s is below the observed "
                            f"p50 service time {p50:.3f}s "
                            "(budget spent in queue_wait)"
                        )
        self._ends = live
        self.registry.counter("admission.admitted").add(1)
        return AdmissionTicket(
            query_class=query_class, admitted_at=now, queued_for=queued_for
        )

    def release(self, ticket: AdmissionTicket, *, congested: bool = False) -> None:
        """The admitted request finished: record its completion instant
        and feed the gateway limiter its post-queue service time."""
        now = self.clock.now()
        self._ends.append(now)
        service = now - ticket.admitted_at
        self._service.append(service)
        self.limiter.observe(service, congested=congested)
        self.registry.histogram("admission.service_time").record(service)

    def note_brownout_serve(self) -> None:
        self.registry.counter("admission.brownout_served").add(1)

    # ------------------------------------------------------------------
    # Retry / hedge interplay (satellite: don't fight our own limiter)
    # ------------------------------------------------------------------
    def allow_retry(self, query_class: QueryClass) -> bool:
        """May a failed attempt be retried right now?

        Under BROWNOUT/SHED a retry is extra offered load fighting the
        limiter; only CRITICAL keeps its retries.  Always true when
        admission is disabled.
        """
        if not self.enabled:
            return True
        return (
            self.monitor.state is PressureState.NORMAL
            or query_class is QueryClass.CRITICAL
        )

    def suppress_hedges(self) -> bool:
        """Hedges double a source's load — never fire one under pressure."""
        return self.enabled and self.monitor.state is not PressureState.NORMAL

    # ------------------------------------------------------------------
    def snapshot(self) -> dict[str, Any]:
        now = self.clock.now()
        return {
            "enabled": self.enabled,
            "state": self.monitor.state.value,
            "since": self.monitor.since,
            "transitions": self.monitor.transitions,
            "queue_depth": self.queue_depth(now),
            "queue_capacity": self.policy.admission_queue_limit,
            "inflight": self.inflight(now),
            "limit": self.limiter.limit,
            "headroom": self.headroom(now),
            "limiter": self.limiter.snapshot(),
            "sheds": self.sheds.counts(),
            "admitted": self.registry.counter("admission.admitted").value,
            "queued": self.registry.counter("admission.queued").value,
            "doomed": self.registry.counter("admission.doomed").value,
            "brownout_served": self.registry.counter(
                "admission.brownout_served"
            ).value,
        }
