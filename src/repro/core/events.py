"""EventManager (paper §3.1.5, Figure 4).

"The Manager provides a bridge between the native events issued by data
sources and GridRM": event drivers receive native events (SNMP traps
here) and translate them into the standard GridRM event format; incoming
events are recorded for historical analysis and forwarded to every
registered listener; and events can be pushed back *out* — translated to
a data source's native format and transmitted — which is how GridRM
"propagates events between Gateways and groups of diverse data sources".

Buffering follows Figure 4: a bounded **fast buffer** absorbs bursts
("ensures events are not lost in a busy system"); when it fills, events
spill to a larger **disk buffer**; only when both are full are events
dropped.  A periodic pump drains a bounded batch per tick — the drain
rate versus arrival rate trade-off is experiment E6.
"""

from __future__ import annotations

import itertools
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Deque, Mapping, Optional

from repro.agents import snmp as wire
from repro.core.history import HistoryStore
from repro.core.policy import GatewayPolicy
from repro.simnet.network import Address, Network

#: Listener signature.
Listener = Callable[["Event"], None]


@dataclass(frozen=True)
class Event:
    """The GridRM internal event format."""

    source_host: str
    name: str
    severity: str  # "info" | "warning" | "error"
    time: float
    fields: Mapping[str, Any] = field(default_factory=dict)
    native_kind: str = ""  # which event driver produced it


class EventDriver:
    """Translate between one native event format and :class:`Event`.

    The "custom Formatter plugged into each Driver" of Figure 4 is the
    pair of methods below.
    """

    #: Port this driver listens on at the gateway.
    port = 0
    #: Tag recorded into ``Event.native_kind``.
    kind = "base"

    def decode(self, payload: Any, src: Address, now: float) -> Optional[Event]:
        """Native payload -> Event (None to discard silently)."""
        raise NotImplementedError

    def encode(self, event: Event) -> Any:
        """Event -> native payload for outbound transmission."""
        raise NotImplementedError


class SnmpTrapEventDriver(EventDriver):
    """SNMP trap <-> GridRM event translation."""

    port = wire.TRAP_PORT
    kind = "snmp-trap"

    #: Known enterprise trap OIDs -> (event name, severity).
    TRAP_NAMES = {
        wire.oid_str(wire.TRAP_LOAD_HIGH): ("load.high", "warning"),
    }

    def decode(self, payload: Any, src: Address, now: float) -> Optional[Event]:
        try:
            msg = wire.SnmpMessage.decode(payload)
        except (wire.SnmpCodecError, TypeError):
            return None
        if msg.pdu_type != wire.TAG_TRAP or not msg.varbinds:
            return None
        trap_oid = wire.oid_str(msg.varbinds[0].oid)
        name, severity = self.TRAP_NAMES.get(trap_oid, (f"trap.{trap_oid}", "info"))
        fields = {
            wire.oid_str(vb.oid): vb.value for vb in msg.varbinds[1:]
        }
        return Event(
            source_host=src.host,
            name=name,
            severity=severity,
            time=now,
            fields=fields,
            native_kind=self.kind,
        )

    def encode(self, event: Event) -> bytes:
        varbinds = [wire.VarBind(oid=wire.TRAP_LOAD_HIGH, value=event.name)]
        for key, value in event.fields.items():
            try:
                oid = wire.oid_parse(key)
            except ValueError:
                continue
            varbinds.append(wire.VarBind(oid=oid, value=value))
        return wire.SnmpMessage(
            version=1,
            community="public",
            pdu_type=wire.TAG_TRAP,
            request_id=0,
            error_status=0,
            error_index=0,
            varbinds=tuple(varbinds),
        ).encode()


@dataclass
class _Registration:
    listener: Listener
    source_host: Optional[str]
    name_prefix: Optional[str]

    def wants(self, event: Event) -> bool:
        if self.source_host is not None and event.source_host != self.source_host:
            return False
        if self.name_prefix is not None and not event.name.startswith(self.name_prefix):
            return False
        return True


class EventManager:
    """Fast buffer -> disk buffer -> translate -> record + fan out."""

    #: Events drained per pump tick — the "busy system" bottleneck of E6.
    DEFAULT_DRAIN_BATCH = 64
    DEFAULT_DRAIN_PERIOD = 1.0

    def __init__(
        self,
        network: Network,
        gateway_host: str,
        policy: GatewayPolicy,
        *,
        history: HistoryStore | None = None,
        drain_batch: int = DEFAULT_DRAIN_BATCH,
        drain_period: float = DEFAULT_DRAIN_PERIOD,
    ) -> None:
        if drain_batch < 1:
            raise ValueError(f"drain_batch must be >= 1: {drain_batch!r}")
        self.network = network
        self.gateway_host = gateway_host
        self.policy = policy
        self.history = history
        self.drain_batch = drain_batch
        self._drivers: dict[int, EventDriver] = {}
        self._fast: Deque[tuple[int, Any, Address, float]] = deque()
        self._disk: Deque[tuple[int, Any, Address, float]] = deque()
        self._registrations: list[_Registration] = []
        self._reg_ids = itertools.count(1)
        self.recent: Deque[Event] = deque(maxlen=256)
        self.stats = {
            "received": 0,
            "translated": 0,
            "delivered": 0,
            "undecodable": 0,
            "spilled": 0,
            "dropped": 0,
            "transmitted": 0,
            "internal": 0,
        }
        self._pump_timer = network.clock.call_every(drain_period, self.pump)

    def stop(self) -> None:
        """Stop the drain pump and unbind event-driver ports (shutdown)."""
        self._pump_timer.cancel()
        for port in self._drivers:
            self.network.close(Address(self.gateway_host, port))

    # ------------------------------------------------------------------
    # Event drivers / ingestion
    # ------------------------------------------------------------------
    def install_driver(self, driver: EventDriver) -> None:
        """Listen for this driver's native events at its port."""
        if driver.port in self._drivers:
            raise ValueError(f"port {driver.port} already has an event driver")
        self._drivers[driver.port] = driver
        address = Address(self.gateway_host, driver.port)

        def on_datagram(payload: Any, src: Address, _port: int = driver.port) -> None:
            self._ingest(_port, payload, src)

        self.network.listen(address, lambda p, s: None, datagram_handler=on_datagram)

    def _ingest(self, port: int, payload: Any, src: Address) -> None:
        self.stats["received"] += 1
        item = (port, payload, src, self.network.clock.now())
        if len(self._fast) < self.policy.event_fast_buffer_size:
            self._fast.append(item)
        elif len(self._disk) < self.policy.event_disk_buffer_size:
            self.stats["spilled"] += 1
            self._disk.append(item)
        else:
            self.stats["dropped"] += 1

    # ------------------------------------------------------------------
    # Listeners
    # ------------------------------------------------------------------
    def register_listener(
        self,
        listener: Listener,
        *,
        source_host: str | None = None,
        name_prefix: str | None = None,
    ) -> _Registration:
        """Register for events, optionally filtered by source or name."""
        reg = _Registration(
            listener=listener, source_host=source_host, name_prefix=name_prefix
        )
        self._registrations.append(reg)
        return reg

    def unregister_listener(self, registration: _Registration) -> bool:
        try:
            self._registrations.remove(registration)
            return True
        except ValueError:
            return False

    # ------------------------------------------------------------------
    # Pump
    # ------------------------------------------------------------------
    def pump(self) -> int:
        """Drain up to ``drain_batch`` buffered events; returns the count."""
        processed = 0
        while processed < self.drain_batch:
            if self._fast:
                item = self._fast.popleft()
            elif self._disk:
                item = self._disk.popleft()
            else:
                break
            processed += 1
            port, payload, src, received_at = item
            driver = self._drivers.get(port)
            if driver is None:
                self.stats["undecodable"] += 1
                continue
            event = driver.decode(payload, src, received_at)
            if event is None:
                self.stats["undecodable"] += 1
                continue
            self.stats["translated"] += 1
            self._dispatch(event)
        return processed

    def emit(self, event: Event) -> None:
        """Dispatch an internally generated GridRM event.

        Gateway subsystems (alert rules, circuit-breaker transitions)
        produce events that never had a native form: they bypass the
        ingest buffers and decode step but are recorded into history and
        fanned out to listeners exactly like translated native events.
        """
        self.stats["internal"] += 1
        self._dispatch(event)

    def _dispatch(self, event: Event) -> None:
        self.recent.append(event)
        if self.history is not None and self.policy.event_history_enabled:
            self.history.record(
                "LogEvent",
                [
                    {
                        "HostName": event.source_host,
                        "Timestamp": event.time,
                        "EventTime": event.time,
                        "Program": event.native_kind,
                        "EventName": event.name,
                        "Level": event.severity,
                        "Message": repr(dict(event.fields)),
                    }
                ],
                source_url=f"event://{event.source_host}",
                recorded_at=event.time,
            )
        for reg in list(self._registrations):
            if reg.wants(event):
                self.stats["delivered"] += 1
                reg.listener(event)

    # ------------------------------------------------------------------
    # Outbound
    # ------------------------------------------------------------------
    def transmit(self, event: Event, target: Address, *, kind: str | None = None) -> None:
        """Translate a GridRM event to a native format and send it out
        (paper: "the Manager can pass events back out to data sources")."""
        driver = None
        if kind is not None:
            for d in self._drivers.values():
                if d.kind == kind:
                    driver = d
                    break
        elif self._drivers:
            driver = self._drivers.get(target.port) or next(iter(self._drivers.values()))
        if driver is None:
            raise ValueError(f"no event driver for kind {kind!r}")
        payload = driver.encode(event)
        self.network.send(self.gateway_host, target, payload)
        self.stats["transmitted"] += 1

    # ------------------------------------------------------------------
    def backlog(self) -> int:
        return len(self._fast) + len(self._disk)
