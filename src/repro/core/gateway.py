"""The GridRM Gateway (paper §1.1, Figure 2).

"GridRM Gateways are used to coordinate the management and monitoring of
resources at each Grid site.  This includes the controlled access to
real-time and historical data harvested from local resources."

A Gateway wires together the entire Local layer — security, sessions,
schema manager, driver manager, connection pool, query cache, history,
events, request manager, ACIL — over one simulated network host, and
manages the set of data sources the site monitors (the list the JSP tree
view of Figures 6-9 presents).  The Global layer (:mod:`repro.gma`)
attaches to a Gateway to route remote queries.
"""

from __future__ import annotations

from contextlib import ExitStack
from dataclasses import dataclass, field
from typing import Any, Mapping, MutableMapping, Optional, Sequence

from repro.analysis.conformance import check_driver
from repro.analysis.findings import AnalysisReport, Finding, Severity
from repro.analysis.query_check import validate_sql
from repro.core.acil import AbstractClientInterface
from repro.core.admission import AdmissionController, QueryClass
from repro.core.cache import CacheController
from repro.core.connection_manager import ConnectionManager
from repro.core.deadline import Deadline
from repro.core.dispatch import FanoutDispatcher
from repro.core.driver_manager import GridRmDriverManager
from repro.core.errors import DeadlineExceededError, GridRmError, OverloadError
from repro.core.events import Event, EventManager, SnmpTrapEventDriver
from repro.core.health import BreakerState, HealthTracker, SourceHealth
from repro.core.history import HistoryStore
from repro.core.plans import PlanCache
from repro.core.policy import GatewayPolicy
from repro.core.request_manager import (
    QueryMode,
    QueryResult,
    RequestManager,
    SourceStatus,
    merge_rows,
)
from repro.core.shed import PressureState, ShedAction
from repro.core.schema_manager import SchemaManager
from repro.core.security import (
    ANONYMOUS,
    CoarseGrainedSecurity,
    FineGrainedSecurity,
    Principal,
)
from repro.core.sessions import Session, SessionManager
from repro.dbapi.exceptions import SQLException
from repro.dbapi.interfaces import Driver
from repro.dbapi.registry import DriverRegistry
from repro.dbapi.url import JdbcUrl
from repro.drivers import default_driver_set
from repro.obs.driver import GatewayMetricsDriver
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Tracer
from repro.simnet.network import Address, Network
from repro.sql.parser import parse_select
from repro.storage.engine import HistoryEngine
from repro.storage.recovery import RecoveryReport
from repro.storage.simdisk import SimDisk


@dataclass
class DataSource:
    """One entry in the gateway's monitored-source list.

    The trailing fields hold the poll status the JSP tree view renders
    (Figure 9's icons: data fresh / poll failed / never polled).
    """

    url: JdbcUrl
    label: str = ""
    enabled: bool = True
    added_at: float = 0.0
    last_polled: float | None = None
    last_ok: bool | None = None
    last_error: str = ""


@dataclass
class BatchQuery:
    """One member of a :meth:`Gateway.query_batch` request."""

    urls: str | JdbcUrl | Sequence[str | JdbcUrl]
    sql: str
    mode: QueryMode = QueryMode.CACHED_OK
    max_age: float | None = None
    #: Per-member end-to-end budget in virtual seconds (None = policy
    #: default); each member of a batch gets its own deadline.
    timeout: float | None = None
    #: Priority class of this member (None = the policy default); under
    #: pressure the gateway sheds "batch" first and never "critical".
    query_class: "QueryClass | str | None" = None


def _spec_finding(spec: str, error: str) -> Finding:
    """A GRM301 finding for a persisted driver spec that would not load."""
    return Finding(
        rule_id="GRM301",
        severity=Severity.WARNING,
        message=f"persisted driver spec failed to load: {error}",
        path="<persistent-store>",
        symbol=spec,
    )


class Gateway:
    """One Grid site's GridRM gateway."""

    def __init__(
        self,
        network: Network,
        host: str,
        *,
        site: str | None = None,
        policy: GatewayPolicy | None = None,
        schema_manager: SchemaManager | None = None,
        register_default_drivers: bool = True,
        install_event_drivers: bool = True,
        persistent_store: MutableMapping[str, str] | None = None,
        disk: SimDisk | None = None,
    ) -> None:
        if not network.has_host(host):
            network.add_host(host, site=site or "default")
        self.network = network
        self.host = host
        self.site = network.site_of(host)
        self.policy = policy if policy is not None else GatewayPolicy()

        self.schema_manager = (
            schema_manager if schema_manager is not None else SchemaManager()
        )
        self.registry = DriverRegistry()
        # The observability plane comes first: every manager below hangs
        # its stats off this shared registry and emits spans into this
        # tracer, and the self-monitoring driver serves the registry back
        # out as the GatewayMetrics GLUE group.
        self.metrics = MetricsRegistry(network.clock)
        self.tracer = Tracer(
            network.clock,
            enabled=self.policy.tracing_enabled,
            max_traces=self.policy.trace_max_traces,
        )
        # Harnesses that run this gateway under the virtual-lane race
        # detector (chaos --race-detect, racecheck) attach it here so
        # analyze() folds GRM55x findings into the admin report.
        self.race_detector: Any | None = None
        # One health tracker shared by every manager: local sources are
        # keyed by their full JDBC URL, remote gateways by gma://<site>.
        self.health = HealthTracker(
            network.clock,
            self.policy,
            on_transition=self._on_breaker_transition,
            registry=self.metrics,
        )
        self.driver_manager = GridRmDriverManager(
            self.registry,
            self.policy,
            persistent_store=persistent_store,
            health=self.health,
            metrics=self.metrics,
            tracer=self.tracer,
        )
        self.connection_manager = ConnectionManager(
            self.driver_manager,
            network.clock,
            self.policy,
            health=self.health,
            registry=self.metrics,
            tracer=self.tracer,
        )
        self.cache = CacheController(
            network.clock,
            ttl=self.policy.query_cache_ttl,
            max_entries=self.policy.query_cache_max_entries,
            registry=self.metrics,
        )
        # Durable history (policy.history_durable): the storage engine
        # recovers from the shared disk *before* the serving store is
        # built, so the HistoryStore's tables start populated with every
        # acknowledged pre-crash row.  Without the flag the store is the
        # original in-memory ring and the disk is untouched.
        self.history_engine: HistoryEngine | None = None
        self.recovery_report: RecoveryReport | None = None
        if self.policy.history_durable:
            if disk is None:
                disk = SimDisk(clock=network.clock)
            self.history_engine = HistoryEngine(
                disk,
                clock=network.clock,
                sync_interval=self.policy.history_fsync_interval,
                max_rows_per_group=self.policy.history_max_rows_per_group,
                retention_age=self.policy.history_retention_age,
                registry=self.metrics,
                tracer=self.tracer,
            )
            self.recovery_report = self.history_engine.recovery_report
        self.disk = disk
        self.history = HistoryStore(
            self.schema_manager.schema,
            max_rows_per_group=self.policy.history_max_rows_per_group,
            engine=self.history_engine,
        )
        self._checkpoint_task = None
        if (
            self.history_engine is not None
            and self.policy.history_checkpoint_interval > 0
        ):
            self._checkpoint_task = network.clock.call_every(
                self.policy.history_checkpoint_interval, self.history.checkpoint
            )
        self.events = EventManager(
            network, host, self.policy, history=self.history
        )
        # One dispatcher for the whole gateway: the RequestManager's
        # per-source fan-out, the Global layer's scatter-gather and
        # client batches all share it, so identical concurrent requests
        # coalesce across every code path.
        self.dispatcher = FanoutDispatcher(
            network.clock, self.policy, registry=self.metrics, tracer=self.tracer
        )
        # One plan cache for the whole gateway, invalidated whenever the
        # SchemaManager's version moves (every mapping change bumps it):
        # parse + GLUE validation + compilation happen once per distinct
        # query text, not once per request.
        self.plans = PlanCache(
            self.schema_manager.schema,
            version_fn=lambda: self.schema_manager.version,
            registry=self.metrics,
            tracer=self.tracer,
        )
        # Overload protection: bounded admission queue + gateway-wide
        # adaptive concurrency + NORMAL/BROWNOUT/SHED pressure machine.
        # Inert unless policy.admission_enabled (decide/admit are only
        # called on the admitted path), so replay signatures and golden
        # traces of existing scenarios are untouched.
        self.overload = AdmissionController(
            network.clock,
            self.policy,
            registry=self.metrics,
            tracer=self.tracer,
            on_transition=self._on_pressure_transition,
        )
        self.request_manager = RequestManager(
            self.connection_manager,
            self.cache,
            self.history,
            self.policy,
            health=self.health,
            dispatcher=self.dispatcher,
            registry=self.metrics,
            tracer=self.tracer,
            plans=self.plans,
            admission=self.overload,
        )
        # Continuous-SQL streaming plane (repro.gma.streams): built only
        # when policy.streaming_enabled, so default gateways schedule no
        # sweep timer and publish nothing — replay signatures and golden
        # traces of existing scenarios are untouched.  Imported lazily
        # (like AlertMonitor) to keep module import order acyclic.
        self.streams: Any | None = None
        if self.policy.streaming_enabled:
            from repro.gma.streams import StreamHub

            self.streams = StreamHub(
                network,
                host,
                plans=self.plans,
                schema=self.schema_manager.schema,
                policy=self.policy,
                history=self.history,
                overload=self.overload,
                tracer=self.tracer,
            )
            self.request_manager.streams = self.streams
        self.cgsl = CoarseGrainedSecurity(enabled=self.policy.security_enabled)
        self.fgsl = FineGrainedSecurity(enabled=self.policy.security_enabled)
        self.sessions = SessionManager(network.clock, ttl=self.policy.session_ttl)
        self.acil = AbstractClientInterface(self)
        # Threshold alerting over the query path (Figure 3); imported
        # here to keep module import order acyclic.
        from repro.core.alerts import AlertMonitor

        self.alerts = AlertMonitor(self)

        self._sources: dict[str, DataSource] = {}
        #: Set by repro.gma.GlobalLayer when this gateway joins the GMA
        #: fabric; enables transparent routing of remote-site URLs.
        self.global_layer = None

        if register_default_drivers:
            for driver in default_driver_set(network, gateway_host=host):
                self.driver_manager.register(driver)
        # The monitor monitors itself: the grm:// self-monitoring driver
        # serves this gateway's own metrics registry through the normal
        # stack (``SELECT * FROM GatewayMetrics``).  Not persisted — its
        # constructor needs the live registry, which a start-up restore
        # could not supply.
        self.driver_manager.register(
            GatewayMetricsDriver(
                network,
                gateway_host=host,
                registry=self.metrics,
                tracer=self.tracer,
                site=self.site,
            ),
            persist=False,
        )
        # Drivers persisted by an earlier gateway incarnation re-register
        # on start-up (paper §3.2.2) — skip specs already live; a spec
        # that no longer loads is skipped, not allowed to abort start-up.
        report = self.driver_manager.restore_persisted(
            network,
            gateway_host=host,
            skip_names=self.driver_manager.driver_names(),
        )
        #: ``(spec, error)`` pairs the start-up restore could not load.
        self.restore_skipped: list[tuple[str, str]] = list(report.skipped)
        #: Compile-time findings produced at start-up: every persisted
        #: spec that would not load (GRM301) plus a full DDK conformance
        #: check of each plug-in the restore *did* bring back — problems
        #: are known before any query reaches the driver, not at fetch
        #: time.  The shipped default set is trusted (and covered by the
        #: repo's own lint run); only restored plug-ins are re-checked.
        self.startup_findings: list[Finding] = [
            _spec_finding(spec, error) for spec, error in report.skipped
        ]
        for restored in report.restored:
            self.startup_findings.extend(check_driver(restored))
        # Recovery damage reports (quarantined segments, truncated WAL
        # tails, skipped manifests) surface the same way skipped driver
        # specs do: visible findings, never a start-up failure.
        if self.recovery_report is not None:
            self.startup_findings.extend(self.recovery_report.findings)
        if install_event_drivers:
            self.events.install_driver(SnmpTrapEventDriver())

    # ------------------------------------------------------------------
    # Source health (circuit breakers)
    # ------------------------------------------------------------------
    def _on_breaker_transition(
        self,
        key: str,
        old: BreakerState,
        new: BreakerState,
        entry: SourceHealth,
    ) -> None:
        """A source's circuit breaker changed state.

        Tripping OPEN quarantines the source's pooled connections, and
        every transition is emitted as a GridRM event (recorded into
        history for the paper's historical-analysis story, fanned out to
        listeners like any native event).
        """
        if new is BreakerState.OPEN:
            self.connection_manager.quarantine(key)
        try:
            source_host = JdbcUrl.parse(key).host
        except SQLException:
            # Remote-gateway keys (gma://<site>) and other non-JDBC keys.
            source_host = key.partition("://")[2].split("/")[0] or key
        severity = {
            BreakerState.OPEN: "error",
            BreakerState.HALF_OPEN: "warning",
            BreakerState.CLOSED: "info",
        }[new]
        self.events.emit(
            Event(
                source_host=source_host,
                name=f"breaker.{new.value}",
                severity=severity,
                time=self.network.clock.now(),
                fields={
                    "source": key,
                    "from": old.value,
                    "to": new.value,
                    "consecutive_failures": entry.consecutive_failures,
                    "backoff": entry.current_backoff,
                    "error": entry.last_error,
                },
                native_kind="health",
            )
        )

    def _on_pressure_transition(
        self, old: PressureState, new: PressureState
    ) -> None:
        """The gateway's overload state machine changed state: emit it as
        a GridRM event (recorded into history, fanned out to listeners)
        so operators see brownouts the same way they see breaker trips."""
        severity = {
            PressureState.NORMAL: "info",
            PressureState.BROWNOUT: "warning",
            PressureState.SHED: "error",
        }[new]
        self.events.emit(
            Event(
                source_host=self.host,
                name=f"pressure.{new.value}",
                severity=severity,
                time=self.network.clock.now(),
                fields={
                    "from": old.value,
                    "to": new.value,
                    "queue_depth": self.overload.queue_depth(),
                    "limit": self.overload.limiter.limit,
                },
                native_kind="health",
            )
        )

    # ------------------------------------------------------------------
    # Data-source list management (paper §4, Figure 9)
    # ------------------------------------------------------------------
    def add_source(self, url: JdbcUrl | str, *, label: str = "") -> DataSource:
        url = JdbcUrl.parse(url) if isinstance(url, str) else url
        key = str(url)
        if key in self._sources:
            return self._sources[key]
        source = DataSource(
            url=url, label=label or url.host, added_at=self.network.clock.now()
        )
        self._sources[key] = source
        return source

    def remove_source(self, url: JdbcUrl | str) -> bool:
        url = JdbcUrl.parse(url) if isinstance(url, str) else url
        removed = self._sources.pop(str(url), None) is not None
        if removed:
            self.cache.invalidate(str(url))
        return removed

    def sources(self) -> list[DataSource]:
        return sorted(self._sources.values(), key=lambda s: str(s.url))

    def source(self, url: JdbcUrl | str) -> Optional[DataSource]:
        url = JdbcUrl.parse(url) if isinstance(url, str) else url
        return self._sources.get(str(url))

    # ------------------------------------------------------------------
    # Sessions / security
    # ------------------------------------------------------------------
    def login(self, principal: Principal) -> Session:
        """Authenticate a principal (authentication itself is assumed, as
        in the paper's testbeds) and open a session."""
        return self.sessions.open(principal)

    def _authorise(
        self, principal: Principal, urls: Sequence[JdbcUrl], sql: str, operation: str
    ) -> None:
        self.cgsl.check(principal, operation)
        for group in parse_select(sql).tables:
            for url in urls:
                self.fgsl.check(principal, url.host, group)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def query(
        self,
        urls: str | JdbcUrl | Sequence[str | JdbcUrl],
        sql: str,
        *,
        mode: QueryMode = QueryMode.REALTIME,
        principal: Principal = ANONYMOUS,
        max_age: float | None = None,
        timeout: float | None = None,
        deadline: Deadline | None = None,
        trace_parent: Mapping[str, Any] | None = None,
        query_class: "QueryClass | str | None" = None,
    ) -> QueryResult:
        """Run a client query against one or more local data sources.

        ``query_class`` sets the query's priority class ("critical" /
        "interactive" / "batch", defaulting to the policy's
        ``default_query_class``).  With admission control enabled the
        gateway sheds BATCH first under pressure
        (:class:`~repro.core.errors.OverloadError`), serves sheddable
        classes stale in BROWNOUT, and never refuses CRITICAL.

        ``timeout`` gives the query an end-to-end budget in virtual
        seconds: a :class:`~repro.core.deadline.Deadline` is minted here
        and carried down every hop (request manager, driver selection,
        connection acquire, the driver's native requests, and — for
        remote URLs — the Global layer's wire payloads), each hop seeing
        only the *remaining* budget.  When omitted, the policy's
        ``default_deadline`` applies (0 = unlimited, the default).
        ``deadline`` lets an upstream caller (e.g. a remote producer
        re-anchoring a wire budget) pass an existing deadline instead.

        A trace rides the same path: the root span opens here, every hop
        below adds children, and the finished tree is retrievable as
        ``result.trace_id``.  ``trace_parent`` carries the originating
        span context when this query arrived over the GMA wire, so a
        remote site's tree links back to the consumer's.
        """
        if isinstance(urls, (str, JdbcUrl)):
            urls = [urls]
        parsed = [JdbcUrl.parse(u) if isinstance(u, str) else u for u in urls]
        operation = "history" if mode is QueryMode.HISTORY else "query"
        self._authorise(principal, parsed, sql, operation)
        if deadline is None:
            budget = timeout if timeout is not None else self.policy.default_deadline
            if budget > 0:
                deadline = Deadline.after(self.network.clock, budget)
        qc = QueryClass.parse(
            query_class if query_class is not None
            else self.policy.default_query_class
        )

        with self.tracer.start_trace(
            "query",
            remote_parent=dict(trace_parent) if trace_parent else None,
            sql=sql,
            mode=mode.value,
            site=self.site,
            urls=len(parsed),
        ) as root:
            trace = self.tracer.current_trace()
            result = self._admitted_query(
                parsed, sql, mode, max_age, principal, deadline, root, qc
            )
        result.trace_id = trace.trace_id if trace is not None else ""
        return result

    def _admitted_query(
        self,
        parsed: list[JdbcUrl],
        sql: str,
        mode: QueryMode,
        max_age: float | None,
        principal: Principal,
        deadline: Deadline | None,
        root,
        qc: QueryClass,
    ) -> QueryResult:
        """The overload-protected entry to the query path.

        With admission off (the default) — or for HISTORY queries, which
        cost no agent traffic — this is a transparent pass-through, so
        existing traces and replay signatures are byte-identical.
        """
        adm = self.overload
        if not adm.enabled or mode is QueryMode.HISTORY:
            return self._traced_query(
                parsed, sql, mode, max_age, principal, deadline, root, qc
            )
        root.annotate(query_class=qc.value)
        action = adm.decide(qc)
        if action in (ShedAction.STALE_THEN_DISPATCH, ShedAction.STALE_THEN_SHED):
            stale = self._brownout_result(parsed, sql, mode)
            if stale is not None:
                adm.note_brownout_serve()
                return stale
            if action is ShedAction.STALE_THEN_SHED:
                adm.shed(qc, "no stale coverage under pressure")
        elif action is ShedAction.SHED:
            adm.shed(qc, "gateway shedding")
        ticket = adm.admit(qc, deadline)
        congested = True
        try:
            result = self._traced_query(
                parsed, sql, mode, max_age, principal, deadline, root, qc
            )
            # A request that failed any source (deadline blowouts
            # included) is a congestion signal to the gateway limiter.
            congested = result.failed_sources > 0
            return result
        finally:
            adm.release(ticket, congested=congested)

    def _brownout_result(
        self, parsed: list[JdbcUrl], sql: str, mode: QueryMode
    ) -> QueryResult | None:
        """A complete stale answer from the query cache, or None.

        Brownout serving is all-or-nothing: every URL must still hold a
        (possibly expired) cached relation for this SQL — a partial
        stale answer would silently drop sources, so it falls through to
        normal dispatch (or a shed) instead.
        """
        started = self.network.clock.now()
        hits: list[tuple[str, Any]] = []
        for url in parsed:
            stale = self.cache.lookup_stale(str(url), sql)
            if stale is None:
                return None
            hits.append((str(url), stale))
        with self.tracer.span(
            "brownout_serve",
            sources=len(hits),
            state=self.overload.monitor.state.value,
        ):
            result = QueryResult(
                columns=[], rows=[], mode=mode, started_at=started
            )
            for url_text, stale in hits:
                result.columns, n = merge_rows(
                    result.columns, result.rows, stale.columns, stale.rows
                )
                result.statuses.append(
                    SourceStatus(
                        url=url_text,
                        ok=True,
                        rows=n,
                        from_cache=True,
                        degraded=True,
                    )
                )
        result.elapsed = self.network.clock.now() - started
        return result

    def _traced_query(
        self,
        parsed: list[JdbcUrl],
        sql: str,
        mode: QueryMode,
        max_age: float | None,
        principal: Principal,
        deadline: Deadline | None,
        root,
        qc: QueryClass = QueryClass.INTERACTIVE,
    ) -> QueryResult:
        # Transparent Global-layer routing (paper §1.1): URLs whose host
        # belongs to another site are forwarded to the owning gateway
        # when this gateway has joined the GMA fabric.
        local, remote_by_site = self._partition_by_site(parsed)
        info = {
            "schema_manager": self.schema_manager,
            "schema": self.schema_manager.schema,
            "query_class": qc,
        }
        started = self.network.clock.now()
        if not remote_by_site:
            # Local-only fast path: the RequestManager fans out itself.
            result = self.request_manager.execute(
                local, sql, mode=mode, max_age=max_age, info=info, deadline=deadline
            )
        else:
            # Scatter-gather: the local batch and each remote site's
            # batch are dispatched concurrently; partials merge in the
            # deterministic order local-first, then site order.
            result = QueryResult(columns=[], rows=[], mode=mode, started_at=started)
            thunks = []
            if local:
                thunks.append(
                    lambda: self.request_manager.execute(
                        local, sql, mode=mode, max_age=max_age, info=info,
                        deadline=deadline,
                    )
                )

            def remote_branch(site_name: str, site_urls: list[str]):
                def run() -> QueryResult:
                    partial = QueryResult(columns=[], rows=[], mode=mode)
                    self._query_remote_site(
                        site_name, site_urls, sql, mode, max_age, principal,
                        partial, deadline, qc,
                    )
                    return partial

                return run

            for site_name, site_urls in remote_by_site.items():
                thunks.append(remote_branch(site_name, site_urls))
            for outcome in self.dispatcher.run(thunks):
                if outcome.error is not None:
                    raise outcome.error
                partial = outcome.value
                result.statuses.extend(partial.statuses)
                if partial.columns:
                    result.columns, _ = merge_rows(
                        result.columns, result.rows, partial.columns, partial.rows
                    )
        result.elapsed = self.network.clock.now() - started
        root.annotate(
            rows=len(result.rows),
            sources_ok=sum(1 for s in result.statuses if s.ok),
            sources_failed=sum(1 for s in result.statuses if not s.ok),
        )
        self.metrics.histogram("gateway.query_elapsed").record(result.elapsed)
        # Update per-source poll status for the tree view (Figure 9).
        now = self.network.clock.now()
        for status in result.statuses:
            source = self._sources.get(status.url)
            if source is not None and not status.from_cache:
                source.last_polled = now
                source.last_ok = status.ok
                source.last_error = status.error
        return result

    def _partition_by_site(
        self, urls: Sequence[JdbcUrl]
    ) -> tuple[list[JdbcUrl], dict[str, list[str]]]:
        """Split URLs into locally served vs remote-site batches.

        Without a Global layer everything is treated as local: the
        simulated internet does allow a driver to poll a remote agent
        directly over the WAN, it is just slower and bypasses the owning
        gateway's cache and security — exactly why the paper routes
        through gateways.
        """
        if self.global_layer is None:
            return list(urls), {}
        local: list[JdbcUrl] = []
        remote: dict[str, list[str]] = {}
        for url in urls:
            try:
                site = self.network.site_of(url.host)
            except KeyError:
                local.append(url)  # unknown host: fail locally, visibly
                continue
            if site == self.site:
                local.append(url)
            else:
                remote.setdefault(site, []).append(str(url))
        return local, remote

    def _query_remote_site(
        self,
        site_name: str,
        site_urls: list[str],
        sql: str,
        mode: QueryMode,
        max_age: float | None,
        principal: Principal,
        result,
        deadline: Deadline | None = None,
        qc: QueryClass = QueryClass.INTERACTIVE,
    ) -> None:
        """Forward one remote batch via the Global layer, merging the
        remote answer (or failure) into ``result``."""
        from repro.gma.global_layer import RemoteQueryError

        try:
            remote = self.global_layer.query_remote(
                site_name,
                sql,
                urls=site_urls,
                mode=mode.value,
                max_age=max_age,
                principal=principal,
                deadline=deadline,
                query_class=qc.value,
            )
        except OverloadError as exc:
            # The remote gateway shed the batch to protect itself: a
            # typed per-source shed status, never a breaker failure
            # against gma://<site> (the Global layer already skipped the
            # health penalty for sheds).
            for u in site_urls:
                result.statuses.append(
                    SourceStatus(url=u, ok=False, shed=True, error=str(exc))
                )
            return
        except (RemoteQueryError, DeadlineExceededError) as exc:
            degraded = self.health.state(f"gma://{site_name}") is BreakerState.OPEN
            for u in site_urls:
                result.statuses.append(
                    SourceStatus(url=u, ok=False, degraded=degraded, error=str(exc))
                )
            return
        result.columns, _ = merge_rows(
            result.columns, result.rows, remote.columns, remote.rows
        )
        for s in remote.statuses:
            result.statuses.append(
                SourceStatus(
                    url=s.get("url", f"gma://{site_name}"),
                    ok=bool(s.get("ok")),
                    rows=int(s.get("rows", 0) or 0),
                    from_cache=bool(s.get("from_cache")),
                    degraded=bool(s.get("degraded")),
                    shed=bool(s.get("shed")),
                    error=str(s.get("error", "") or ""),
                )
            )

    def query_batch(
        self,
        queries: Sequence["BatchQuery"],
        *,
        principal: Principal = ANONYMOUS,
    ) -> list[QueryResult | Exception]:
        """Run several independent client queries concurrently.

        The batch costs the slowest member's virtual elapsed time, not
        the sum; identical sub-requests across members coalesce via
        single-flight (a join and a tree-view poll asking one source the
        same group share a single agent round-trip).  Results come back
        in batch order; a member that fails contributes its exception in
        place rather than aborting its siblings.
        """

        def member(q: BatchQuery):
            return lambda: self.query(
                q.urls,
                q.sql,
                mode=q.mode,
                principal=principal,
                max_age=q.max_age,
                timeout=q.timeout,
                query_class=q.query_class,
            )

        # Batch members are virtually simultaneous, so each involved
        # source's breaker decision is frozen as of batch launch and
        # outcome recording deferred to the batch join — the same lane
        # discipline hedge siblings follow (HealthTracker.pin).  Without
        # this, member k's admission would read breaker state member
        # k-1's outcome just wrote: a launch-order dependence (GRM552).
        keys = sorted({str(u) for q in queries for u in q.urls})
        with ExitStack() as pins:
            for key in keys:
                pins.enter_context(
                    self.health.pin(key, self.health.allow_request(key))
                )
            outcomes = self.dispatcher.run([member(q) for q in queries])
        return [o.value if o.error is None else o.error for o in outcomes]

    def query_all_sources(
        self,
        sql: str,
        *,
        mode: QueryMode = QueryMode.CACHED_OK,
        principal: Principal = ANONYMOUS,
        max_age: float | None = None,
        query_class: "QueryClass | str | None" = None,
    ) -> QueryResult:
        """Run one query across every enabled configured source."""
        urls = [s.url for s in self.sources() if s.enabled]
        if not urls:
            raise GridRmError("no data sources configured")
        return self.query(
            urls, sql, mode=mode, principal=principal, max_age=max_age,
            query_class=query_class,
        )

    # ------------------------------------------------------------------
    # Driver administration (paper §4, Figure 8)
    # ------------------------------------------------------------------
    def register_driver(
        self, driver: Driver, *, principal: Principal = ANONYMOUS
    ) -> None:
        self.cgsl.check(principal, "admin")
        self.driver_manager.register(driver)

    def unregister_driver(
        self, driver: Driver, *, principal: Principal = ANONYMOUS
    ) -> bool:
        self.cgsl.check(principal, "admin")
        return self.driver_manager.unregister(driver)

    def set_driver_preference(
        self,
        url: JdbcUrl | str,
        driver_names: list[str],
        *,
        principal: Principal = ANONYMOUS,
    ) -> None:
        self.cgsl.check(principal, "admin")
        self.driver_manager.set_preference(url, driver_names)

    # ------------------------------------------------------------------
    @property
    def trap_sink_address(self) -> Address:
        """Where local agents should send SNMP traps."""
        return Address(self.host, SnmpTrapEventDriver.port)

    def shutdown(self) -> None:
        """Orderly stop: cancel periodic work, drain pools, unbind ports.

        The gateway object stays queryable for post-mortem inspection
        (stats, history) but performs no further background activity and
        accepts no further native events.
        """
        if self._checkpoint_task is not None:
            self._checkpoint_task.cancel()
            self._checkpoint_task = None
        # Final checkpoint: seal the memtable so a successor recovers
        # from segments alone, with an empty WAL (no-op when not durable).
        self.history.checkpoint()
        for rule in [r.name for r in self.alerts.rules()]:
            self.alerts.remove_rule(rule)
        self.events.stop()
        if self.streams is not None:
            self.streams.close()
        self.connection_manager.close_all()
        self.cache.invalidate()

    def crash(self) -> None:
        """Abrupt process death — the crashtest harness's kill switch.

        Unlike :meth:`shutdown`, nothing is flushed: no WAL sync, no
        checkpoint.  Periodic work is cancelled and ports are unbound so
        a successor gateway can be built on the same host and disk; what
        that successor recovers is decided entirely by the disk's state
        (the harness crashes the :class:`SimDisk` itself, dropping
        un-fsynced writes).
        """
        if self._checkpoint_task is not None:
            self._checkpoint_task.cancel()
            self._checkpoint_task = None
        for rule in [r.name for r in self.alerts.rules()]:
            self.alerts.remove_rule(rule)
        self.events.stop()
        if self.streams is not None:
            self.streams.close()
        self.connection_manager.close_all()

    # ------------------------------------------------------------------
    # Static analysis of the live configuration
    # ------------------------------------------------------------------
    def analyze(self, *, principal: Principal = ANONYMOUS) -> AnalysisReport:
        """Conformance-check everything this gateway is configured with.

        Covers, with the shared :mod:`repro.analysis` finding model:

        * every registered driver, against the DDK contract
          (introspection + the AST rules over its defining module);
        * every persisted driver spec the start-up restore had to skip
          (GRM301 — the plug-in will silently be missing until fixed);
        * every installed alert rule's probe SQL, against the gateway's
          GLUE schema (the compile-time query validator);
        * any GRM55x lane races from an attached race detector (set by
          the chaos/racecheck harnesses when run with detection on).

        An admin-facing report, not a gate: registration stays permissive
        so operators can stage a driver and read its findings here.
        """
        self.cgsl.check(principal, "admin")
        report = AnalysisReport()
        for driver in self.registry.drivers():
            report.extend(check_driver(driver))
            report.files_scanned += 1
        for spec, error in self.restore_skipped:
            report.findings.append(_spec_finding(spec, error))
        for rule in self.alerts.rules():
            report.extend(
                validate_sql(
                    rule.sql,
                    self.schema_manager.schema,
                    path=f"<alert:{rule.name}>",
                )
            )
        if self.race_detector is not None:
            report.extend(self.race_detector.report())
        report.findings = report.sorted()
        return report

    def stats(self) -> dict[str, Any]:
        """One merged stats snapshot across all managers."""
        return {
            "requests": dict(self.request_manager.stats),
            "connections": dict(self.connection_manager.stats),
            "drivers": dict(self.driver_manager.stats),
            "events": dict(self.events.stats),
            "cache": {
                "hits": self.cache.hits,
                "misses": self.cache.misses,
                "entries": len(self.cache),
                "evictions": self.cache.evictions,
                "max_entries": self.cache.max_entries,
            },
            "dispatch": self.dispatcher.stats.as_dict(),
            "overload": self.overload.snapshot(),
            "streams": (
                self.streams.snapshot()
                if self.streams is not None
                else {"enabled": False}
            ),
            "health": {
                **self.health.summary(),
                "scoreboard": self.health.scoreboard(),
            },
            "history_rows": self.history.row_count(),
            "durability": (
                self.history_engine.stats()
                if self.history_engine is not None
                else {"enabled": False}
            ),
            "metrics": {
                "instruments": len(self.metrics),
                "traces": len(self.tracer.traces()),
            },
        }
