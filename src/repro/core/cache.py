"""CacheController (paper Figure 2 and §4).

The gateway-level query cache: results of recent queries are kept for a
policy TTL and served to clients who accept cached data — "a heavily used
GridRM Gateway can return a view of the recent status of a site while
limiting resource intrusion", and the same mechanism "is used between
gateways to increase scalability by reducing unnecessary requests".

Keys are (source url, normalised SQL); values carry the result rows plus
the sample time so the console can display staleness.

The cache is bounded: ``GatewayPolicy.query_cache_max_entries`` sets an
LRU capacity (0 = unbounded).  Lookups refresh recency; inserting past
capacity evicts the least recently used entry and counts it in
``evictions``, so a long-running gateway's memory footprint stays flat.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Any, Optional

from repro.analysis import races
from repro.obs.metrics import MetricsRegistry
from repro.simnet.clock import VirtualClock


@dataclass
class CachedResult:
    """One cached query result."""

    columns: list[str]
    rows: list[list[Any]]
    cached_at: float
    source_url: str
    sql: str

    def age(self, now: float) -> float:
        return now - self.cached_at


def normalise_sql(sql: str) -> str:
    """Collapse whitespace and case-fold keywords/identifiers for cache keying.

    Deliberately cheap: semantically equal but textually different
    queries may miss, which only costs a refetch.  Quoted string
    literals are preserved **verbatim** (case and internal whitespace):
    ``WHERE Name = 'A'`` and ``WHERE Name = 'a'`` select different rows,
    so they must not collide on one cache/single-flight key.  Doubled
    quotes inside a literal (``'it''s'``) stay inside it; an
    unterminated literal is kept verbatim to the end of the string.
    """
    out: list[str] = []
    i, n = 0, len(sql)
    while i < n:
        quote = sql[i]
        if quote in ("'", '"'):
            # Quoted literal: copy through the closing quote unchanged.
            j = i + 1
            while j < n:
                if sql[j] == quote:
                    if j + 1 < n and sql[j + 1] == quote:
                        j += 2  # escaped quote, still inside the literal
                        continue
                    j += 1
                    break
                j += 1
            out.append(sql[i:j])
            i = j
            continue
        j = i
        while j < n and sql[j] not in ("'", '"'):
            j += 1
        segment = sql[i:j]
        collapsed = " ".join(segment.split()).lower()
        if collapsed:
            # Keep a single space where the raw text separated this
            # segment from an adjacent literal.
            if segment[0].isspace() and out:
                collapsed = " " + collapsed
            if segment[-1].isspace() and j < n:
                collapsed = collapsed + " "
        elif out and j < n:
            # Whitespace-only gap between two literals.
            collapsed = " "
        out.append(collapsed)
        i = j
    text = "".join(out)
    # Strip any run of trailing semicolons/whitespace (idempotently).
    while text and text[-1] in "; \t":
        text = text[:-1]
    return text


class CacheController:
    """TTL + LRU cache of query results over the virtual clock.

    ``_entries`` relies on dict insertion order as the recency order:
    oldest first.  Hits and stores move the key to the end; eviction
    pops from the front.
    """

    def __init__(
        self,
        clock: VirtualClock,
        *,
        ttl: float = 30.0,
        max_entries: int = 0,
        registry: "MetricsRegistry | None" = None,
    ) -> None:
        if ttl < 0:
            raise ValueError(f"negative ttl: {ttl!r}")
        if max_entries < 0:
            raise ValueError(f"negative max_entries: {max_entries!r}")
        self.clock = clock
        self.ttl = ttl
        self.max_entries = max_entries
        self._entries: dict[tuple[str, str], CachedResult] = {}
        # Counters live in the shared registry (prefix ``cache.``) so the
        # self-monitoring driver sees them; the ``hits``/``misses``/
        # ``evictions`` attribute reads below stay source-compatible.
        reg = registry if registry is not None else MetricsRegistry()
        self._hits = reg.counter("cache.hits")
        self._misses = reg.counter("cache.misses")
        self._evictions = reg.counter("cache.evictions")

    @property
    def hits(self) -> int:
        return self._hits.value

    @hits.setter
    def hits(self, value: int) -> None:
        self._hits.add(value - self._hits.value)

    @property
    def misses(self) -> int:
        return self._misses.value

    @misses.setter
    def misses(self, value: int) -> None:
        self._misses.add(value - self._misses.value)

    @property
    def evictions(self) -> int:
        return self._evictions.value

    @evictions.setter
    def evictions(self, value: int) -> None:
        self._evictions.add(value - self._evictions.value)

    def key(self, source_url: str, sql: str) -> tuple[str, str]:
        return (source_url, normalise_sql(sql))

    def lookup(
        self, source_url: str, sql: str, *, max_age: float | None = None
    ) -> Optional[CachedResult]:
        """A live cached result, or None.  ``max_age`` tightens the TTL
        per-request (a client may insist on fresher data)."""
        key = self.key(source_url, sql)
        if races.ACTIVE is not None:
            races.ACTIVE.note(
                "cache", f"{key[0]}|{key[1]}", "r", site="CacheController.lookup"
            )
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        now = self.clock.now()
        if entry.cached_at > now:
            # Stored by a concurrent sibling branch whose private timeline
            # ran ahead of ours: from this branch's point of view that
            # result does not exist yet.  Treat as a miss so the caller
            # takes the single-flight path (and pays its wait cost)
            # instead of time-travelling.
            self.misses += 1
            return None
        limit = self.ttl if max_age is None else min(self.ttl, max_age)
        if entry.age(now) > limit:
            self.misses += 1
            return None
        self.hits += 1
        # Refresh recency: move to the back of the eviction queue.
        self._entries.pop(key)
        self._entries[key] = entry
        return entry

    def lookup_stale(self, source_url: str, sql: str) -> Optional[CachedResult]:
        """The last result for this query regardless of age.

        Graceful-degradation path: when a source's circuit breaker is
        OPEN the gateway would rather answer with whatever it last saw
        (flagged degraded) than with an error.  Does not count as a hit
        or a miss — it is outside the freshness contract.  Entries only
        vanish via :meth:`invalidate`/:meth:`sweep`, so keep the periodic
        sweep off sources you want stale answers for.
        """
        return self._entries.get(self.key(source_url, sql))

    def store(
        self, source_url: str, sql: str, columns: list[str], rows: list[list[Any]]
    ) -> CachedResult:
        entry = CachedResult(
            columns=list(columns),
            rows=[list(r) for r in rows],
            cached_at=self.clock.now(),
            source_url=source_url,
            sql=sql,
        )
        key = self.key(source_url, sql)
        if races.ACTIVE is not None:
            digest = hashlib.sha256(
                repr((entry.columns, entry.rows)).encode()
            ).hexdigest()[:16]
            races.ACTIVE.note(
                "cache",
                f"{key[0]}|{key[1]}",
                "w",
                digest=digest,
                site="CacheController.store",
            )
        self._entries.pop(key, None)
        self._entries[key] = entry
        if self.max_entries:
            while len(self._entries) > self.max_entries:
                oldest = next(iter(self._entries))
                del self._entries[oldest]
                self.evictions += 1
        return entry

    def invalidate(self, source_url: str | None = None) -> int:
        """Drop entries (all, or those of one source); returns the count."""
        if source_url is None:
            n = len(self._entries)
            self._entries.clear()
            return n
        doomed = [k for k in self._entries if k[0] == source_url]
        for k in doomed:
            del self._entries[k]
        return len(doomed)

    def entries_for(self, source_url: str) -> list[CachedResult]:
        """All live entries of one source (the tree view reads these)."""
        now = self.clock.now()
        return [
            e
            for (url, _), e in self._entries.items()
            if url == source_url and e.age(now) <= self.ttl
        ]

    def sweep(self) -> int:
        """Evict expired entries; returns how many were dropped."""
        now = self.clock.now()
        doomed = [k for k, e in self._entries.items() if e.age(now) > self.ttl]
        for k in doomed:
            del self._entries[k]
        return len(doomed)

    @property
    def hit_ratio(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def __len__(self) -> int:
        return len(self._entries)
