"""Concurrent fan-out query scheduler.

The paper promises that one gateway gives "a view of the recent status of
a site while limiting resource intrusion" (§4); the serial reproduction
made a query over N sources cost the *sum* of N round-trips in virtual
time.  :class:`FanoutDispatcher` is the gateway's dispatch layer over
:meth:`VirtualClock.concurrent`: it fans branches of work out so total
elapsed time is the *max* of branch delays, and adds two controls on top:

* **single-flight coalescing** — identical in-flight ``(source url,
  normalised SQL)`` requests (e.g. the join path fetching ``SELECT *
  FROM Processor`` while a tree-view poll asks the same source the same
  question) share one agent round-trip.  Joiners wait until the shared
  flight completes, then reuse its rows (or its failure) without any
  agent traffic of their own.
* **per-source concurrency caps** — at most
  ``GatewayPolicy.max_concurrent_per_source`` requests may be in flight
  to one data source (or remote gateway) at once; excess branches queue
  in virtual time, so a gateway fan-out cannot stampede an agent.
* **hedged requests** ("The Tail at Scale") — when a source's answer has
  not arrived within a high percentile of its recently observed
  latencies, a second identical request is fired at the same source and
  whichever response lands first wins; the loser is abandoned and
  counted.  Because tail slowness is usually transient (a latency spike,
  a queue blip), the hedge re-draws and converts a p99 straggler into a
  near-median response at the cost of a few percent extra load.

One dispatcher is shared per gateway (RequestManager fan-out, multi-group
join decomposition, Global-layer scatter-gather and client batches all go
through it), which is what makes flights visible across concurrent
clients of the same gateway.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Sequence

from repro.core.admission import GradientLimiter
from repro.core.cache import normalise_sql
from repro.core.deadline import Deadline
from repro.core.errors import GridRmError
from repro.core.policy import GatewayPolicy
from repro.dbapi.exceptions import SQLException
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import NO_TRACER, Tracer
from repro.simnet.clock import VirtualClock
from repro.simnet.errors import NetworkError
from repro.sql.errors import SqlError

#: Soft bound on remembered flights; completed entries past it are swept.
_FLIGHT_SWEEP_THRESHOLD = 512

#: Sliding window of observed per-source latencies feeding the hedge
#: timer (successful attempts only; failures would inflate the
#: percentile toward the timeout and disarm hedging when it matters).
_LATENCY_WINDOW = 64

#: Failures a branch may legitimately end in; captured per-branch so one
#: failing branch cannot abort its siblings mid-flight.  Programming
#: errors (TypeError, KeyError, ...) propagate immediately instead.
BRANCH_ERRORS = (GridRmError, SQLException, SqlError, NetworkError)


def percentile(values: "Sequence[float] | deque[float]", q: float) -> float:
    """The ``q``-th percentile of ``values`` (linear interpolation).

    Used for the hedge timer and latency reporting; ``values`` need not
    be sorted.  Raises on an empty sequence.
    """
    ordered = sorted(values)
    if not ordered:
        raise ValueError("percentile of empty sequence")
    if len(ordered) == 1:
        return ordered[0]
    rank = (len(ordered) - 1) * (q / 100.0)
    lo = math.floor(rank)
    hi = math.ceil(rank)
    if lo == hi:
        return ordered[lo]
    return ordered[lo] + (ordered[hi] - ordered[lo]) * (rank - lo)


@dataclass
class BranchOutcome:
    """Result of one concurrently dispatched branch."""

    value: Any = None
    error: Exception | None = None
    elapsed: float = 0.0

    @property
    def ok(self) -> bool:
        return self.error is None


@dataclass
class Flight:
    """One in-flight (or just-completed) coalescable request."""

    key: tuple[str, str]
    value: Any = None
    error: Exception | None = None
    started_at: float = 0.0
    completed_at: float = 0.0


class DispatchStats:
    """Counters surfaced via ``Gateway.stats()`` and the console.

    Attribute-shaped compatibility view over ``dispatch.*`` registry
    counters: ``stats.fanouts += 1`` and :meth:`as_dict` behave exactly
    as the plain dataclass this replaces, while the same numbers surface
    through ``SELECT * FROM GatewayMetrics``.
    """

    FIELDS = (
        "fanouts",
        "branches",
        "serial_runs",
        "singleflight_joins",
        "cap_waits",
        "cap_wait_time",
        "flights",
        "hedges_fired",
        "hedges_won",
        "hedges_cancelled",
        "hedge_time_saved",
    )

    def __init__(self, registry: MetricsRegistry | None = None) -> None:
        object.__setattr__(
            self, "_registry", registry if registry is not None else MetricsRegistry()
        )
        for name in self.FIELDS:
            self._registry.counter(f"dispatch.{name}")

    def __getattr__(self, name: str) -> Any:
        if name in self.FIELDS:
            return self._registry.counter(f"dispatch.{name}").value
        raise AttributeError(name)

    def __setattr__(self, name: str, value: Any) -> None:
        if name not in self.FIELDS:
            object.__setattr__(self, name, value)
            return
        counter = self._registry.counter(f"dispatch.{name}")
        counter.add(value - counter.value)

    def as_dict(self) -> dict[str, Any]:
        return {name: getattr(self, name) for name in self.FIELDS}

    def __eq__(self, other: object) -> bool:
        if isinstance(other, DispatchStats):
            return self.as_dict() == other.as_dict()
        return NotImplemented

    def __repr__(self) -> str:
        return f"DispatchStats({self.as_dict()!r})"


class FanoutDispatcher:
    """Concurrent dispatch + single-flight + per-source caps for one
    gateway."""

    def __init__(
        self,
        clock: VirtualClock,
        policy: GatewayPolicy,
        *,
        registry: MetricsRegistry | None = None,
        tracer: Tracer | None = None,
    ) -> None:
        self.clock = clock
        self.policy = policy
        self.registry = registry if registry is not None else MetricsRegistry()
        self.tracer = tracer if tracer is not None else NO_TRACER
        self._flights: dict[tuple[str, str], Flight] = {}
        #: Completion times of requests dispatched to each source; an
        #: entry with ``end > now`` is still in flight at ``now``.
        self._inflight_ends: dict[str, list[float]] = {}
        #: Recent successful-attempt latencies per source (hedge timer).
        self._latencies: dict[str, deque[float]] = {}
        #: Per-source AIMD limiters (``policy.adaptive_concurrency``);
        #: they replace the static cap as the ``_await_slot`` bound.
        self._limiters: dict[str, GradientLimiter] = {}
        self.stats = DispatchStats(self.registry)

    # ------------------------------------------------------------------
    # Fan-out
    # ------------------------------------------------------------------
    def run(
        self,
        thunks: Sequence[Callable[[], Any]],
        *,
        deadline: Deadline | None = None,
    ) -> list[BranchOutcome]:
        """Run branches concurrently in virtual time; outcomes in order.

        Branch exceptions are captured per-branch (one failing branch
        must not abort its siblings mid-flight); callers decide whether
        to re-raise.  Outcome order always matches ``thunks`` order, so
        consolidation is deterministic regardless of which branch's
        virtual round-trip completes first.  With ``fanout_enabled``
        off — or a single branch — execution is plain serial.

        With a ``deadline``, every branch re-checks it at launch: a
        request whose budget ran out while it sat behind earlier work is
        failed as ``DeadlineExceededError`` (naming ``queue_wait`` as
        the spending step) instead of being dispatched anyway.
        """
        thunks = list(thunks)
        if not thunks:
            return []
        if deadline is not None:
            thunks = [self._launch_guard(thunk, deadline) for thunk in thunks]
        if not self.policy.fanout_enabled or len(thunks) == 1:
            self.stats.serial_runs += 1
            return [self._run_one(thunk) for thunk in thunks]
        self.stats.fanouts += 1
        self.stats.branches += len(thunks)
        outcomes: list[BranchOutcome] = []
        with self.tracer.span("fanout", branches=len(thunks)):
            with self.clock.concurrent() as scope:
                for thunk in thunks:
                    with scope.branch():
                        outcomes.append(self._run_one(thunk))
        return outcomes

    def _launch_guard(
        self, thunk: Callable[[], Any], deadline: Deadline
    ) -> Callable[[], Any]:
        """Wrap a branch so its deadline is re-checked at launch time."""

        def run() -> Any:
            deadline.check("queue_wait (branch launch)")
            return thunk()

        return run

    def _run_one(self, thunk: Callable[[], Any]) -> BranchOutcome:
        start = self.clock.now()
        try:
            value = thunk()
        except BRANCH_ERRORS as exc:
            return BranchOutcome(error=exc, elapsed=self.clock.now() - start)
        return BranchOutcome(value=value, elapsed=self.clock.now() - start)

    # ------------------------------------------------------------------
    # Single-flight coalescing
    # ------------------------------------------------------------------
    def flight_key(self, source_key: str, sql: str) -> tuple[str, str]:
        return (source_key, normalise_sql(sql))

    def join_flight(self, source_key: str, sql: str) -> Flight | None:
        """Join an identical in-flight request, or None to fetch for real.

        A flight is joinable while its completion still lies in the
        caller's future — i.e. the shared round-trip is genuinely in the
        air right now.  Joining waits (advances this branch's timeline)
        until the flight completes, then shares its outcome; the caller
        performs no agent traffic.
        """
        if not (self.policy.singleflight_enabled and self.policy.fanout_enabled):
            return None
        key = self.flight_key(source_key, sql)
        flight = self._flights.get(key)
        if flight is None:
            return None
        now = self.clock.now()
        if flight.completed_at <= now:
            # Landed in the past: no longer coalescable (the query cache
            # owns reuse from here on).
            del self._flights[key]
            return None
        self.stats.singleflight_joins += 1
        self.clock.advance_to(flight.completed_at)
        return flight

    def run_flight(
        self,
        source_key: str,
        sql: str,
        fetch: Callable[[], Any],
        *,
        hedge: bool = True,
        deadline: Deadline | None = None,
    ) -> Any:
        """Run the real fetch, registered as the coalescing target.

        Applies the per-source concurrency cap first (queueing in virtual
        time when the source is saturated), then records the flight —
        value or failure — so concurrent identical requests can join it.
        Exceptions propagate to the caller unchanged.

        With hedging armed (policy enabled, enough latency history, and
        ``hedge`` true — callers pass false for non-idempotent drivers),
        the fetch runs on the hedged path: if it has not answered within
        the source's ``hedge_percentile`` latency, a second fetch fires
        and the first usable response wins.
        """
        self._await_slot(source_key, deadline=deadline)
        started = self.clock.now()
        delay = self._hedge_delay(source_key) if hedge else None
        if delay is None:
            try:
                value = fetch()
            except BRANCH_ERRORS as exc:
                self._note_congestion(source_key, self.clock.now() - started)
                self._finish_flight(source_key, sql, started, error=exc)
                raise
            self._note_latency(source_key, self.clock.now() - started)
            self._finish_flight(source_key, sql, started, value=value)
            return value
        outcome = self._run_hedged(source_key, fetch, delay)
        if outcome.error is not None:
            self._note_congestion(source_key, self.clock.now() - started)
            self._finish_flight(source_key, sql, started, error=outcome.error)
            raise outcome.error
        self._finish_flight(source_key, sql, started, value=outcome.value)
        return outcome.value

    def _run_hedged(
        self, source_key: str, fetch: Callable[[], Any], delay: float
    ) -> BranchOutcome:
        """Primary fetch, hedged by an identical fetch after ``delay``.

        Both attempts run as concurrent-scope branches (each measured on
        a private timeline from the same start instant); the clock then
        advances by the *winner's* completion offset.  The loser is
        abandoned: its virtual traffic happened, but nobody waits for it.
        When both fail, the caller learns at the later failure — a
        hedged client keeps waiting for the surviving sibling.
        """
        scope = self.clock.concurrent()
        with scope.branch():
            with self.tracer.span("hedge", index=0) as primary_span:
                primary = self._run_one(fetch)
                if primary.error is not None:
                    primary_span.fail(primary.error)
        if primary.ok:
            self._note_latency(source_key, primary.elapsed)
        if primary.elapsed <= delay:
            # Answered before the hedge timer armed: no hedge traffic —
            # so no race happened, and a span named "hedge" would lie.
            # Rename it to the plain fetch it was.  (A disabled tracer
            # hands out NULL_SPAN, whose name is "null", so the guard
            # also skips the rename when tracing is off.)
            if primary_span.name == "hedge":
                primary_span.name = "fetch"
                primary_span.attrs.pop("index", None)
            self.clock.advance(primary.elapsed)
            return primary
        self.stats.hedges_fired += 1
        with scope.branch():
            self.clock.advance(delay)
            with self.tracer.span("hedge", index=1, delay=delay) as hedge_span:
                hedge = self._run_one(fetch)
                if hedge.error is not None:
                    hedge_span.fail(hedge.error)
        hedge_end = delay + hedge.elapsed
        if hedge.ok:
            self._note_latency(source_key, hedge.elapsed)
        if primary.ok and hedge.ok:
            winner, end = (
                (hedge, hedge_end) if hedge_end < primary.elapsed
                else (primary, primary.elapsed)
            )
        elif primary.ok:
            winner, end = primary, primary.elapsed
        elif hedge.ok:
            winner, end = hedge, hedge_end
        else:
            winner, end = primary, max(primary.elapsed, hedge_end)
        if winner is hedge and winner.ok:
            self.stats.hedges_won += 1
            self.stats.hedge_time_saved += max(0.0, primary.elapsed - end)
        self.stats.hedges_cancelled += 1  # exactly one loser per fired hedge
        # The abandoned attempt's span may outlive its parent — marking
        # it cancelled is what exempts it from the containment invariant.
        (hedge_span if winner is primary else primary_span).cancel()
        self.clock.advance(end)
        return winner

    # ------------------------------------------------------------------
    # Hedge timer (per-source latency percentile)
    # ------------------------------------------------------------------
    def _note_latency(self, source_key: str, elapsed: float) -> None:
        window = self._latencies.get(source_key)
        if window is None:
            window = self._latencies[source_key] = deque(maxlen=_LATENCY_WINDOW)
        window.append(elapsed)
        self.registry.histogram("dispatch.attempt_latency").record(elapsed)
        if self.policy.adaptive_concurrency:
            self._source_limiter(source_key).observe(elapsed)

    def _note_congestion(self, source_key: str, elapsed: float) -> None:
        """A failed attempt is a congestion signal to the source limiter
        (it never feeds the hedge timer — that window stays
        success-only so failures cannot disarm hedging)."""
        if self.policy.adaptive_concurrency:
            self._source_limiter(source_key).observe(elapsed, congested=True)

    def _hedge_delay(self, source_key: str) -> float | None:
        """Arm the hedge timer, or None when hedging must not fire."""
        if not (self.policy.hedge_enabled and self.policy.fanout_enabled):
            return None
        window = self._latencies.get(source_key)
        if window is None or len(window) < self.policy.hedge_min_samples:
            return None
        delay = percentile(window, self.policy.hedge_percentile)
        return max(delay, self.policy.hedge_min_delay)

    def hedge_delay(self, source_key: str) -> float | None:
        """The currently armed hedge timer for a source (console view)."""
        return self._hedge_delay(source_key)

    def _finish_flight(
        self,
        source_key: str,
        sql: str,
        started: float,
        *,
        value: Any = None,
        error: Exception | None = None,
    ) -> None:
        end = self.clock.now()
        key = self.flight_key(source_key, sql)
        self._flights[key] = Flight(
            key=key, value=value, error=error, started_at=started, completed_at=end
        )
        self._inflight_ends.setdefault(source_key, []).append(end)
        self.stats.flights += 1
        if len(self._flights) > _FLIGHT_SWEEP_THRESHOLD:
            self._sweep_flights(end)

    def _sweep_flights(self, now: float) -> None:
        done = [k for k, f in self._flights.items() if f.completed_at <= now]
        for k in done:
            del self._flights[k]

    # ------------------------------------------------------------------
    # Per-source concurrency cap (static, or adaptive AIMD limiter)
    # ------------------------------------------------------------------
    def _source_limiter(self, source_key: str) -> GradientLimiter:
        """The per-source AIMD limiter (lazily created).

        Seeded from the static cap so turning ``adaptive_concurrency``
        on starts from the same limit the static policy enforced.
        """
        limiter = self._limiters.get(source_key)
        if limiter is None:
            initial = (
                self.policy.max_concurrent_per_source
                or self.policy.admission_initial_limit
            )
            limiter = self._limiters[source_key] = GradientLimiter(
                self.clock,
                initial=initial,
                floor=self.policy.limiter_floor,
                ceiling=self.policy.limiter_ceiling,
                tolerance=self.policy.limiter_tolerance,
                backoff=self.policy.limiter_backoff,
                window=self.policy.limiter_window,
                registry=self.registry,
                key=source_key,
            )
        return limiter

    def _await_slot(
        self, source_key: str, *, deadline: Deadline | None = None
    ) -> None:
        """Wait (in virtual time) for a dispatch slot to this source.

        The in-flight bookkeeping is launch-order-coupled by design
        (branch k of a fan-out observes branches 0..k-1's completion
        instants) and deterministic under replay, so — like the flight
        table — it is intentionally not race-instrumented.
        """
        ends = self._inflight_ends.get(source_key)
        if not ends:
            return
        now = self.clock.now()
        live = [e for e in ends if e > now]
        if self.policy.adaptive_concurrency:
            cap = self._source_limiter(source_key).limit
        else:
            cap = self.policy.max_concurrent_per_source
        if cap > 0 and len(live) >= cap:
            waited_from = now
            with self.tracer.span("cap_wait", source=source_key) as wspan:
                while len(live) >= cap:
                    self.clock.advance_to(min(live))
                    now = self.clock.now()
                    live = [e for e in live if e > now]
                wspan["waited"] = now - waited_from
            self.stats.cap_waits += 1
            self.stats.cap_wait_time += now - waited_from
            if deadline is not None:
                # The wait spent real budget: fail now rather than
                # dispatch work whose answer nobody is waiting for.
                deadline.check(f"queue_wait for {source_key}")
        self._inflight_ends[source_key] = live

    def limiter_snapshot(self) -> dict[str, dict]:
        """Current adaptive per-source limits (console / stats view)."""
        return {key: lim.snapshot() for key, lim in sorted(self._limiters.items())}

    def inflight(self, source_key: str) -> int:
        """How many requests to ``source_key`` are in flight right now."""
        now = self.clock.now()
        return sum(1 for e in self._inflight_ends.get(source_key, ()) if e > now)
