"""Per-query retry budgets with jittered exponential backoff.

The driver manager's :class:`~repro.core.policy.FailureAction` machinery
retries *within* one connection attempt (paper §4); this module adds a
second, query-scoped layer above it: after a source's whole fetch fails
transiently (connect error, timeout), the request manager may re-run it —
but only while the query's shared :class:`RetryBudget` has tokens left.

The budget is the "retry amplification" guard from the Tail-at-Scale
literature: without it, a query fanned out over N failing sources retries
N times *each*, multiplying load on an already-struggling site.  With it,
all sources of one query draw from one small pool, so a systemic outage
degrades to fast failures instead of a retry storm.

Backoff between attempts reuses the health layer's jittered-exponential
helper (:func:`repro.core.health.jittered_backoff`) so breaker re-probes
and query retries desynchronise identically.  Retries are only attempted
for *transient* failures against *idempotent* drivers (see
``GridRmDriver.idempotent``), and never when the remaining end-to-end
deadline could not absorb the backoff plus another attempt.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.core.health import jittered_backoff


@dataclass(frozen=True)
class RetryPolicy:
    """Query-level retry tunables (derived from ``GatewayPolicy``)."""

    #: Max attempts per source per query, including the first (1 = off).
    attempts: int = 1
    #: Tokens shared by all sources of one query (caps amplification).
    budget: int = 3
    base_backoff: float = 0.05
    max_backoff: float = 2.0

    @classmethod
    def from_gateway_policy(cls, policy) -> "RetryPolicy":
        return cls(
            attempts=policy.retry_attempts,
            budget=policy.retry_budget,
            base_backoff=policy.retry_base_backoff,
            max_backoff=policy.retry_max_backoff,
        )

    def backoff(self, attempt: int, rng: random.Random) -> float:
        """Jittered wait before retry number ``attempt`` (1-based)."""
        raw = min(self.max_backoff, self.base_backoff * (2 ** (attempt - 1)))
        return jittered_backoff(raw, self.max_backoff, rng)


class RetryBudget:
    """Tokens one query's sources share; ``take()`` before each retry."""

    __slots__ = ("tokens", "spent", "denied")

    def __init__(self, tokens: int) -> None:
        self.tokens = max(0, tokens)
        self.spent = 0
        self.denied = 0

    def take(self) -> bool:
        """Spend one token; False (and counted) when the pool is dry."""
        if self.spent >= self.tokens:
            self.denied += 1
            return False
        self.spent += 1
        return True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RetryBudget(spent={self.spent}/{self.tokens}, denied={self.denied})"
