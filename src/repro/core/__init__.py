"""GridRM Local layer — the gateway core (paper §2-§4).

Composition, top to bottom, mirroring paper Figure 2/3:

* :mod:`repro.core.acil` — Abstract Client Interface Layer.
* :mod:`repro.core.security` — Coarse and Fine Grained Security Layers.
* :mod:`repro.core.sessions` — session management.
* :mod:`repro.core.request_manager` — RequestManager: real-time vs
  historical queries, multi-source coordination, result consolidation.
* :mod:`repro.core.connection_manager` — ConnectionManager + JDBC
  connection pool.
* :mod:`repro.core.driver_manager` — GridRMDriverManager: registration,
  static/dynamic driver-to-resource allocation, last-driver cache,
  failure policies.
* :mod:`repro.core.schema_manager` — SchemaManager serving GLUE mappings.
* :mod:`repro.core.events` — EventManager: native event ingestion (fast
  buffer), translation, fan-out, history recording, outbound transmit.
* :mod:`repro.core.history` — the gateway's internal historical database.
* :mod:`repro.core.cache` — CacheController backing the tree view and
  inter-gateway scalability.
* :mod:`repro.core.health` — per-source circuit breakers: exponential
  backoff, pool quarantine and stale-result graceful degradation.
* :mod:`repro.core.deadline` — end-to-end query deadlines carried
  Consumer → Gateway → RequestManager → driver → network.
* :mod:`repro.core.retry` — per-query retry budgets with jittered
  backoff (retry-amplification guard).
* :mod:`repro.core.gateway` — the Gateway that wires it all together.
"""

from repro.core.deadline import Deadline
from repro.core.errors import (
    GridRmError,
    SecurityError,
    SessionError,
    NoSuitableDriverError,
    DataSourceError,
    SourceQuarantinedError,
    DeadlineExceededError,
)
from repro.core.retry import RetryBudget, RetryPolicy
from repro.core.health import BreakerState, HealthTracker, SourceHealth
from repro.core.policy import GatewayPolicy, FailureAction
from repro.core.security import (
    Principal,
    AccessRule,
    CoarseGrainedSecurity,
    FineGrainedSecurity,
    ANONYMOUS,
)
from repro.core.sessions import Session, SessionManager
from repro.core.schema_manager import SchemaManager
from repro.core.cache import CacheController, CachedResult
from repro.core.history import HistoryStore
from repro.core.connection_manager import ConnectionManager, PooledConnection
from repro.core.driver_manager import (
    GridRmDriverManager,
    DriverPreference,
    RestoreReport,
)
from repro.core.events import Event, EventManager, SnmpTrapEventDriver
from repro.core.alerts import AlertMonitor, AlertRule
from repro.core.request_manager import RequestManager, QueryMode, QueryResult
from repro.core.gateway import Gateway

__all__ = [
    "GridRmError",
    "SecurityError",
    "SessionError",
    "NoSuitableDriverError",
    "DataSourceError",
    "SourceQuarantinedError",
    "Deadline",
    "DeadlineExceededError",
    "RetryBudget",
    "RetryPolicy",
    "BreakerState",
    "HealthTracker",
    "SourceHealth",
    "GatewayPolicy",
    "FailureAction",
    "Principal",
    "AccessRule",
    "CoarseGrainedSecurity",
    "FineGrainedSecurity",
    "ANONYMOUS",
    "Session",
    "SessionManager",
    "SchemaManager",
    "CacheController",
    "CachedResult",
    "HistoryStore",
    "ConnectionManager",
    "PooledConnection",
    "GridRmDriverManager",
    "DriverPreference",
    "RestoreReport",
    "Event",
    "EventManager",
    "SnmpTrapEventDriver",
    "AlertMonitor",
    "AlertRule",
    "RequestManager",
    "QueryMode",
    "QueryResult",
    "Gateway",
]
