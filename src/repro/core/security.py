"""Security layers.

The paper (§2) stacks two security layers inside each gateway:

* the **Coarse Grained Security Layer (CGSL)** sits behind the client
  interface and gates whole operations — may this principal query at all,
  may it administer drivers, may it reach the Global layer;
* the **Fine Grained Security Layer (FGSL)** sits in front of the
  Abstract Data Layer and gates individual resources — which hosts and
  which GLUE groups a principal may read ("multi-level and granularity of
  security for data access", §1.1).

Rules are first-match-wins over (principal-or-role, host pattern, group
pattern), with fnmatch-style wildcards, so "deny student * Job" plus
"allow * * *" express the usual shapes.  In a hierarchy of gateways
"security decisions can be deferred to the local Gateway responsible for
a given resource" — remote queries are re-checked by the owning gateway,
not by the forwarding one.
"""

from __future__ import annotations

import fnmatch
from dataclasses import dataclass
from typing import Iterable

from repro.core.errors import SecurityError


@dataclass(frozen=True)
class Principal:
    """An authenticated client identity with a set of roles."""

    name: str
    roles: frozenset[str] = frozenset()

    @classmethod
    def with_roles(cls, name: str, *roles: str) -> "Principal":
        return cls(name=name, roles=frozenset(roles))


#: The unauthenticated principal used when security is disabled.
ANONYMOUS = Principal(name="anonymous", roles=frozenset({"anonymous"}))

#: Operations the CGSL distinguishes.
OPERATIONS = ("query", "query_remote", "admin", "events", "history")


@dataclass(frozen=True)
class AccessRule:
    """One FGSL rule: allow/deny (who, host pattern, group pattern)."""

    allow: bool
    who: str  # principal name, "role:<role>", or "*"
    host_pattern: str = "*"
    group_pattern: str = "*"

    def matches(self, principal: Principal, host: str, group: str) -> bool:
        if self.who != "*":
            if self.who.startswith("role:"):
                if self.who[5:] not in principal.roles:
                    return False
            elif self.who != principal.name:
                return False
        return fnmatch.fnmatchcase(host, self.host_pattern) and fnmatch.fnmatchcase(
            group, self.group_pattern
        )


class CoarseGrainedSecurity:
    """Operation-level gate between the ACIL and the gateway internals."""

    def __init__(self, *, enabled: bool = True) -> None:
        self.enabled = enabled
        # operation -> set of principal names / "role:<r>" / "*" allowed.
        self._grants: dict[str, set[str]] = {op: {"*"} for op in OPERATIONS}
        # Admin defaults to operators only.
        self._grants["admin"] = {"role:admin"}

    def grant(self, operation: str, who: str) -> None:
        self._check_op(operation)
        self._grants[operation].add(who)

    def revoke(self, operation: str, who: str) -> None:
        self._check_op(operation)
        self._grants[operation].discard(who)

    def restrict(self, operation: str, *who: str) -> None:
        """Replace an operation's grant set entirely."""
        self._check_op(operation)
        self._grants[operation] = set(who)

    def permits(self, principal: Principal, operation: str) -> bool:
        self._check_op(operation)
        if not self.enabled:
            return True
        for entry in self._grants[operation]:
            if entry == "*":
                return True
            if entry.startswith("role:"):
                if entry[5:] in principal.roles:
                    return True
            elif entry == principal.name:
                return True
        return False

    def check(self, principal: Principal, operation: str) -> None:
        if not self.permits(principal, operation):
            raise SecurityError(
                f"{principal.name!r} may not perform {operation!r} on this gateway"
            )

    def _check_op(self, operation: str) -> None:
        if operation not in self._grants:
            raise SecurityError(f"unknown operation {operation!r}")


class FineGrainedSecurity:
    """Resource-level gate in front of the Abstract Data Layer.

    First matching rule wins; with no matching rule the default applies
    (allow by default, matching the open deployments of the era — flip
    ``default_allow`` for a locked-down site).
    """

    def __init__(self, *, enabled: bool = True, default_allow: bool = True) -> None:
        self.enabled = enabled
        self.default_allow = default_allow
        self._rules: list[AccessRule] = []

    def add_rule(self, rule: AccessRule) -> None:
        self._rules.append(rule)

    def add_rules(self, rules: Iterable[AccessRule]) -> None:
        for r in rules:
            self.add_rule(r)

    def rules(self) -> list[AccessRule]:
        return list(self._rules)

    def permits(self, principal: Principal, host: str, group: str) -> bool:
        if not self.enabled:
            return True
        for rule in self._rules:
            if rule.matches(principal, host, group):
                return rule.allow
        return self.default_allow

    def check(self, principal: Principal, host: str, group: str) -> None:
        if not self.permits(principal, host, group):
            raise SecurityError(
                f"{principal.name!r} may not read group {group!r} on host {host!r}"
            )
