"""Abstract Client Interface Layer (paper §2).

"The Abstract Client Interface Layer (ACIL) provides a clear separation
between client specific APIs and the data model used within GridRM."
Concrete client channels — the Java applet, JSP pages, web/Grid services
and the GMA producer of Figure 2 — all funnel through this layer, which
owns session validation and the Coarse Grained Security checks, then
hands plain (urls, sql, mode) triples to the gateway internals and plain
dict rows back.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Sequence, TYPE_CHECKING

from repro.core.errors import SecurityError, SessionError
from repro.core.request_manager import QueryMode, QueryResult
from repro.core.security import ANONYMOUS, Principal

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.gateway import Gateway


@dataclass
class ClientRequest:
    """A channel-neutral client query."""

    urls: Sequence[str]
    sql: str
    mode: str = "realtime"
    session_token: str | None = None
    max_age: float | None = None
    #: Admission priority ("critical" | "interactive" | "batch"); empty
    #: means the gateway policy's default class.  Under overload, BATCH
    #: sheds first and CRITICAL is never shed.
    query_class: str = ""


@dataclass
class ClientResponse:
    """A channel-neutral reply: dict rows plus per-source status."""

    columns: list[str]
    rows: list[dict[str, Any]]
    statuses: list[dict[str, Any]] = field(default_factory=list)
    elapsed: float = 0.0
    mode: str = "realtime"
    #: False when the request as a whole failed (``error`` says why) —
    #: used by batch replies, where one member's failure must not abort
    #: its siblings.
    ok: bool = True
    error: str = ""

    @classmethod
    def from_result(cls, result: QueryResult) -> "ClientResponse":
        return cls(
            columns=list(result.columns),
            rows=result.dicts(),
            statuses=[
                {
                    "url": s.url,
                    "ok": s.ok,
                    "rows": s.rows,
                    "from_cache": s.from_cache,
                    "degraded": s.degraded,
                    "coalesced": s.coalesced,
                    "shed": s.shed,
                    "error": s.error,
                }
                for s in result.statuses
            ],
            elapsed=result.elapsed,
            mode=result.mode.value,
        )


class AbstractClientInterface:
    """The ACIL facade every client channel adapts to."""

    def __init__(self, gateway: "Gateway") -> None:
        self.gateway = gateway

    # ------------------------------------------------------------------
    def resolve_principal(self, session_token: str | None) -> Principal:
        """Map a session token to its principal (ANONYMOUS when security
        is off and no token given)."""
        gw = self.gateway
        if session_token is not None:
            return gw.sessions.validate(session_token).principal
        if gw.policy.security_enabled:
            raise SessionError("this gateway requires a session token")
        return ANONYMOUS

    def query(self, request: ClientRequest) -> ClientResponse:
        """Validate, authorise and execute a client query."""
        principal = self.resolve_principal(request.session_token)
        try:
            mode = QueryMode(request.mode)
        except ValueError:
            raise SecurityError(f"unknown query mode {request.mode!r}") from None
        result = self.gateway.query(
            list(request.urls),
            request.sql,
            mode=mode,
            principal=principal,
            max_age=request.max_age,
            query_class=request.query_class or None,
        )
        return ClientResponse.from_result(result)

    def query_many(self, requests: Sequence[ClientRequest]) -> list[ClientResponse]:
        """Execute a batch of client queries concurrently.

        The batch costs the slowest member's virtual elapsed time.
        Replies come back in request order; a member that fails (bad
        session, security rejection, invalid SQL) yields a reply with
        ``ok=False`` and the error text, without aborting its siblings.
        """

        def member(request: ClientRequest):
            return lambda: self.query(request)

        outcomes = self.gateway.dispatcher.run([member(r) for r in requests])
        replies: list[ClientResponse] = []
        for request, outcome in zip(requests, outcomes):
            if outcome.error is not None:
                replies.append(
                    ClientResponse(
                        columns=[],
                        rows=[],
                        mode=request.mode,
                        ok=False,
                        error=str(outcome.error),
                    )
                )
            else:
                replies.append(outcome.value)
        return replies
