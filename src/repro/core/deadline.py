"""End-to-end query deadlines (deadline propagation à la Dapper/gRPC).

A :class:`Deadline` is an *absolute* instant on the virtual clock, fixed
once where the query enters the system (consumer or gateway API).  Every
hop downstream — gateway dispatch, Global-layer remote payloads, driver
selection, connection acquisition, native agent requests — receives the
same object, asks :meth:`remaining` for its budget, and fails fast with
:class:`~repro.core.errors.DeadlineExceededError` once it hits zero.

Propagating the *remaining budget* (rather than stacking independent
per-hop timeouts) is what keeps tail latency bounded: a slow first hop
eats into the budget of everything after it, and work whose answer can no
longer arrive in time is never started.  Across process boundaries (the
GMA wire protocol) the remaining budget travels as a float in the
payload and is re-anchored on the receiver's clock.
"""

from __future__ import annotations

from repro.core.errors import DeadlineExceededError
from repro.simnet.clock import VirtualClock


class Deadline:
    """An absolute give-up instant shared by every hop of one query."""

    __slots__ = ("clock", "at")

    def __init__(self, clock: VirtualClock, at: float) -> None:
        self.clock = clock
        self.at = at

    @classmethod
    def after(cls, clock: VirtualClock, budget: float) -> "Deadline":
        """A deadline ``budget`` seconds from now."""
        if budget <= 0:
            raise ValueError(f"deadline budget must be > 0: {budget!r}")
        return cls(clock, clock.now() + budget)

    def remaining(self) -> float:
        """Seconds of budget left (never negative)."""
        return max(0.0, self.at - self.clock.now())

    def expired(self) -> bool:
        return self.clock.now() >= self.at

    def check(self, where: str = "") -> None:
        """Raise :class:`DeadlineExceededError` if the budget is gone."""
        if self.expired():
            suffix = f" during {where}" if where else ""
            raise DeadlineExceededError(
                f"deadline exceeded{suffix} "
                f"(deadline t={self.at:.3f}s, now t={self.clock.now():.3f}s)"
            )

    def clamp(self, timeout: float, where: str = "") -> float:
        """``timeout`` bounded by the remaining budget; raises at zero.

        Use at every hop that issues a native request: the hop's own
        timeout still applies, but never extends past the end-to-end
        deadline.
        """
        self.check(where)
        return min(timeout, self.at - self.clock.now())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Deadline(at={self.at:.3f}, remaining={self.remaining():.3f})"
