"""Historical data store (paper §3.1.1-§3.1.2).

"Historical data is retrieved from the Gateway's internal database": this
module is that database, built on the :mod:`repro.sql` engine.  Every
real-time result the RequestManager produces is recorded into a per-GLUE-
group table (the group's fields plus ``SourceUrl`` and ``RecordedAt``
provenance columns), so a client's historical query is *the same SQL*
executed against the same group name — only the mode flag differs.

Tables are ring-bounded per group to keep long-running gateways at a
fixed memory footprint.

Durability is optional and delegated: when constructed with a
:class:`~repro.storage.engine.HistoryEngine`, every recorded row is
WAL-appended before it is served and every ``trim_older_than`` is
durably logged, so the store's contents survive a gateway crash.  The
engine holds *references to the same row dicts* the serving tables
hold — the durable and serving copies cannot drift between checkpoints.
Without an engine the store is the original pure in-memory ring.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import TYPE_CHECKING, Any, Iterable, Mapping

from repro.analysis import races
from repro.glue.schema import GlueSchema
from repro.sql.ast_nodes import ColumnDef
from repro.sql.database import Database
from repro.sql.executor import SelectResult
from repro.sql.parser import parse_select

if TYPE_CHECKING:  # pragma: no cover
    from repro.sql.plan import CompiledPlan
    from repro.storage.engine import HistoryEngine

#: Provenance columns appended to every history table.
PROVENANCE = (
    ColumnDef("SourceUrl", "TEXT"),
    ColumnDef("RecordedAt", "TIMESTAMP"),
)


class HistoryStore:
    """Per-group historical tables with provenance and ring bounding."""

    def __init__(
        self,
        schema: GlueSchema,
        *,
        max_rows_per_group: int = 100_000,
        engine: "HistoryEngine | None" = None,
    ) -> None:
        if max_rows_per_group < 1:
            raise ValueError(
                f"max_rows_per_group must be >= 1: {max_rows_per_group!r}"
            )
        self.schema = schema
        self.max_rows_per_group = max_rows_per_group
        self.engine = engine
        self.db = Database()
        self.rows_recorded = 0
        self.rows_evicted = 0
        self.rows_recovered = 0
        if engine is not None:
            self._load_recovered()

    # ------------------------------------------------------------------
    def _load_recovered(self) -> None:
        """Populate serving tables from the engine's recovered rows."""
        assert self.engine is not None
        for group_name in self.engine.groups():
            if not self.schema.has_group(group_name):
                # A durable row for a group this schema no longer knows:
                # keep it durable (it stays in the engine's segments),
                # just don't serve it.
                continue
            table = self._ensure_table(group_name)
            columns = table.column_names
            for row in self.engine.serving_rows(group_name):
                table.rows.append({name: row.get(name) for name in columns})
                self.rows_recovered += 1

    def _ensure_table(self, group_name: str):
        group = self.schema.group(group_name)
        if group.name not in self.db.tables:
            columns = [ColumnDef(f.name, f.type) for f in group.fields]
            columns.extend(PROVENANCE)
            self.db.create_table(group.name, columns)
        return self.db.table(group.name)

    def record(
        self,
        group_name: str,
        rows: Iterable[Mapping[str, Any]],
        *,
        source_url: str,
        recorded_at: float,
    ) -> int:
        """Record GLUE rows for a group; returns the number stored."""
        if races.ACTIVE is not None:
            # Registered COMMUTATIVE: sibling-branch appends to one group
            # interleave by launch order, but every row carries its own
            # SourceUrl/RecordedAt provenance, so time-windowed readers
            # (series, rollup, RecordedAt predicates) are insensitive to
            # the interleaving.  A read racing the appends is still
            # flagged (GRM552) — it would see a launch-order prefix.
            races.ACTIVE.note(
                "history", group_name, "w", site="HistoryStore.record"
            )
        table = self._ensure_table(group_name)
        known = set(table.column_names)
        engine = self.engine
        n = 0
        for row in rows:
            stored = {k: v for k, v in row.items() if k in known}
            stored["SourceUrl"] = source_url
            stored["RecordedAt"] = recorded_at
            table.insert_row(stored)
            n += 1
        if engine is not None and n:
            # One WAL record for the whole batch, referencing the coerced
            # dicts the table holds (atomic ack, one frame per call).
            engine.append_rows(table.name, table.rows[-n:])
        self.rows_recorded += n
        overflow = len(table.rows) - self.max_rows_per_group
        if overflow > 0:
            # Rows are appended in time order, so the oldest are first;
            # one slice-delete trims the whole batch's overflow at once.
            del table.rows[:overflow]
            self.rows_evicted += overflow
        return n

    # ------------------------------------------------------------------
    def query(
        self,
        sql: str,
        *,
        source_url: str | None = None,
        plan: "CompiledPlan | None" = None,
    ) -> SelectResult:
        """Run a client SELECT against a group's history.

        ``source_url`` optionally narrows to one data source's records —
        the RequestManager passes the URL of the source the client
        addressed.  The WHERE clause may reference ``RecordedAt`` for
        time ranges.  ``plan`` (a compiled plan for this exact ``sql``,
        from the gateway's plan cache) skips the parse and evaluates the
        scan with precompiled closures — column names resolved against
        the table layout once instead of once per row.
        """
        if plan is not None:
            select = plan.select
        else:
            select = parse_select(sql)
        if races.ACTIVE is not None:
            races.ACTIVE.note(
                "history", select.table, "r", site="HistoryStore.query"
            )
        self._ensure_table(select.table)
        table = self.db.table(self.schema.group(select.table).name)
        rows = table.rows
        if source_url is not None:
            rows = [r for r in rows if r.get("SourceUrl") == source_url]
        if plan is not None:
            return plan.bind_mapping(tuple(table.column_names)).execute(rows)
        from repro.sql.executor import execute_select

        return execute_select(select, table.column_names, rows)

    @staticmethod
    def _since_slice(rows: list[dict[str, Any]], since: float) -> list[dict[str, Any]]:
        """Rows recorded at or after ``since``, found by bisection.

        Rows are appended in ``RecordedAt`` order, so instead of scanning
        every row we bisect to the cutoff.  ``RecordedAt is None`` rows
        sort as -inf: they sit at the front and a time-filtered read
        skips them (same semantics as the old linear filter).
        """
        lo = bisect_left(
            rows,
            since,
            key=lambda r: r["RecordedAt"] if r.get("RecordedAt") is not None
            else float("-inf"),
        )
        return rows[lo:]

    def series(
        self,
        group_name: str,
        field: str,
        *,
        source_url: str | None = None,
        host: str | None = None,
        since: float | None = None,
    ) -> list[tuple[float, Any]]:
        """(RecordedAt, value) pairs for one field — the console's plots."""
        if races.ACTIVE is not None:
            races.ACTIVE.note(
                "history", group_name, "r", site="HistoryStore.series"
            )
        if group_name not in self.db.tables:
            return []
        rows = self.db.table(group_name).rows
        if since is not None:
            rows = self._since_slice(rows, since)
        out: list[tuple[float, Any]] = []
        for row in rows:
            if source_url is not None and row.get("SourceUrl") != source_url:
                continue
            if host is not None and row.get("HostName") != host:
                continue
            t = row.get("RecordedAt")
            if since is not None and t is None:
                continue
            out.append((t, row.get(field)))
        return out

    def rollup(
        self,
        group_name: str,
        field: str,
        *,
        bucket: float,
        host: str | None = None,
        source_url: str | None = None,
        since: float | None = None,
    ) -> list[dict[str, Any]]:
        """Downsample one field's history into fixed time buckets.

        Returns one dict per non-empty bucket with ``bucket_start``,
        ``n``, ``min``, ``avg`` and ``max`` — what the console's plots
        and capacity reports consume when the raw series outgrows the
        screen (a long-running gateway records thousands of samples per
        day even with caching).
        """
        if bucket <= 0:
            raise ValueError(f"bucket must be > 0: {bucket!r}")
        series = self.series(
            group_name, field, host=host, source_url=source_url, since=since
        )
        buckets: dict[int, list[float]] = {}
        for t, value in series:
            if t is None or not isinstance(value, (int, float)) or isinstance(value, bool):
                continue
            buckets.setdefault(int(t // bucket), []).append(float(value))
        out = []
        for index in sorted(buckets):
            values = buckets[index]
            out.append(
                {
                    "bucket_start": index * bucket,
                    "n": len(values),
                    "min": min(values),
                    "avg": sum(values) / len(values),
                    "max": max(values),
                }
            )
        return out

    def trim_older_than(self, cutoff: float) -> int:
        """Time-based retention: drop rows recorded before ``cutoff``.

        Complements the per-group ring bound: a site with bursty polling
        can cap history by age instead of (or as well as) by count.
        Returns the number of rows dropped.  With a durable engine the
        trim is WAL-logged (and fsynced) *before* the serving tables
        change, so a crash cannot resurrect trimmed rows.
        """
        if self.engine is not None:
            self.engine.append_trim(cutoff)
        dropped = 0
        for table in self.db.tables.values():
            before = len(table.rows)
            table.rows = [
                r
                for r in table.rows
                if r.get("RecordedAt") is None or r["RecordedAt"] >= cutoff
            ]
            dropped += before - len(table.rows)
        self.rows_evicted += dropped
        return dropped

    # ------------------------------------------------------------------
    # Durability passthroughs (no-ops without an engine)
    # ------------------------------------------------------------------
    def sync(self) -> None:
        """Flush the WAL group-commit buffer (advance the ack boundary)."""
        if self.engine is not None:
            self.engine.sync()

    def checkpoint(self) -> None:
        """Seal the memtable and truncate the WAL; re-sync dirty groups."""
        if self.engine is None:
            return
        result = self.engine.checkpoint()
        for group_name in result.serving_dirty:
            self._resync_group(group_name)

    def _resync_group(self, group_name: str) -> None:
        """Rebuild one group's serving rows from the engine.

        Needed when checkpoint retention (``history_retention_age``)
        drops sealed segments whose rows the serving table still held.
        """
        assert self.engine is not None
        if not self.schema.has_group(group_name):
            return
        table = self._ensure_table(group_name)
        before = len(table.rows)
        columns = table.column_names
        table.rows = [
            {name: row.get(name) for name in columns}
            for row in self.engine.serving_rows(group_name)
        ]
        if len(table.rows) < before:
            self.rows_evicted += before - len(table.rows)

    def row_count(self, group_name: str | None = None) -> int:
        if group_name is not None:
            if group_name not in self.db.tables:
                return 0
            return len(self.db.table(group_name).rows)
        return sum(len(t.rows) for t in self.db.tables.values())

    def groups_recorded(self) -> list[str]:
        return sorted(self.db.tables)
