"""RequestManager (paper §3.1.1).

"SQL requests are received from the Abstract Client Interface Layer, the
queries are processed and the results returned to the ACIL.  The
RequestManager coordinates queries across multiple data sources and
consolidates results.  Furthermore, the manager is responsible for
executing queries that span real-time resource requests and historical
(or cached) data.  The RequestManager uses the ConnectionManager to
execute real-time queries, while historical data is retrieved from the
Gateway's internal database."

Modes:

* ``REALTIME`` — always poll the data source(s).
* ``CACHED_OK`` — serve from the gateway query cache when fresh enough,
  else fall through to real time (the tree-view default, §4).
* ``HISTORY`` — run the same SQL against the internal historical store.

Multi-source queries consolidate per-source results into one relation;
sources that fail contribute a status entry rather than failing the whole
request.

Dispatch is concurrent in virtual time (see :mod:`repro.core.dispatch`):
a query over N sources fans one sub-request out per source, so the
consolidated result costs the *slowest* source's round-trip rather than
the sum of all N.  Results are always merged in the caller's URL order —
never completion order — so consolidation stays deterministic.  Identical
concurrent requests to one source coalesce into a single agent
round-trip (single-flight), and per-source concurrency caps stop a wide
fan-out from stampeding one agent.
"""

from __future__ import annotations

import enum
import random
from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping, Sequence

from repro.core.admission import AdmissionController, QueryClass
from repro.core.cache import CacheController
from repro.core.connection_manager import ConnectionManager
from repro.core.deadline import Deadline
from repro.core.dispatch import FanoutDispatcher
from repro.core.errors import (
    DataSourceError,
    DeadlineExceededError,
    GridRmError,
    NoSuitableDriverError,
    OverloadError,
    QueryValidationError,
    SourceQuarantinedError,
)
from repro.core.health import HealthTracker
from repro.core.retry import RetryBudget, RetryPolicy
from repro.core.history import HistoryStore
from repro.core.plans import PlanCache
from repro.core.policy import GatewayPolicy
from repro.dbapi.exceptions import (
    SQLConnectionException,
    SQLException,
    SQLTimeoutException,
)
from repro.dbapi.resultset import ListResultSet
from repro.dbapi.url import JdbcUrl
from repro.obs.metrics import MetricsRegistry, StatsView
from repro.obs.trace import NO_TRACER, Tracer
from repro.sql.errors import SqlError
from repro.sql.plan import CompiledPlan, join_rows


class QueryMode(enum.Enum):
    REALTIME = "realtime"
    CACHED_OK = "cached_ok"
    HISTORY = "history"


@dataclass
class SourceStatus:
    """Outcome of one data source within a consolidated query."""

    url: str
    ok: bool
    rows: int = 0
    from_cache: bool = False
    #: True when the source's circuit breaker was OPEN and the answer is
    #: a stale cached result (ok=True) or a short-circuited failure
    #: (ok=False) — either way, the source itself was not touched.
    degraded: bool = False
    #: True when this answer shared another request's in-flight agent
    #: round-trip (single-flight coalescing) instead of issuing its own.
    coalesced: bool = False
    #: True when a gateway (local or remote) refused this source's work
    #: to protect itself (load shed) — never a source-health signal.
    shed: bool = False
    error: str = ""


@dataclass
class QueryResult:
    """A consolidated query result."""

    columns: list[str]
    rows: list[list[Any]]
    statuses: list[SourceStatus] = field(default_factory=list)
    mode: QueryMode = QueryMode.REALTIME
    started_at: float = 0.0
    elapsed: float = 0.0
    #: Id of the query's trace tree in the gateway's Tracer ("" when the
    #: result was produced without one).
    trace_id: str = ""

    @property
    def ok_sources(self) -> int:
        return sum(1 for s in self.statuses if s.ok)

    @property
    def failed_sources(self) -> int:
        return sum(1 for s in self.statuses if not s.ok)

    @property
    def degraded(self) -> bool:
        """True when any contributing source was served degraded."""
        return any(s.degraded for s in self.statuses)

    def dicts(self) -> list[dict[str, Any]]:
        return [dict(zip(self.columns, r)) for r in self.rows]

    def result_set(self) -> ListResultSet:
        """The consolidated relation as a standard ResultSet."""
        return ListResultSet(self.columns, self.rows)


def merge_rows(
    dest_columns: list[str],
    dest_rows: list[list[Any]],
    columns: Sequence[str],
    rows: Iterable[Sequence[Any]],
) -> tuple[list[str], int]:
    """Consolidate one relation into ``(dest_columns, dest_rows)``.

    Appends to ``dest_rows`` in place, aligning heterogeneous
    projections by column name (None-filling gaps — e.g. history results
    carry extra provenance columns).  Returns the destination columns
    (adopted from ``columns`` when the destination was empty) and the
    number of rows appended.  Shared by the RequestManager's per-source
    consolidation and the Gateway's remote-site scatter-gather.
    """
    rows = [list(r) for r in rows]
    if not dest_columns:
        dest_rows.extend(rows)
        return list(columns), len(rows)
    if list(columns) == dest_columns:
        dest_rows.extend(rows)
        return dest_columns, len(rows)
    index = {c: i for i, c in enumerate(columns)}
    for row in rows:
        dest_rows.append(
            [row[index[c]] if c in index else None for c in dest_columns]
        )
    return dest_columns, len(rows)


class RequestManager:
    """Coordinates real-time, cached and historical queries."""

    def __init__(
        self,
        connection_manager: ConnectionManager,
        cache: CacheController,
        history: HistoryStore,
        policy: GatewayPolicy,
        *,
        health: HealthTracker | None = None,
        dispatcher: FanoutDispatcher | None = None,
        registry: MetricsRegistry | None = None,
        tracer: Tracer | None = None,
        plans: "PlanCache | None" = None,
        admission: AdmissionController | None = None,
    ) -> None:
        self.connection_manager = connection_manager
        self.cache = cache
        self.history = history
        self.policy = policy
        #: Shared per-source circuit breakers (injected by the Gateway).
        self.health = health
        #: The gateway's admission controller (injected by the Gateway
        #: when overload protection is on); consulted by the retry and
        #: hedge paths so they cannot fight the limiter.
        self.admission = admission
        #: The gateway's continuous-query hub (injected by the Gateway
        #: when ``policy.streaming_enabled``): every real-time fetch is
        #: published into it so registered continuous SELECTs receive
        #: matching tuples at the moment they are produced.
        self.streams: "Any | None" = None
        self.clock = connection_manager.clock
        #: Shared metrics registry (injected by the Gateway; standalone
        #: construction gets a private one so the stats below behave the
        #: same either way) and per-hop tracer.
        self.registry = registry if registry is not None else MetricsRegistry()
        self.tracer = tracer if tracer is not None else NO_TRACER
        #: Concurrent dispatch + single-flight + per-source caps.  The
        #: Gateway injects its shared dispatcher so coalescing works
        #: across every consumer of the same sources.
        self.dispatcher = (
            dispatcher
            if dispatcher is not None
            else FanoutDispatcher(self.clock, policy)
        )
        #: Parse + validate + compile each distinct query exactly once.
        #: The Gateway injects a shared, schema-versioned cache; a
        #: standalone manager gets a private one (no version polling —
        #: its schema object never changes under it).
        self.plans = (
            plans
            if plans is not None
            else PlanCache(
                history.schema, registry=self.registry, tracer=self.tracer
            )
        )
        #: Seeded jitter source for retry backoffs — deterministic under
        #: replay (draws happen in deterministic branch order).
        self._retry_rng = random.Random(0)
        #: Compatibility view over ``requests.*`` registry counters: the
        #: historical dict keys keep working (``stats["queries"] += 1``,
        #: ``dict(stats)``), and the same numbers surface through
        #: ``SELECT * FROM GatewayMetrics``.
        self.stats = StatsView(
            self.registry,
            "requests",
            (
                "queries",
                "join_queries",
                "fanout_queries",
                "singleflight_joins",
                "realtime_fetches",
                "cache_served",
                "history_served",
                "source_failures",
                "breaker_short_circuits",
                "stale_served",
                "validation_rejects",
                "retries",
                "retry_giveups",
                "deadline_exceeded",
                "sheds",
            ),
        )

    # ------------------------------------------------------------------
    def execute(
        self,
        urls: str | JdbcUrl | Sequence[str | JdbcUrl],
        sql: str,
        *,
        mode: QueryMode = QueryMode.REALTIME,
        max_age: float | None = None,
        info: Mapping[str, Any] | None = None,
        deadline: Deadline | None = None,
        retry_budget: RetryBudget | None = None,
    ) -> QueryResult:
        """Run ``sql`` against one or many data sources and consolidate.

        ``deadline``: end-to-end budget shared by every sub-request (see
        :mod:`repro.core.deadline`); an expired deadline turns remaining
        sources into fast-failed statuses rather than agent traffic.
        ``retry_budget``: internal — the join decomposition passes the
        top-level query's budget down so sub-queries cannot multiply it.
        """
        self.stats["queries"] += 1
        if (
            retry_budget is None
            and self.policy.retry_attempts > 1
            and self.policy.retry_budget > 0
        ):
            retry_budget = RetryBudget(self.policy.retry_budget)
        if isinstance(urls, (str, JdbcUrl)):
            urls = [urls]
        parsed = [JdbcUrl.parse(u) if isinstance(u, str) else u for u in urls]
        if not parsed:
            raise GridRmError("query requires at least one data source URL")
        # Parse + compile-time GLUE validation + plan compilation happen
        # exactly once per distinct query via the plan cache: a syntax
        # error is reported to the client (not charged to the first data
        # source), a query naming an unknown group / attribute or
        # comparing incompatible types is rejected before driver
        # selection, and a warm query skips all three stages (the trace
        # shows ``plan.cache_hit`` instead of ``plan.compile``).
        # Historical queries may additionally reference the store's
        # provenance columns.
        extra = ("SourceUrl", "RecordedAt") if mode is QueryMode.HISTORY else ()
        try:
            entry = self.plans.get(sql, extra_fields=extra)
        except SqlError as exc:
            raise GridRmError(f"bad query: {exc}") from exc
        if entry.findings:
            self.stats["validation_rejects"] += 1
            raise QueryValidationError(
                "invalid query: "
                + "; ".join(f.message for f in entry.findings),
                findings=entry.findings,
            )
        select = entry.select
        plan = entry.plan

        started = self.clock.now()
        with self.tracer.span(
            "execute", mode=mode.value, sources=len(parsed), join=select.is_join
        ):
            if select.is_join:
                result = self._execute_join(
                    parsed, select, plan, mode, max_age, info, deadline,
                    retry_budget,
                )
                result.started_at = started
            else:
                result = QueryResult(
                    columns=[], rows=[], mode=mode, started_at=started
                )
                if mode is QueryMode.HISTORY:
                    # Historical queries hit the gateway-local store: no
                    # network round-trips, nothing to overlap.
                    for url in parsed:
                        self._one_history(url, sql, result, plan)
                elif len(parsed) == 1 or not self.policy.fanout_enabled:
                    for url in parsed:
                        self._one_realtime(
                            url, sql, select, result, mode, max_age, info,
                            deadline, retry_budget, plan,
                        )
                else:
                    self._fan_out(
                        parsed, sql, select, result, mode, max_age, info,
                        deadline, retry_budget, plan,
                    )
        result.elapsed = self.clock.now() - started
        return result

    def _fan_out(
        self,
        urls: list[JdbcUrl],
        sql: str,
        select: Any,
        result: QueryResult,
        mode: QueryMode,
        max_age: float | None,
        info: Mapping[str, Any] | None,
        deadline: Deadline | None = None,
        retry_budget: RetryBudget | None = None,
        plan: "CompiledPlan | None" = None,
    ) -> None:
        """Dispatch one sub-request per source concurrently.

        Each branch fills a private partial result; partials are merged
        into ``result`` afterwards in the caller's URL order, so rows and
        statuses come out identically however branch round-trips overlap.
        """
        self.stats["fanout_queries"] += 1
        partials = [QueryResult(columns=[], rows=[], mode=mode) for _ in urls]

        def branch(url: JdbcUrl, partial: QueryResult):
            return lambda: self._one_realtime(
                url, sql, select, partial, mode, max_age, info,
                deadline, retry_budget, plan,
            )

        guarded = (
            deadline
            if self.admission is not None and self.admission.enabled
            else None
        )
        outcomes = self.dispatcher.run(
            [branch(u, p) for u, p in zip(urls, partials)], deadline=guarded
        )
        for outcome, partial, url in zip(outcomes, partials, urls):
            if isinstance(outcome.error, DeadlineExceededError):
                # The branch-launch guard fired: the budget ran out while
                # this source's branch queued.  A per-source outcome, not
                # a query failure — and no health penalty.
                self.stats["deadline_exceeded"] += 1
                self.stats["source_failures"] += 1
                result.statuses.append(
                    SourceStatus(url=str(url), ok=False, error=str(outcome.error))
                )
                continue
            if outcome.error is not None:
                # _one_realtime converts per-source failures to statuses;
                # anything escaping it is a programming error worth
                # surfacing, not a source outcome.
                raise outcome.error
            result.statuses.extend(partial.statuses)
            if partial.columns:
                self._merge(result, partial.columns, partial.rows)

    # ------------------------------------------------------------------
    def _execute_join(
        self,
        urls: list[JdbcUrl],
        select,
        plan: "CompiledPlan | None",
        mode: QueryMode,
        max_age: float | None,
        info: Mapping[str, Any] | None,
        deadline: Deadline | None = None,
        retry_budget: RetryBudget | None = None,
    ) -> QueryResult:
        """Multi-group query: "Clients select one or more GLUE group
        names to query" (paper §3.2.3).

        Drivers only ever see single-group statements, so the gateway
        decomposes ``FROM Processor, MainMemory`` into one full-group
        sub-query per group, natural-joins the per-source results on the
        row identity keys (HostName + SiteName — sample Timestamps never
        match across agents), and evaluates the original projection /
        WHERE / ORDER BY / aggregation over the joined relation.
        """
        from repro.sql.executor import execute_select, natural_join

        self.stats["join_queries"] += 1
        result = QueryResult(columns=[], rows=[], mode=mode)
        self.tracer.current_span().annotate(groups=len(select.tables))

        def branch(group: str):
            return lambda: self.execute(
                urls,
                f"SELECT * FROM {group}",
                mode=mode,
                max_age=max_age,
                info=info,
                deadline=deadline,
                retry_budget=retry_budget,
            )

        # One decomposed sub-query per GLUE group, dispatched
        # concurrently (each branch fans out over the sources in turn);
        # relations are consolidated in the statement's group order.
        outcomes = self.dispatcher.run([branch(g) for g in select.tables])
        relations = []
        for outcome in outcomes:
            if outcome.error is not None:
                raise outcome.error
            sub = outcome.value
            result.statuses.extend(sub.statuses)
            if plan is not None:
                # Compiled path joins positional rows directly — no
                # per-row dict round-trip between sub-query and join.
                relations.append((sub.columns, sub.rows))
            else:
                relations.append((sub.columns, sub.dicts()))
        if any(not columns for columns, _ in relations):
            # A group nobody could serve: the inner join is empty, which
            # is a degraded answer, not an error (statuses carry why).
            return result
        try:
            if plan is not None:
                columns, rows = join_rows(
                    relations, key_columns=("HostName", "SiteName")
                )
                sel = plan.bind(tuple(columns)).execute(rows)
            else:
                columns, rows = natural_join(
                    relations, key_columns=("HostName", "SiteName")
                )
                sel = execute_select(select, columns, rows)
        except SqlError as exc:
            raise GridRmError(f"join failed: {exc}") from exc
        result.columns = sel.columns
        result.rows = sel.rows
        return result

    # ------------------------------------------------------------------
    def _merge(
        self,
        result: QueryResult,
        columns: Sequence[str],
        rows: Iterable[Sequence[Any]],
    ) -> int:
        """Append one source's rows, aligning columns by name."""
        result.columns, n = merge_rows(result.columns, result.rows, columns, rows)
        return n

    def _one_realtime(
        self,
        url: JdbcUrl,
        sql: str,
        select: Any,
        result: QueryResult,
        mode: QueryMode,
        max_age: float | None,
        info: Mapping[str, Any] | None,
        deadline: Deadline | None = None,
        retry_budget: RetryBudget | None = None,
        plan: "CompiledPlan | None" = None,
    ) -> None:
        with self.tracer.span("source", url=str(url)) as span:
            if deadline is not None:
                span["deadline_remaining"] = deadline.remaining()
            if self.health is not None:
                span["breaker"] = self.health.state(str(url)).value
            self._one_realtime_traced(
                url, sql, select, result, mode, max_age, info,
                deadline, retry_budget, span, plan,
            )

    def _one_realtime_traced(
        self,
        url: JdbcUrl,
        sql: str,
        select: Any,
        result: QueryResult,
        mode: QueryMode,
        max_age: float | None,
        info: Mapping[str, Any] | None,
        deadline: Deadline | None,
        retry_budget: RetryBudget | None,
        span,
        plan: "CompiledPlan | None" = None,
    ) -> None:
        url_text = str(url)
        if deadline is not None and deadline.expired():
            # Budget gone before this source was even dispatched (eaten
            # by earlier hops): fail fast, no agent traffic, and no
            # health penalty — the source did nothing wrong.
            self.stats["deadline_exceeded"] += 1
            self.stats["source_failures"] += 1
            span.fail("deadline exceeded before dispatch",
                      status="deadline_exceeded")
            result.statuses.append(
                SourceStatus(
                    url=url_text, ok=False, error="deadline exceeded before dispatch"
                )
            )
            return
        if mode is QueryMode.CACHED_OK:
            cached = self.cache.lookup(url_text, sql, max_age=max_age)
            if cached is not None:
                self.stats["cache_served"] += 1
                span["cache"] = "hit"
                n = self._merge(result, cached.columns, cached.rows)
                result.statuses.append(
                    SourceStatus(url=url_text, ok=True, rows=n, from_cache=True)
                )
                return
        span["cache"] = "miss" if mode is QueryMode.CACHED_OK else "bypass"
        if self.health is not None and not self.health.allow_request(url_text):
            # Circuit OPEN: never touch the source (even in REALTIME —
            # that is the breaker's whole point).  Serve the last cached
            # answer past its TTL when the policy allows, else fail fast.
            self.stats["breaker_short_circuits"] += 1
            span["breaker"] = "open"
            span["short_circuited"] = True
            self._one_degraded(url_text, sql, result)
            return
        # Single-flight: an identical request already in the air to this
        # source answers both of us with one agent round-trip.  The real
        # flight already updated health, stats, cache and history — the
        # joiner only waits for it and shares the outcome.
        flight = self.dispatcher.join_flight(url_text, sql)
        if flight is not None:
            self.stats["singleflight_joins"] += 1
            span["coalesced"] = True
            if flight.error is not None:
                self.stats["source_failures"] += 1
                result.statuses.append(
                    SourceStatus(
                        url=url_text,
                        ok=False,
                        coalesced=True,
                        error=str(flight.error),
                    )
                )
                return
            columns, rows = flight.value
            n = self._merge(result, columns, rows)
            result.statuses.append(
                SourceStatus(url=url_text, ok=True, rows=n, coalesced=True)
            )
            return
        # Only idempotent drivers may have their fetch re-issued —
        # whether by the retry loop below or by a dispatcher hedge.
        reissuable = self._idempotent(url)
        # Overload interplay (when the gateway's admission controller is
        # on): hedges are suppressed under pressure, failed attempts
        # re-check admission before retrying, and a shed is a typed
        # status that costs neither a breaker penalty nor a retry token.
        adm = (
            self.admission
            if self.admission is not None and self.admission.enabled
            else None
        )
        qc = QueryClass.parse((info or {}).get("query_class"))
        retry = RetryPolicy.from_gateway_policy(self.policy)
        fetch_started = self.clock.now()
        attempt = 0
        # Admission was decided by the allow_request above; pin it for
        # the whole operation so hedge siblings and retry attempts see
        # the decision as of launch, not breaker state mid-mutation.
        admission = (
            self.health.pin(url_text, True)
            if self.health is not None
            else nullcontext()
        )
        with admission:
            while True:
                attempt += 1
                try:
                    with self.tracer.span("attempt", index=attempt):
                        columns, rows = self.dispatcher.run_flight(
                            url_text,
                            sql,
                            lambda: self._fetch(url, sql, info, deadline, plan),
                            hedge=reissuable
                            and not (adm is not None and adm.suppress_hedges()),
                            deadline=deadline if adm is not None else None,
                        )
                    break
                except OverloadError as exc:
                    # A gateway (this one, or a remote one on the GMA
                    # wire) shed the work to protect itself.  That says
                    # nothing about this source's health: no breaker
                    # penalty, no retry token spent, no hedge — just a
                    # typed per-source status with the retry-after hint.
                    self.stats["sheds"] += 1
                    self.stats["source_failures"] += 1
                    span.annotate(attempts=attempt)
                    span.fail(exc, status="shed")
                    result.statuses.append(
                        SourceStatus(url=url_text, ok=False, shed=True, error=str(exc))
                    )
                    return
                except DeadlineExceededError as exc:
                    # The end-to-end budget ran out mid-fetch: report it as
                    # this source's outcome.  No health penalty (the source
                    # was not proven unhealthy) and never a retry.
                    self.stats["deadline_exceeded"] += 1
                    self.stats["source_failures"] += 1
                    span.annotate(attempts=attempt)
                    span.fail(exc, status="deadline_exceeded")
                    result.statuses.append(
                        SourceStatus(url=url_text, ok=False, error=str(exc))
                    )
                    return
                except (DataSourceError, NoSuitableDriverError, SQLException) as exc:
                    # Connect-stage failures (DataSourceError) were already
                    # recorded into the health tracker by the driver manager;
                    # post-connect transport failures are recorded here.  Syntax
                    # or mapping errors say nothing about source health.
                    if self.health is not None and isinstance(
                        exc, (SQLConnectionException, SQLTimeoutException)
                    ):
                        self.health.record_failure(url_text, str(exc))
                    transient = isinstance(
                        exc,
                        (SQLConnectionException, SQLTimeoutException, DataSourceError),
                    ) and not isinstance(exc, SourceQuarantinedError)
                    if transient and reissuable and attempt < retry.attempts:
                        pause = retry.backoff(attempt, self._retry_rng)
                        if adm is not None and not adm.allow_retry(qc):
                            # Re-check admission: retrying under pressure
                            # is extra offered load fighting our own
                            # limiter (only CRITICAL keeps its retries).
                            self.stats["retry_giveups"] += 1
                        elif deadline is not None and deadline.remaining() <= pause:
                            # No budget left to back off and try again.
                            self.stats["retry_giveups"] += 1
                        elif retry_budget is not None and retry_budget.take():
                            self.stats["retries"] += 1
                            self.clock.advance(pause)
                            continue
                        elif retry_budget is not None:
                            self.stats["retry_giveups"] += 1
                    self.stats["source_failures"] += 1
                    span.annotate(attempts=attempt)
                    span.fail(exc)
                    result.statuses.append(
                        SourceStatus(url=url_text, ok=False, error=str(exc))
                    )
                    return
        if self.health is not None:
            self.health.record_success(url_text)
        self.stats["realtime_fetches"] += 1
        span.annotate(attempts=attempt)
        self.registry.histogram("requests.source_latency").record(
            self.clock.now() - fetch_started
        )
        n = self._merge(result, columns, rows)
        result.statuses.append(SourceStatus(url=url_text, ok=True, rows=n))
        self.cache.store(url_text, sql, list(columns), [list(r) for r in rows])
        if self.policy.history_enabled:
            group = select.table
            if self.history.schema.has_group(group):
                canonical = self.history.schema.group(group)
                dict_rows = [dict(zip(columns, r)) for r in rows]
                # Only record rows that carry the group's fields (star
                # queries); narrow projections are not representative.
                if set(canonical.field_names()) <= set(columns):
                    self.history.record(
                        canonical.name,
                        dict_rows,
                        source_url=url_text,
                        recorded_at=self.clock.now(),
                    )
        if self.streams is not None:
            # Continuous queries see every real-time fetch at the moment
            # it is produced — predicate evaluation happens in the hub
            # (at the producing gateway), inside this source's fan-out
            # branch, so push spans nest under the live query trace.
            self.streams.publish(
                select.table, list(columns), rows, source_url=url_text
            )

    def _one_degraded(self, url_text: str, sql: str, result: QueryResult) -> None:
        """Answer for a source whose breaker is OPEN: stale rows when the
        policy allows and the cache still holds any, a fast failure
        status otherwise — never an exception, never agent traffic."""
        if self.policy.serve_stale_on_open:
            stale = self.cache.lookup_stale(url_text, sql)
            if stale is not None:
                self.stats["stale_served"] += 1
                n = self._merge(result, stale.columns, stale.rows)
                result.statuses.append(
                    SourceStatus(
                        url=url_text, ok=True, rows=n, from_cache=True, degraded=True
                    )
                )
                return
        entry = self.health.health(url_text)
        detail = f": {entry.last_error}" if entry.last_error else ""
        result.statuses.append(
            SourceStatus(
                url=url_text,
                ok=False,
                degraded=True,
                error=(
                    f"circuit open until t={entry.open_until:.1f}s{detail}"
                ),
            )
        )

    def _idempotent(self, url: JdbcUrl) -> bool:
        """May this source's fetch be safely re-issued (retry / hedge)?

        Decided by the driver's ``idempotent`` declaration.  Before any
        driver is allocated the answer defaults to True — monitoring
        reads are idempotent unless a driver says otherwise.
        """
        driver = self.connection_manager.driver_manager.cached_driver(url)
        if driver is None:
            return True
        return bool(getattr(driver, "idempotent", True))

    def _fetch(
        self,
        url: JdbcUrl,
        sql: str,
        info: Mapping[str, Any] | None,
        deadline: Deadline | None = None,
        plan: "CompiledPlan | None" = None,
    ) -> tuple[list[str], list[list[Any]]]:
        from repro.drivers.base import GridRmStatement

        with self.connection_manager.connection(url, info, deadline=deadline) as conn:
            statement = conn.create_statement()
            # Hand the statement the compiled plan only when it runs the
            # stock execute_query — a subclass overriding it may not
            # accept the keyword (and re-parses on its own authority).
            if (
                plan is not None
                and type(statement).execute_query
                is GridRmStatement.execute_query
            ):
                rs = statement.execute_query(sql, plan=plan)
            else:
                rs = statement.execute_query(sql)
            assert isinstance(rs, ListResultSet)
            return rs.columns, rs.take_rows()

    def _one_history(
        self,
        url: JdbcUrl,
        sql: str,
        result: QueryResult,
        plan: "CompiledPlan | None" = None,
    ) -> None:
        url_text = str(url)
        with self.tracer.span("history", url=url_text) as span:
            try:
                sel = self.history.query(sql, source_url=url_text, plan=plan)
            except SqlError as exc:
                span.fail(exc)
                result.statuses.append(
                    SourceStatus(url=url_text, ok=False, error=str(exc))
                )
                return
            self.stats["history_served"] += 1
            n = self._merge(result, sel.columns, sel.rows)
            span["rows"] = n
            result.statuses.append(SourceStatus(url=url_text, ok=True, rows=n))
