"""Threshold alerting (paper Figures 3 and 4: "Threshold exceeded.
Event transmitted").

GridRM's event path is fed from two directions: native events pushed by
agents (SNMP traps, handled by :mod:`repro.core.events`) and thresholds
the *gateway itself* watches by polling — Figure 3 shows the Notification
Manager emitting an event when a query result crosses a threshold.
:class:`AlertMonitor` implements the latter: each :class:`AlertRule`
pairs a data source poll with a SQL WHERE-style predicate; on a matching
row an :class:`~repro.core.events.Event` is synthesised into the
EventManager, flowing to listeners, history and (optionally) outbound
native transmission exactly like a trap would.

Rules poll on the virtual clock with per-rule periods, and re-arm
hysteresis prevents a sustained condition from emitting one event per
poll tick.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, TYPE_CHECKING

from repro.analysis.query_check import validate_sql
from repro.core.errors import QueryValidationError
from repro.core.events import Event
from repro.core.request_manager import QueryMode
from repro.sql.errors import SqlError
from repro.sql.parser import parse_select

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.gateway import Gateway


@dataclass
class AlertRule:
    """One threshold watch.

    Attributes:
        name: event name emitted ("alert.<name>").
        urls: data sources to poll (any JDBC URL text).
        sql: the probe query; its WHERE clause IS the threshold — any row
            it returns is a violation (e.g. ``SELECT HostName,
            LoadAverage1Min FROM Processor WHERE LoadAverage1Min > 4``).
        period: poll interval, virtual seconds.
        severity: severity of emitted events.
        use_cache: poll with CACHED_OK (cheap, bounded staleness) or
            force REALTIME.
        rearm_after: a (rule, host) pair that fired stays silent until it
            has been clear for this long (hysteresis); 0 re-fires every
            matching poll.
    """

    name: str
    urls: list[str]
    sql: str
    period: float = 30.0
    severity: str = "warning"
    use_cache: bool = True
    rearm_after: float = 120.0

    def __post_init__(self) -> None:
        if self.period <= 0:
            raise ValueError(f"period must be > 0: {self.period!r}")
        if self.rearm_after < 0:
            raise ValueError(f"rearm_after must be >= 0: {self.rearm_after!r}")
        if not self.urls:
            raise ValueError("rule needs at least one data source URL")
        # Validate the probe SQL once, at definition time.
        try:
            parse_select(self.sql)
        except SqlError as exc:
            raise ValueError(f"bad rule SQL: {exc}") from exc


@dataclass
class _Armed:
    """Firing state for one (rule, host)."""

    last_fired: float = float("-inf")
    firing: bool = False


class AlertMonitor:
    """Polls alert rules and feeds violations into the EventManager."""

    def __init__(self, gateway: "Gateway") -> None:
        self.gateway = gateway
        self._rules: dict[str, AlertRule] = {}
        self._timers: dict[str, Any] = {}
        self._state: dict[tuple[str, str], _Armed] = {}
        self._ids = itertools.count(1)
        self.stats = {"polls": 0, "violations": 0, "events_emitted": 0, "suppressed": 0}

    # ------------------------------------------------------------------
    def add_rule(self, rule: AlertRule) -> None:
        """Install a rule; polling starts about one period from now.

        Rules are staggered by a small per-rule offset so that two rules
        with the same period never poll at the same instant — co-firing
        pollers would each miss the shared query cache (the second poll
        starts while the first is still waiting on the network) and
        double the agent intrusion for nothing.
        """
        if rule.name in self._rules:
            raise ValueError(f"duplicate alert rule {rule.name!r}")
        # Compile-time GLUE validation: a rule naming an unknown group or
        # attribute would poll forever and never match — reject it at
        # install time, exactly like the RequestManager rejects ad-hoc
        # queries, instead of burning a poll period per mistake.
        findings = validate_sql(
            rule.sql,
            self.gateway.schema_manager.schema,
            path=f"<alert:{rule.name}>",
        )
        if findings:
            raise QueryValidationError(
                f"alert rule {rule.name!r} SQL is invalid: "
                + "; ".join(f.message for f in findings),
                findings=findings,
            )
        stagger = 0.25 * len(self._rules)
        self._rules[rule.name] = rule
        self._timers[rule.name] = self.gateway.network.clock.call_every(
            rule.period, lambda r=rule: self.poll_rule(r),
            first_in=rule.period + stagger,
        )

    def remove_rule(self, name: str) -> bool:
        rule = self._rules.pop(name, None)
        if rule is None:
            return False
        timer = self._timers.pop(name, None)
        if timer is not None:
            timer.cancel()
        for key in [k for k in self._state if k[0] == name]:
            del self._state[key]
        return True

    def rules(self) -> list[AlertRule]:
        return [self._rules[k] for k in sorted(self._rules)]

    # ------------------------------------------------------------------
    def poll_rule(self, rule: AlertRule) -> int:
        """Execute one poll of ``rule``; returns events emitted."""
        self.stats["polls"] += 1
        gw = self.gateway
        mode = QueryMode.CACHED_OK if rule.use_cache else QueryMode.REALTIME
        result = gw.query(rule.urls, rule.sql, mode=mode, max_age=rule.period)
        now = gw.network.clock.now()
        emitted = 0
        hosts_in_violation = set()
        for row in result.dicts():
            host = str(row.get("HostName") or "?")
            hosts_in_violation.add(host)
            self.stats["violations"] += 1
            state = self._state.setdefault((rule.name, host), _Armed())
            if state.firing and rule.rearm_after > 0:
                self.stats["suppressed"] += 1
                state.last_fired = now
                continue
            state.firing = True
            state.last_fired = now
            event = Event(
                source_host=host,
                name=f"alert.{rule.name}",
                severity=rule.severity,
                time=now,
                fields={k: v for k, v in row.items() if v is not None},
                native_kind="gateway-alert",
            )
            gw.events.emit(event)
            emitted += 1
            self.stats["events_emitted"] += 1
        # Re-arm hosts whose condition has been clear long enough.
        for (name, host), state in self._state.items():
            if name != rule.name or not state.firing:
                continue
            if host in hosts_in_violation:
                continue
            if now - state.last_fired >= rule.rearm_after:
                state.firing = False
        return emitted

    def firing(self) -> list[tuple[str, str]]:
        """(rule, host) pairs currently in the firing state."""
        return sorted(k for k, s in self._state.items() if s.firing)
