"""Session management (paper Figure 2: "Session Management").

Clients authenticate once against the gateway and receive a token; every
subsequent ACIL call carries it.  Sessions expire after a policy-defined
idle TTL measured on the virtual clock.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from repro.core.errors import SessionError
from repro.core.security import Principal
from repro.simnet.clock import VirtualClock


@dataclass
class Session:
    """One authenticated client session."""

    token: str
    principal: Principal
    created: float
    last_used: float

    def touch(self, now: float) -> None:
        self.last_used = now


class SessionManager:
    """Creates, validates and expires sessions."""

    def __init__(self, clock: VirtualClock, *, ttl: float = 3600.0) -> None:
        if ttl <= 0:
            raise ValueError(f"session ttl must be > 0: {ttl!r}")
        self.clock = clock
        self.ttl = ttl
        self._sessions: dict[str, Session] = {}
        self._counter = itertools.count(1)

    def open(self, principal: Principal) -> Session:
        """Open a session for an already-authenticated principal."""
        now = self.clock.now()
        token = f"s{next(self._counter):08d}-{principal.name}"
        session = Session(
            token=token, principal=principal, created=now, last_used=now
        )
        self._sessions[token] = session
        return session

    def validate(self, token: str) -> Session:
        """Return the live session for ``token``; touch its idle timer."""
        session = self._sessions.get(token)
        if session is None:
            raise SessionError(f"no such session: {token!r}")
        now = self.clock.now()
        if now - session.last_used > self.ttl:
            del self._sessions[token]
            raise SessionError(f"session expired: {token!r}")
        session.touch(now)
        return session

    def close(self, token: str) -> bool:
        return self._sessions.pop(token, None) is not None

    def sweep(self) -> int:
        """Drop all expired sessions; returns how many were removed."""
        now = self.clock.now()
        dead = [
            t for t, s in self._sessions.items() if now - s.last_used > self.ttl
        ]
        for t in dead:
            del self._sessions[t]
        return len(dead)

    def active_count(self) -> int:
        return len(self._sessions)
