"""Virtual clock.

All timing in the reproduction flows through :class:`VirtualClock` so that
experiments are deterministic and can compress hours of monitoring into
milliseconds of wall time.  The clock is a plain monotone float of seconds
plus an ordered schedule of callbacks (used for periodic agent metric
updates, cache expiry sweeps and event redelivery).

Concurrency is modelled with :class:`ConcurrentScope` (see
:meth:`VirtualClock.concurrent`): every branch of a scope starts at the
same virtual instant on its own private timeline, and joining the scope
advances the shared clock by the *maximum* branch elapsed time — the
semantics of work done in parallel.  The scheduler stack (fan-out
queries, scatter-gather, deferred RPC futures) is built on this.
"""

from __future__ import annotations

import heapq
import itertools
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Iterator, Optional


@dataclass(order=True)
class ScheduledCall:
    """A callback registered to fire at a virtual time.

    Instances are ordered by ``(when, seq)`` so the schedule is a stable
    priority queue: two calls scheduled for the same instant fire in
    registration order.
    """

    when: float
    seq: int
    callback: Callable[[], None] = field(compare=False)
    period: Optional[float] = field(default=None, compare=False)
    cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        """Prevent this call (and, if periodic, all future firings)."""
        self.cancelled = True


class VirtualClock:
    """A deterministic, manually advanced clock.

    >>> clock = VirtualClock()
    >>> clock.now()
    0.0
    >>> clock.advance(2.5)
    >>> clock.now()
    2.5

    Scheduled callbacks fire during :meth:`advance` in timestamp order,
    with the clock set to each callback's due time while it runs — i.e.
    the same semantics as an event-driven simulator main loop.
    """

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)
        self._schedule: list[ScheduledCall] = []
        self._seq = itertools.count()
        # Depth of active ConcurrentScope branches: while positive, time
        # moves on a branch-private timeline and scheduled callbacks stay
        # queued (they fire exactly once, when the outermost scope joins).
        self._branch_depth = 0
        # Lane stack: one (scope_id, branch_index) frame per active
        # nested branch.  The tuple snapshot (``lane``) names the branch
        # currently executing; the race detector's happens-before
        # relation is defined over these vectors (see
        # repro.analysis.races).  Empty tuple = sequential context.
        self._scope_seq = itertools.count(1)
        self._lane: list[tuple[int, int]] = []

    @property
    def lane(self) -> tuple[tuple[int, int], ...]:
        """The executing branch's lane vector (empty when sequential).

        Each frame is ``(scope_id, branch_index)`` for one level of
        :class:`ConcurrentScope` nesting, outermost first.  Two lane
        vectors are *unordered* (virtually simultaneous) iff at the
        first frame where they differ the scope ids are equal but the
        branch indices are not — sibling branches of one scope.
        """
        return tuple(self._lane)

    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    def advance(self, dt: float) -> None:
        """Move time forward by ``dt`` seconds, firing due callbacks."""
        if dt < 0:
            raise ValueError(f"cannot advance clock by negative dt={dt!r}")
        self.advance_to(self._now + dt)

    def advance_to(self, t: float) -> None:
        """Move time forward to absolute time ``t``, firing due callbacks."""
        if t < self._now:
            raise ValueError(
                f"cannot move clock backwards: now={self._now!r}, target={t!r}"
            )
        if self._branch_depth:
            # Inside a concurrent branch: time passes on the branch's
            # private timeline only.  Scheduled callbacks are deferred to
            # the scope join so they fire exactly once, not once per
            # branch that happens to sweep past their due time.
            self._now = t
            return
        target = t
        while self._schedule and self._schedule[0].when <= target:
            call = heapq.heappop(self._schedule)
            if call.cancelled:
                continue
            # Fire with the clock at the callback's due instant.
            self._now = max(self._now, call.when)
            call.callback()
            # The callback may itself have advanced the clock (nested
            # blocking RPC work): never move backwards past it.
            target = max(target, self._now)
            if call.period is not None and not call.cancelled:
                call.when = call.when + call.period
                heapq.heappush(self._schedule, call)
        self._now = max(self._now, target)

    def call_at(self, when: float, callback: Callable[[], None]) -> ScheduledCall:
        """Schedule ``callback`` to run at absolute virtual time ``when``."""
        if when < self._now:
            raise ValueError(f"cannot schedule in the past: {when!r} < {self._now!r}")
        call = ScheduledCall(when=when, seq=next(self._seq), callback=callback)
        heapq.heappush(self._schedule, call)
        return call

    def call_later(self, delay: float, callback: Callable[[], None]) -> ScheduledCall:
        """Schedule ``callback`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError(f"negative delay: {delay!r}")
        return self.call_at(self._now + delay, callback)

    def call_every(
        self, period: float, callback: Callable[[], None], *, first_in: float | None = None
    ) -> ScheduledCall:
        """Schedule ``callback`` to run every ``period`` seconds.

        ``first_in`` controls the delay before the first firing (defaults
        to one full period).  Cancel via the returned handle.
        """
        if period <= 0:
            raise ValueError(f"period must be positive: {period!r}")
        delay = period if first_in is None else first_in
        call = ScheduledCall(
            when=self._now + delay,
            seq=next(self._seq),
            callback=callback,
            period=period,
        )
        heapq.heappush(self._schedule, call)
        return call

    def pending(self) -> int:
        """Number of live (non-cancelled) scheduled calls."""
        return sum(1 for c in self._schedule if not c.cancelled)

    def next_due(self) -> Optional[float]:
        """The due time of the earliest live scheduled call, or None.

        Used by event pumps (e.g. :meth:`Network.gather`) to advance the
        simulation one event at a time without overshooting.
        """
        while self._schedule and self._schedule[0].cancelled:
            heapq.heappop(self._schedule)
        return self._schedule[0].when if self._schedule else None

    # ------------------------------------------------------------------
    # Concurrency (virtual-time parallelism)
    # ------------------------------------------------------------------
    @property
    def in_concurrent_branch(self) -> bool:
        """True while executing inside a :class:`ConcurrentScope` branch."""
        return self._branch_depth > 0

    def concurrent(self) -> "ConcurrentScope":
        """A scope whose branches run "simultaneously" in virtual time.

        >>> clock = VirtualClock()
        >>> with clock.concurrent() as scope:
        ...     with scope.branch():
        ...         clock.advance(3.0)   # branch A takes 3s
        ...     with scope.branch():
        ...         clock.advance(5.0)   # branch B takes 5s
        >>> clock.now()                  # joined: max, not sum
        5.0
        """
        return ConcurrentScope(self)


class ConcurrentScope:
    """Models simultaneous branches of work on one :class:`VirtualClock`.

    Branch bodies execute sequentially (the simulator is single-threaded)
    but each starts at the scope's opening instant on a private timeline;
    joining the scope advances the real clock by the *maximum* branch
    elapsed time, so N parallel round-trips cost ``max`` rather than
    ``sum`` of their delays.  Scopes nest: a branch may open its own
    scope, in which case the inner join is deferred along with everything
    else until the outermost scope joins.  Callbacks scheduled during any
    branch (datagram deliveries, periodic agent updates) stay queued and
    fire exactly once, at the join.
    """

    def __init__(self, clock: VirtualClock) -> None:
        self._clock = clock
        self.started_at = clock.now()
        self._ends: list[float] = []
        self._joined = False
        self.scope_id = next(clock._scope_seq)
        self._branch_seq = itertools.count()

    @contextmanager
    def branch(self) -> Iterator[None]:
        """Run the ``with`` body as one concurrent branch of this scope.

        Each branch gets a ``(scope_id, branch_index)`` lane frame pushed
        onto the clock's lane stack for its duration; the race detector
        uses the resulting lane vectors to decide which state accesses
        were virtually simultaneous.
        """
        if self._joined:
            raise RuntimeError("ConcurrentScope already joined")
        clock = self._clock
        clock._branch_depth += 1
        clock._now = self.started_at
        clock._lane.append((self.scope_id, next(self._branch_seq)))
        try:
            yield
        finally:
            clock._lane.pop()
            self._ends.append(clock._now)
            clock._branch_depth -= 1
            clock._now = self.started_at

    @property
    def elapsed(self) -> float:
        """Longest branch duration recorded so far."""
        return max(self._ends, default=self.started_at) - self.started_at

    def join(self) -> None:
        """Advance the clock past the slowest branch (idempotent).

        Fires any callbacks that became due during the branches — unless
        this scope is itself nested inside another scope's branch, in
        which case firing is deferred to the outermost join.
        """
        if self._joined:
            return
        self._joined = True
        self._clock.advance_to(max(self._ends, default=self.started_at))

    def __enter__(self) -> "ConcurrentScope":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.join()
