"""Virtual clock.

All timing in the reproduction flows through :class:`VirtualClock` so that
experiments are deterministic and can compress hours of monitoring into
milliseconds of wall time.  The clock is a plain monotone float of seconds
plus an ordered schedule of callbacks (used for periodic agent metric
updates, cache expiry sweeps and event redelivery).
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, Optional


@dataclass(order=True)
class ScheduledCall:
    """A callback registered to fire at a virtual time.

    Instances are ordered by ``(when, seq)`` so the schedule is a stable
    priority queue: two calls scheduled for the same instant fire in
    registration order.
    """

    when: float
    seq: int
    callback: Callable[[], None] = field(compare=False)
    period: Optional[float] = field(default=None, compare=False)
    cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        """Prevent this call (and, if periodic, all future firings)."""
        self.cancelled = True


class VirtualClock:
    """A deterministic, manually advanced clock.

    >>> clock = VirtualClock()
    >>> clock.now()
    0.0
    >>> clock.advance(2.5)
    >>> clock.now()
    2.5

    Scheduled callbacks fire during :meth:`advance` in timestamp order,
    with the clock set to each callback's due time while it runs — i.e.
    the same semantics as an event-driven simulator main loop.
    """

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)
        self._schedule: list[ScheduledCall] = []
        self._seq = itertools.count()

    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    def advance(self, dt: float) -> None:
        """Move time forward by ``dt`` seconds, firing due callbacks."""
        if dt < 0:
            raise ValueError(f"cannot advance clock by negative dt={dt!r}")
        self.advance_to(self._now + dt)

    def advance_to(self, t: float) -> None:
        """Move time forward to absolute time ``t``, firing due callbacks."""
        if t < self._now:
            raise ValueError(
                f"cannot move clock backwards: now={self._now!r}, target={t!r}"
            )
        while self._schedule and self._schedule[0].when <= t:
            call = heapq.heappop(self._schedule)
            if call.cancelled:
                continue
            # Fire with the clock at the callback's due instant.
            self._now = max(self._now, call.when)
            call.callback()
            if call.period is not None and not call.cancelled:
                call.when = call.when + call.period
                heapq.heappush(self._schedule, call)
        self._now = t

    def call_at(self, when: float, callback: Callable[[], None]) -> ScheduledCall:
        """Schedule ``callback`` to run at absolute virtual time ``when``."""
        if when < self._now:
            raise ValueError(f"cannot schedule in the past: {when!r} < {self._now!r}")
        call = ScheduledCall(when=when, seq=next(self._seq), callback=callback)
        heapq.heappush(self._schedule, call)
        return call

    def call_later(self, delay: float, callback: Callable[[], None]) -> ScheduledCall:
        """Schedule ``callback`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError(f"negative delay: {delay!r}")
        return self.call_at(self._now + delay, callback)

    def call_every(
        self, period: float, callback: Callable[[], None], *, first_in: float | None = None
    ) -> ScheduledCall:
        """Schedule ``callback`` to run every ``period`` seconds.

        ``first_in`` controls the delay before the first firing (defaults
        to one full period).  Cancel via the returned handle.
        """
        if period <= 0:
            raise ValueError(f"period must be positive: {period!r}")
        delay = period if first_in is None else first_in
        call = ScheduledCall(
            when=self._now + delay,
            seq=next(self._seq),
            callback=callback,
            period=period,
        )
        heapq.heappush(self._schedule, call)
        return call

    def pending(self) -> int:
        """Number of live (non-cancelled) scheduled calls."""
        return sum(1 for c in self._schedule if not c.cancelled)
