"""Seeded, schedulable chaos plane for the simulated network.

The paper's failover experiment (E10) only flips hosts between up and
down.  Real Grid monitoring fails in far messier ways: agents that answer
but slowly, NICs that drop every third connection, WAN links that flap,
partitions that heal themselves, payloads that arrive corrupted.  The
:class:`FaultPlane` injects all of these *deterministically*: every fault
is either scheduled on the virtual clock (slowdowns, flaps, partitions)
or drawn per-request from the plane's own seeded RNG (latency spikes,
flaky ports, corruption), so a chaos run replays byte-for-byte under the
same seed.

The plane attaches to a :class:`~repro.simnet.network.Network` via
``network.install_fault_plane`` (done by the constructor) and is consulted
by ``Network.request``/``request_async`` on every RPC:

* :meth:`request_overhead` — extra service time (heavy-tail latency
  spikes), charged against the caller's timeout;
* :meth:`refuses` — probabilistic connection refusal on a flaky port;
* :meth:`corrupts` — probabilistic checksum failure on the response.

Scheduled faults (``slow_host``, ``flap_host``, ``partition_between``)
mutate the network's existing knobs (``set_slowdown``, ``set_host_up``,
``partition``/``heal``) at their window edges, so everything downstream —
breakers, deadlines, hedging — sees them through the normal failure
surface.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

if TYPE_CHECKING:  # pragma: no cover
    from repro.simnet.network import Network
    from repro.storage.simdisk import SimDisk


@dataclass
class FaultWindow:
    """One probabilistic per-request fault active over a time window."""

    kind: str  # "spike" | "flaky_port" | "corrupt"
    host: str
    start: float
    end: float  # math.inf for open-ended
    prob: float = 1.0
    extra: float = 0.0  # spike: added service seconds
    port: int | None = None  # flaky_port: None matches every port

    def active(self, now: float) -> bool:
        return self.start <= now < self.end

    def describe(self) -> str:
        end = "∞" if math.isinf(self.end) else f"{self.end:g}s"
        detail = {
            "spike": f"+{self.extra:g}s p={self.prob:g}",
            "flaky_port": f"port={'*' if self.port is None else self.port} p={self.prob:g}",
            "corrupt": f"p={self.prob:g}",
        }[self.kind]
        return f"{self.kind} {self.host} [{self.start:g}s..{end}) {detail}"


@dataclass
class FaultPlaneStats:
    spikes_injected: int = 0
    spike_seconds: float = 0.0
    refusals: int = 0
    corruptions: int = 0
    flaps: int = 0
    slowdowns: int = 0
    partitions: int = 0
    heals: int = 0
    disk_crashes: int = 0
    torn_writes: int = 0
    bit_flips: int = 0

    def as_dict(self) -> dict[str, float]:
        return {
            "spikes_injected": self.spikes_injected,
            "spike_seconds": round(self.spike_seconds, 6),
            "refusals": self.refusals,
            "corruptions": self.corruptions,
            "flaps": self.flaps,
            "slowdowns": self.slowdowns,
            "partitions": self.partitions,
            "heals": self.heals,
            "disk_crashes": self.disk_crashes,
            "torn_writes": self.torn_writes,
            "bit_flips": self.bit_flips,
        }


class FaultPlane:
    """Deterministic fault injection driven by the virtual clock.

    >>> plane = FaultPlane(network, seed=42)
    >>> plane.latency_spikes("agent-3", prob=0.1, extra=2.0)
    >>> plane.flap_host("agent-1", down_at=30.0, down_for=10.0, times=3)
    >>> plane.partition_between({"gw-a"}, {"gw-b"}, start=60.0, duration=15.0)

    All ``start`` arguments are seconds from *now* (scheduling in relative
    time keeps scenario definitions independent of warm-up length).
    """

    def __init__(self, network: "Network", *, seed: int = 0) -> None:
        self.network = network
        self.clock = network.clock
        self.seed = seed
        self._rng = random.Random(seed)
        self._windows: list[FaultWindow] = []
        self._schedule_log: list[str] = []
        self.stats = FaultPlaneStats()
        network.install_fault_plane(self)

    # ------------------------------------------------------------------
    # Per-request consultation (called by Network)
    # ------------------------------------------------------------------
    def request_overhead(self, host: str) -> float:
        """Extra service seconds injected into one request to ``host``."""
        now = self.clock.now()
        extra = 0.0
        for w in self._windows:
            if w.kind == "spike" and w.host == host and w.active(now):
                if self._rng.random() < w.prob:
                    extra += w.extra
                    self.stats.spikes_injected += 1
                    self.stats.spike_seconds += w.extra
        return extra

    def refuses(self, host: str, port: int) -> bool:
        """Does a flaky port drop this connection attempt?"""
        now = self.clock.now()
        for w in self._windows:
            if (
                w.kind == "flaky_port"
                and w.host == host
                and (w.port is None or w.port == port)
                and w.active(now)
            ):
                if self._rng.random() < w.prob:
                    self.stats.refusals += 1
                    return True
        return False

    def corrupts(self, host: str) -> bool:
        """Does the response from ``host`` fail its checksum?"""
        now = self.clock.now()
        for w in self._windows:
            if w.kind == "corrupt" and w.host == host and w.active(now):
                if self._rng.random() < w.prob:
                    self.stats.corruptions += 1
                    return True
        return False

    # ------------------------------------------------------------------
    # Schedulable faults
    # ------------------------------------------------------------------
    def latency_spikes(
        self,
        host: str,
        *,
        prob: float,
        extra: float,
        start: float = 0.0,
        duration: float | None = None,
    ) -> FaultWindow:
        """Heavy-tail latency: each request has ``prob`` chance of ``extra``s.

        This is the fault hedged requests exist to beat: a re-issued
        request to the *same* host re-draws and usually dodges the spike.
        """
        return self._add_window("spike", host, prob=prob, extra=extra, start=start, duration=duration)

    def flaky_port(
        self,
        host: str,
        port: int | None = None,
        *,
        prob: float,
        start: float = 0.0,
        duration: float | None = None,
    ) -> FaultWindow:
        """Connection attempts to ``host``:``port`` fail with ``prob``."""
        return self._add_window("flaky_port", host, prob=prob, port=port, start=start, duration=duration)

    def corrupt_payloads(
        self,
        host: str,
        *,
        prob: float,
        start: float = 0.0,
        duration: float | None = None,
    ) -> FaultWindow:
        """Responses from ``host`` fail their checksum with ``prob``."""
        return self._add_window("corrupt", host, prob=prob, start=start, duration=duration)

    def slow_host(
        self,
        host: str,
        *,
        factor: float = 1.0,
        service_time: float = 0.0,
        start: float = 0.0,
        duration: float | None = None,
    ) -> None:
        """Degrade ``host`` for a window: link slowdown and/or service time.

        Restores nominal values (factor 1.0, service 0.0) when the window
        closes; open-ended if ``duration`` is None.
        """
        net = self.network

        def apply() -> None:
            self.stats.slowdowns += 1
            net.set_slowdown(host, factor)
            net.set_service_time(host, service_time)

        def restore() -> None:
            net.set_slowdown(host, 1.0)
            net.set_service_time(host, 0.0)

        self._at(start, apply)
        if duration is not None:
            self._at(start + duration, restore)
        self._schedule_log.append(
            f"slow_host {host} x{factor:g} +{service_time:g}s "
            f"[{start:g}s..{'∞' if duration is None else f'{start + duration:g}s'})"
        )

    def flap_host(
        self,
        host: str,
        *,
        down_at: float,
        down_for: float,
        times: int = 1,
        period: float | None = None,
    ) -> None:
        """Crash ``host`` at ``down_at`` for ``down_for`` seconds, repeating.

        ``times`` flaps spaced ``period`` apart (default: back-to-back,
        one period = down_for * 2).
        """
        if times < 1:
            raise ValueError(f"times must be >= 1: {times!r}")
        gap = period if period is not None else down_for * 2
        net = self.network

        def down() -> None:
            self.stats.flaps += 1
            net.set_host_up(host, False)

        def up() -> None:
            net.set_host_up(host, True)

        for k in range(times):
            self._at(down_at + k * gap, down)
            self._at(down_at + k * gap + down_for, up)
        self._schedule_log.append(
            f"flap_host {host} at {down_at:g}s down {down_for:g}s x{times}"
        )

    def partition_between(
        self,
        *groups: set[str],
        start: float = 0.0,
        duration: float,
    ) -> None:
        """Split the network into ``groups`` for ``duration``, then heal.

        The auto-heal replaces whatever partition is active at that
        instant, so overlapping schedules last-write-win like real
        routing flaps do.
        """
        net = self.network
        frozen = [set(g) for g in groups]

        def split() -> None:
            self.stats.partitions += 1
            net.partition(*frozen)

        def heal() -> None:
            self.stats.heals += 1
            net.heal()

        self._at(start, split)
        self._at(start + duration, heal)
        self._schedule_log.append(
            f"partition {'|'.join(','.join(sorted(g)) for g in frozen)} "
            f"[{start:g}s..{start + duration:g}s)"
        )

    # ------------------------------------------------------------------
    # Storage faults (durable-history chaos)
    # ------------------------------------------------------------------
    def crash_disk(
        self, disk: "SimDisk", *, at: float = 0.0, torn: bool = True
    ) -> None:
        """Power-fail ``disk`` ``at`` seconds from now.

        Every un-fsynced write is lost; with ``torn`` (the default) the
        plane's seeded RNG may leave a strictly partial fragment of the
        first in-flight append per file — the torn-write case recovery's
        CRC framing exists to catch.  Scheduled crashes fire at clock-
        callback granularity: they land between callbacks, never midway
        through one (a checkpoint runs to completion or not at all).
        """

        def crash() -> None:
            outcome = disk.crash(self._rng if torn else None)
            self.stats.disk_crashes += 1
            if outcome["torn_bytes"]:
                self.stats.torn_writes += 1

        self._at(at, crash)
        self._schedule_log.append(
            f"crash_disk at {at:g}s torn={'yes' if torn else 'no'}"
        )

    def flip_segment_bit(
        self, disk: "SimDisk", *, at: float = 0.0, path: str | None = None
    ) -> None:
        """Flip one durable bit of a sealed segment (bit rot).

        ``path`` picks the victim file; when None the plane's RNG picks
        uniformly among the disk's ``seg/`` files at fire time (a no-op
        if none exist yet).  Recovery must quarantine the damaged
        segment and keep serving, never crash.
        """

        def flip() -> None:
            target = path
            if target is None:
                candidates = disk.list("seg/")
                if not candidates:
                    return
                target = candidates[self._rng.randrange(len(candidates))]
            if disk.exists(target) and disk.size(target):
                disk.flip_bit(target, rng=self._rng)
                self.stats.bit_flips += 1

        self._at(at, flip)
        self._schedule_log.append(
            f"flip_segment_bit at {at:g}s path={path or '(random)'}"
        )

    # ------------------------------------------------------------------
    def active_faults(self) -> list[str]:
        """Human-readable lines for every currently-active fault window."""
        now = self.clock.now()
        lines = [w.describe() for w in self._windows if w.active(now)]
        slow = [
            f"slow {name} x{self.network.slowdown(name):g} "
            f"+{self.network.service_time(name):g}s"
            for name in self.network.hosts()
            if self.network.slowdown(name) != 1.0 or self.network.service_time(name) > 0.0
        ]
        return lines + slow

    def schedule_log(self) -> list[str]:
        """Every scheduled (clock-driven) fault, in registration order."""
        return list(self._schedule_log)

    # ------------------------------------------------------------------
    def _add_window(
        self,
        kind: str,
        host: str,
        *,
        prob: float,
        extra: float = 0.0,
        port: int | None = None,
        start: float = 0.0,
        duration: float | None = None,
    ) -> FaultWindow:
        if not 0.0 <= prob <= 1.0:
            raise ValueError(f"prob must be in [0, 1]: {prob!r}")
        if extra < 0.0:
            raise ValueError(f"extra must be >= 0: {extra!r}")
        if start < 0.0:
            raise ValueError(f"start must be >= 0: {start!r}")
        if duration is not None and duration <= 0.0:
            raise ValueError(f"duration must be > 0: {duration!r}")
        now = self.clock.now()
        window = FaultWindow(
            kind=kind,
            host=host,
            start=now + start,
            end=math.inf if duration is None else now + start + duration,
            prob=prob,
            extra=extra,
            port=port,
        )
        self._windows.append(window)
        return window

    def _at(self, delay: float, callback: Callable[[], None]) -> None:
        """Run ``callback`` ``delay`` seconds from now (immediately at 0)."""
        if delay < 0.0:
            raise ValueError(f"start must be >= 0: {delay!r}")
        if delay == 0.0:
            callback()
        else:
            self.clock.call_later(delay, callback)
