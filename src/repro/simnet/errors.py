"""Error hierarchy for the simulated network."""

from __future__ import annotations


class NetworkError(Exception):
    """Base class for all simulated-network failures."""


class HostUnreachableError(NetworkError):
    """The destination host is down or partitioned away from the source."""


class PortClosedError(NetworkError):
    """The destination host is up but nothing listens on the port."""


class TimeoutError_(NetworkError):
    """The request exceeded its deadline (lossy link or slow handler).

    Named with a trailing underscore to avoid shadowing the builtin
    ``TimeoutError`` while remaining greppable.
    """


class PayloadCorruptedError(NetworkError):
    """The response arrived but failed its transport checksum.

    Injected by the fault plane; surfaces at the instant the corrupted
    response lands, like a TCP/TLS integrity failure would.
    """
