"""Link quality models for the simulated network.

A :class:`LinkModel` turns a (source host, destination host, payload size)
triple into a one-way delay, and decides whether a given datagram is lost.
All randomness is drawn from a ``random.Random`` owned by the model so a
seeded :class:`~repro.simnet.network.Network` is fully deterministic.
"""

from __future__ import annotations

import random
from dataclasses import dataclass


@dataclass
class LinkModel:
    """Latency/jitter/loss parameters for one class of link.

    Attributes:
        base_latency: fixed one-way delay in seconds.
        jitter: maximum extra uniform random delay in seconds.
        loss: probability in [0, 1) that a datagram is dropped.
        bandwidth: bytes/second used to charge serialisation delay for
            large payloads (0 disables the term).  Coarse-grained agents
            such as Ganglia return multi-kilobyte XML dumps, so payload
            size matters for experiment E3.
    """

    base_latency: float = 0.001
    jitter: float = 0.0
    loss: float = 0.0
    bandwidth: float = 0.0

    def __post_init__(self) -> None:
        if self.base_latency < 0:
            raise ValueError(f"negative base_latency: {self.base_latency!r}")
        if self.jitter < 0:
            raise ValueError(f"negative jitter: {self.jitter!r}")
        if not 0.0 <= self.loss < 1.0:
            raise ValueError(f"loss must be in [0, 1): {self.loss!r}")
        if self.bandwidth < 0:
            raise ValueError(f"negative bandwidth: {self.bandwidth!r}")

    def delay(self, payload_size: int, rng: random.Random) -> float:
        """One-way delay in seconds for a payload of ``payload_size`` bytes."""
        d = self.base_latency
        if self.jitter:
            d += rng.uniform(0.0, self.jitter)
        if self.bandwidth:
            d += payload_size / self.bandwidth
        return d

    def dropped(self, rng: random.Random) -> bool:
        """Whether a datagram on this link is lost."""
        return self.loss > 0.0 and rng.random() < self.loss


#: Link preset for hosts inside one Grid site (same LAN as the gateway).
LAN = LinkModel(base_latency=0.0002, jitter=0.0001, loss=0.0, bandwidth=100e6 / 8)

#: Link preset between Grid sites (the paper's Global layer spans the WAN).
WAN = LinkModel(base_latency=0.040, jitter=0.010, loss=0.0, bandwidth=10e6 / 8)
