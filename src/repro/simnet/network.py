"""In-process simulated network.

:meth:`Network.request` performs a blocking RPC (advancing the virtual
clock by the modelled round-trip delay), and :meth:`Network.send`
delivers a one-way datagram (used for SNMP traps and GridRM event
propagation) via the clock's schedule.

:meth:`Network.request_async` is the deferred counterpart of ``request``:
it returns a :class:`NetFuture` completed through the virtual clock's
schedule — the request travels, is handled at its arrival instant, and
the response lands without the caller blocking, so N outstanding RPCs
cost the *max* of their round-trip times once :meth:`Network.gather`
drives them to completion.

Hosts belong to *sites*; traffic within a site uses the LAN link model and
traffic between sites uses the WAN model, matching the paper's two-layer
deployment (Figure 1).  Fault injection — dead hosts, partitions, extra
loss — drives the failover experiments (E10).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Optional

from repro.obs.metrics import MetricsRegistry
from repro.simnet.clock import VirtualClock
from repro.simnet.errors import (
    HostUnreachableError,
    PayloadCorruptedError,
    PortClosedError,
    TimeoutError_,
)
from repro.simnet.link import LAN, WAN, LinkModel

if TYPE_CHECKING:  # pragma: no cover
    from repro.simnet.faults import FaultPlane

#: RPC handler: (payload, source address) -> response payload.
RequestHandler = Callable[[Any, "Address"], Any]
#: One-way datagram handler: (payload, source address) -> None.
DatagramHandler = Callable[[Any, "Address"], None]


@dataclass(frozen=True, order=True)
class Address:
    """A (host, port) pair on the simulated network."""

    host: str
    port: int

    def __str__(self) -> str:  # pragma: no cover - trivial
        return f"{self.host}:{self.port}"


@dataclass
class Endpoint:
    """A listening socket: an address bound to a request handler."""

    address: Address
    handler: RequestHandler
    datagram_handler: Optional[DatagramHandler] = None


@dataclass
class _Host:
    name: str
    site: str
    up: bool = True
    extra_loss: float = 0.0
    #: Fixed queueing/processing delay the host adds to every request it
    #: serves (a live-but-overloaded agent), charged against the caller's
    #: timeout like any other wire delay.
    service_time: float = 0.0
    #: Multiplier on link delays and service time for traffic to this
    #: host (1.0 = nominal; a degraded NIC or saturated uplink).
    slowdown: float = 1.0
    ports: dict[int, Endpoint] = field(default_factory=dict)


class NetworkStats:
    """Aggregate traffic counters (reset-able; consumed by benchmarks).

    The counters live in a :class:`~repro.obs.metrics.MetricsRegistry`
    under ``net.<name>``, so a gateway's self-monitoring driver can
    serve them; attribute reads and writes keep the historical
    dataclass interface (``net.stats.requests``, ``stats.reset()``).
    """

    FIELDS = ("requests", "datagrams", "drops", "bytes_sent")

    def __init__(self, registry: "MetricsRegistry | None" = None) -> None:
        if registry is None:
            registry = MetricsRegistry()
        object.__setattr__(self, "_registry", registry)
        for name in self.FIELDS:
            registry.counter(f"net.{name}")

    def __getattr__(self, name: str):
        if name in type(self).FIELDS:
            return self._registry.counter(f"net.{name}").value
        raise AttributeError(name)

    def __setattr__(self, name: str, value) -> None:
        if name in type(self).FIELDS:
            counter = self._registry.counter(f"net.{name}")
            delta = value - counter.value
            if delta < 0:  # rewind: allowed only through an explicit reset
                counter.reset()
                counter.add(value)
            else:
                counter.add(delta)
            return
        object.__setattr__(self, name, value)

    def as_dict(self) -> dict:
        return {name: getattr(self, name) for name in self.FIELDS}

    def reset(self) -> None:
        for name in self.FIELDS:
            self._registry.counter(f"net.{name}").reset()

    def __repr__(self) -> str:
        return f"NetworkStats({self.as_dict()!r})"


def _repr_len(payload: Any, depth: int = 0) -> int:
    """``len(repr(payload))`` computed structurally.

    Exactly equal to ``len(repr(payload))`` for plain list/tuple/dict
    containers (a property test enforces this), but without materialising
    the repr string — charging bandwidth delay for a large batched result
    costs a walk, not an O(size) string build.  Subclassed containers and
    pathological nesting depth fall back to the real repr.
    """
    if depth > 8:
        return len(repr(payload))
    t = type(payload)
    if t is list:
        n = len(payload)
        if n == 0:
            return 2  # "[]"
        # "[" + items + ", " between items + "]"
        return 2 + sum(_repr_len(i, depth + 1) for i in payload) + 2 * (n - 1)
    if t is tuple:
        n = len(payload)
        if n == 0:
            return 2  # "()"
        if n == 1:
            return _repr_len(payload[0], depth + 1) + 3  # "(x,)"
        return 2 + sum(_repr_len(i, depth + 1) for i in payload) + 2 * (n - 1)
    if t is dict:
        n = len(payload)
        if n == 0:
            return 2  # "{}"
        return (
            2
            + sum(
                _repr_len(k, depth + 1) + 2 + _repr_len(v, depth + 1)
                for k, v in payload.items()
            )
            + 2 * (n - 1)
        )
    return len(repr(payload))


def _payload_size(payload: Any) -> int:
    """Rough wire size of a payload, for bandwidth-delay charging."""
    if isinstance(payload, (bytes, bytearray)):
        return len(payload)
    if isinstance(payload, str):
        return len(payload.encode("utf-8", errors="replace"))
    return _repr_len(payload)


class NetFuture:
    """The deferred result of one :meth:`Network.request_async` RPC.

    Completed via the virtual clock's schedule; drive the clock (directly
    or with :meth:`Network.gather`) to resolve it.  ``completed_at`` holds
    the virtual time at which the response (or failure) landed.
    """

    __slots__ = ("_done", "_value", "_exception", "_callbacks", "completed_at")

    def __init__(self) -> None:
        self._done = False
        self._value: Any = None
        self._exception: Exception | None = None
        self._callbacks: list[Callable[["NetFuture"], None]] = []
        self.completed_at: float | None = None

    def done(self) -> bool:
        return self._done

    def result(self) -> Any:
        """The response payload; raises the RPC's failure if it failed."""
        if not self._done:
            raise RuntimeError(
                "NetFuture not completed yet — advance the clock or use "
                "Network.gather()"
            )
        if self._exception is not None:
            raise self._exception
        return self._value

    def exception(self) -> Exception | None:
        if not self._done:
            raise RuntimeError("NetFuture not completed yet")
        return self._exception

    def add_done_callback(self, fn: Callable[["NetFuture"], None]) -> None:
        """Run ``fn(self)`` at completion (immediately if already done)."""
        if self._done:
            fn(self)
        else:
            self._callbacks.append(fn)

    def _complete(
        self,
        at: float,
        value: Any = None,
        exception: Exception | None = None,
    ) -> None:
        if self._done:
            # A late response losing the race against the deadline guard
            # (or a cancelled hedge sibling): first completion wins.
            return
        self._done = True
        self._value = value
        self._exception = exception
        self.completed_at = at
        callbacks, self._callbacks = self._callbacks, []
        for fn in callbacks:
            fn(self)


class Network:
    """The simulated internetwork joining all sites in an experiment.

    >>> clock = VirtualClock()
    >>> net = Network(clock, seed=7)
    >>> net.add_host("a", site="s1"); net.add_host("b", site="s1")
    >>> net.listen(Address("b", 9), lambda req, src: req.upper())
    >>> net.request("a", Address("b", 9), "ping")
    'PING'
    """

    DEFAULT_TIMEOUT = 5.0

    def __init__(
        self,
        clock: VirtualClock,
        *,
        seed: int = 0,
        lan: LinkModel = LAN,
        wan: LinkModel = WAN,
    ) -> None:
        self.clock = clock
        self._rng = random.Random(seed)
        self._lan = lan
        self._wan = wan
        self._hosts: dict[str, _Host] = {}
        self._partitions: Optional[list[set[str]]] = None
        #: Fabric-wide instruments (``net.*``); gateways merge these into
        #: their self-monitoring view alongside their own registries.
        self.metrics = MetricsRegistry(clock)
        self.stats = NetworkStats(self.metrics)
        #: Optional chaos plane consulted per request (see simnet.faults).
        self.fault_plane: "FaultPlane | None" = None
        self._outstanding_futures = 0

    # ------------------------------------------------------------------
    # Topology management
    # ------------------------------------------------------------------
    def add_host(self, name: str, *, site: str = "default") -> None:
        """Register a host; idempotent only for identical site membership."""
        if name in self._hosts:
            if self._hosts[name].site != site:
                raise ValueError(
                    f"host {name!r} already exists in site {self._hosts[name].site!r}"
                )
            return
        self._hosts[name] = _Host(name=name, site=site)

    def has_host(self, name: str) -> bool:
        return name in self._hosts

    def hosts(self, *, site: str | None = None) -> list[str]:
        """All host names, optionally filtered to one site, sorted."""
        return sorted(
            h.name for h in self._hosts.values() if site is None or h.site == site
        )

    def site_of(self, host: str) -> str:
        return self._require_host(host).site

    def listen(
        self,
        address: Address,
        handler: RequestHandler,
        *,
        datagram_handler: DatagramHandler | None = None,
    ) -> Endpoint:
        """Bind ``handler`` at ``address``; the host must already exist."""
        host = self._require_host(address.host)
        if address.port in host.ports:
            raise ValueError(f"port already bound: {address}")
        ep = Endpoint(address=address, handler=handler, datagram_handler=datagram_handler)
        host.ports[address.port] = ep
        return ep

    def close(self, address: Address) -> None:
        """Unbind whatever listens at ``address`` (no-op if nothing does)."""
        host = self._hosts.get(address.host)
        if host is not None:
            host.ports.pop(address.port, None)

    def is_listening(self, address: Address) -> bool:
        host = self._hosts.get(address.host)
        return host is not None and address.port in host.ports

    # ------------------------------------------------------------------
    # Fault injection
    # ------------------------------------------------------------------
    def set_host_up(self, name: str, up: bool) -> None:
        """Crash (``up=False``) or revive a host."""
        self._require_host(name).up = up

    def set_extra_loss(self, name: str, loss: float) -> None:
        """Add host-local loss probability on top of the link model."""
        if not 0.0 <= loss < 1.0:
            raise ValueError(f"loss must be in [0, 1): {loss!r}")
        self._require_host(name).extra_loss = loss

    def set_service_time(self, name: str, seconds: float) -> None:
        """Fixed per-request processing delay at ``name`` (0 = instant).

        Charged against the caller's timeout, so a live-but-overloaded
        host can genuinely miss a deadline.
        """
        if seconds < 0:
            raise ValueError(f"service time must be >= 0: {seconds!r}")
        self._require_host(name).service_time = seconds

    def set_slowdown(self, name: str, factor: float) -> None:
        """Multiply link delays and service time for traffic to ``name``."""
        if factor <= 0:
            raise ValueError(f"slowdown factor must be > 0: {factor!r}")
        self._require_host(name).slowdown = factor

    def service_time(self, name: str) -> float:
        return self._require_host(name).service_time

    def slowdown(self, name: str) -> float:
        return self._require_host(name).slowdown

    def install_fault_plane(self, plane: "FaultPlane | None") -> None:
        """Attach (or detach, with None) a chaos plane to this network."""
        self.fault_plane = plane

    def pending_futures(self) -> int:
        """Outstanding :class:`NetFuture` RPCs not yet completed.

        Every async request is guarded by a deadline timer, so this must
        drain to zero once the clock passes the last deadline — the chaos
        soak asserts exactly that (no stuck futures).
        """
        return self._outstanding_futures

    def partition(self, *groups: set[str]) -> None:
        """Split the network: traffic may only flow within one group.

        Hosts not named in any group can talk to nobody until
        :meth:`heal` is called.
        """
        self._partitions = [set(g) for g in groups]

    def heal(self) -> None:
        """Remove any active partition."""
        self._partitions = None

    def _partitioned(self, a: str, b: str) -> bool:
        if self._partitions is None or a == b:
            return False
        return not any(a in g and b in g for g in self._partitions)

    # ------------------------------------------------------------------
    # Traffic
    # ------------------------------------------------------------------
    def link_for(self, src: str, dst: str) -> LinkModel:
        """The link model governing traffic between two hosts."""
        if self._require_host(src).site == self._require_host(dst).site:
            return self._lan
        return self._wan

    def request(
        self,
        src_host: str,
        dst: Address,
        payload: Any,
        *,
        timeout: float | None = None,
    ) -> Any:
        """Synchronous RPC from ``src_host`` to the endpoint at ``dst``.

        Advances the virtual clock by the modelled round-trip time.
        Raises :class:`HostUnreachableError`, :class:`PortClosedError` or
        :class:`TimeoutError_` exactly where a real socket would fail.

        ``timeout`` is enforced against accumulated virtual wire time:
        link delays (scaled by the destination's slowdown factor) plus
        the destination's service time plus any fault-plane latency
        spikes.  When the budget runs out the clock lands exactly on the
        deadline instant and :class:`TimeoutError_` is raised — a slow
        chain can no longer exceed its deadline yet return success.
        Handler *compute* time (nested RPC work done by the server) is
        not charged; end-to-end budgets across multi-hop chains are the
        job of the core layer's ``Deadline``, which re-checks the
        remaining budget at every hop.
        """
        timeout = self.DEFAULT_TIMEOUT if timeout is None else timeout
        self.stats.requests += 1
        size = _payload_size(payload)
        self.stats.bytes_sent += size

        budget = timeout  # remaining transport + service budget

        def expire(remaining: float, exc: Exception) -> Exception:
            # The caller's timer runs out: land exactly on the deadline.
            self.clock.advance(remaining)
            return exc

        src = self._require_host(src_host)
        dst_host = self._hosts.get(dst.host)
        if dst_host is None or self._partitioned(src_host, dst.host):
            # An unreachable destination looks like a timeout on the wire.
            raise expire(budget, HostUnreachableError(f"{src_host} -> {dst}: no route"))
        if not dst_host.up:
            raise expire(budget, HostUnreachableError(f"{src_host} -> {dst}: host down"))

        plane = self.fault_plane
        slow = dst_host.slowdown
        link = self.link_for(src_host, dst.host)
        loss = link.loss + src.extra_loss + dst_host.extra_loss
        if loss > 0.0 and self._rng.random() < loss:
            self.stats.drops += 1
            raise expire(budget, TimeoutError_(f"{src_host} -> {dst}: request lost"))

        send_delay = link.delay(size, self._rng) * slow
        if send_delay > budget:
            raise expire(
                budget, TimeoutError_(f"{src_host} -> {dst}: no reply within {timeout:g}s")
            )
        self.clock.advance(send_delay)
        budget -= send_delay

        if plane is not None and plane.refuses(dst.host, dst.port):
            raise PortClosedError(f"{src_host} -> {dst}: connection refused (flaky port)")
        endpoint = dst_host.ports.get(dst.port)
        if endpoint is None:
            raise PortClosedError(f"{src_host} -> {dst}: connection refused")

        service = dst_host.service_time * slow
        if plane is not None:
            service += plane.request_overhead(dst.host)
        if service > 0.0:
            if service > budget:
                raise expire(
                    budget,
                    TimeoutError_(f"{src_host} -> {dst}: no reply within {timeout:g}s"),
                )
            self.clock.advance(service)
            budget -= service

        response = endpoint.handler(payload, Address(src_host, 0))
        rsize = _payload_size(response)
        self.stats.bytes_sent += rsize
        if loss > 0.0 and self._rng.random() < loss:
            self.stats.drops += 1
            raise expire(budget, TimeoutError_(f"{dst} -> {src_host}: response lost"))
        resp_delay = link.delay(rsize, self._rng) * slow
        if resp_delay > budget:
            raise expire(
                budget, TimeoutError_(f"{src_host} -> {dst}: no reply within {timeout:g}s")
            )
        self.clock.advance(resp_delay)
        if plane is not None and plane.corrupts(dst.host):
            raise PayloadCorruptedError(
                f"{dst} -> {src_host}: response failed checksum"
            )
        return response

    def request_async(
        self,
        src_host: str,
        dst: Address,
        payload: Any,
        *,
        timeout: float | None = None,
    ) -> NetFuture:
        """Deferred RPC: returns immediately with a :class:`NetFuture`.

        The request is delivered, handled and answered entirely through
        the virtual clock's schedule: the destination handler runs at the
        request's arrival instant and the future completes when the
        response lands (or the failure becomes observable).  Failure
        semantics mirror :meth:`request` — unreachable hosts and lost
        packets surface as the same exceptions after the same timeout —
        but the caller's clock does not move, so many RPCs can be in
        flight at once.

        The timeout is an *absolute* deadline fixed at send time: a
        deadline guard scheduled at ``now + timeout`` fails the future if
        nothing completed it first, so a host dying mid-flight (or a
        slow service queue) surfaces at send-time + timeout — matching
        the sync path — rather than arrival-time + timeout.
        """
        timeout = self.DEFAULT_TIMEOUT if timeout is None else timeout
        src = self._require_host(src_host)
        deadline = self.clock.now() + timeout
        fut = NetFuture()
        self._outstanding_futures += 1
        fut.add_done_callback(lambda _f: self._future_resolved())
        self.stats.requests += 1
        size = _payload_size(payload)
        self.stats.bytes_sent += size

        def _expire() -> None:
            fut._complete(
                self.clock.now(),
                exception=TimeoutError_(
                    f"{src_host} -> {dst}: no reply within {timeout:g}s"
                ),
            )

        guard = self.clock.call_at(deadline, _expire)
        fut.add_done_callback(lambda _f: guard.cancel())

        def fail_at_deadline(exc: Exception) -> None:
            # Replace the generic deadline timeout with a specific cause,
            # still surfacing at the same instant the caller gives up.
            guard.cancel()

            def _fail() -> None:
                fut._complete(self.clock.now(), exception=exc)

            self.clock.call_at(max(deadline, self.clock.now()), _fail)

        dst_host = self._hosts.get(dst.host)
        if dst_host is None or self._partitioned(src_host, dst.host):
            fail_at_deadline(HostUnreachableError(f"{src_host} -> {dst}: no route"))
            return fut
        if not dst_host.up:
            fail_at_deadline(HostUnreachableError(f"{src_host} -> {dst}: host down"))
            return fut

        link = self.link_for(src_host, dst.host)
        loss = link.loss + src.extra_loss + dst_host.extra_loss
        if loss > 0.0 and self._rng.random() < loss:
            self.stats.drops += 1
            fail_at_deadline(TimeoutError_(f"{src_host} -> {dst}: request lost"))
            return fut
        src_addr = Address(src_host, 0)
        plane = self.fault_plane

        def _arrive() -> None:
            now = self.clock.now()
            live = self._hosts.get(dst.host)
            if live is None or not live.up or self._partitioned(src_host, dst.host):
                # Died (or was partitioned) while the request was in
                # flight: the caller sees a timeout, not an instant error
                # — at send-time + timeout, not arrival + timeout.
                fail_at_deadline(
                    HostUnreachableError(f"{src_host} -> {dst}: host went down")
                )
                return
            if plane is not None and plane.refuses(dst.host, dst.port):
                fut._complete(
                    now,
                    exception=PortClosedError(
                        f"{src_host} -> {dst}: connection refused (flaky port)"
                    ),
                )
                return
            endpoint = live.ports.get(dst.port)
            if endpoint is None:
                fut._complete(
                    now,
                    exception=PortClosedError(
                        f"{src_host} -> {dst}: connection refused"
                    ),
                )
                return

            def _handle() -> None:
                response = endpoint.handler(payload, src_addr)
                rsize = _payload_size(response)
                self.stats.bytes_sent += rsize
                if loss > 0.0 and self._rng.random() < loss:
                    self.stats.drops += 1
                    fail_at_deadline(
                        TimeoutError_(f"{dst} -> {src_host}: response lost")
                    )
                    return

                def _respond() -> None:
                    # A response landing after the deadline guard fired is
                    # silently dropped by NetFuture's first-wins rule.
                    if plane is not None and plane.corrupts(dst.host):
                        fut._complete(
                            self.clock.now(),
                            exception=PayloadCorruptedError(
                                f"{dst} -> {src_host}: response failed checksum"
                            ),
                        )
                        return
                    fut._complete(self.clock.now(), value=response)

                self.clock.call_later(
                    link.delay(rsize, self._rng) * live.slowdown, _respond
                )

            service = live.service_time * live.slowdown
            if plane is not None:
                service += plane.request_overhead(dst.host)
            if service > 0.0:
                self.clock.call_later(service, _handle)
            else:
                _handle()

        self.clock.call_later(link.delay(size, self._rng) * dst_host.slowdown, _arrive)
        return fut

    def gather(
        self,
        futures: "list[NetFuture] | tuple[NetFuture, ...]",
        *,
        return_exceptions: bool = False,
    ) -> list[Any]:
        """Drive the clock until every future completes; results in order.

        Total virtual elapsed time is the *max* of the branches' delays,
        not the sum — the whole point of deferred RPC.  With
        ``return_exceptions`` failures are returned in place of results
        instead of raised.  Cannot be used inside a
        :class:`~repro.simnet.clock.ConcurrentScope` branch (callback
        delivery is deferred there); use one future per branch instead.
        """
        futures = list(futures)
        if self.clock.in_concurrent_branch:
            raise RuntimeError(
                "Network.gather() cannot run inside a concurrent branch: "
                "scheduled deliveries are deferred until the scope joins"
            )
        while not all(f.done() for f in futures):
            due = self.clock.next_due()
            if due is None:
                raise RuntimeError(
                    "Network.gather() would deadlock: futures pending but "
                    "nothing is scheduled"
                )
            self.clock.advance_to(due)
        results: list[Any] = []
        for fut in futures:
            exc = fut.exception()
            if exc is not None and not return_exceptions:
                raise exc
            results.append(exc if exc is not None else fut.result())
        return results

    def send(self, src_host: str, dst: Address, payload: Any) -> None:
        """One-way datagram (trap/event); silently dropped on failure."""
        self.stats.datagrams += 1
        size = _payload_size(payload)
        self.stats.bytes_sent += size

        src = self._require_host(src_host)
        dst_host = self._hosts.get(dst.host)
        if (
            dst_host is None
            or not dst_host.up
            or self._partitioned(src_host, dst.host)
        ):
            self.stats.drops += 1
            return
        link = self.link_for(src_host, dst.host)
        loss = link.loss + src.extra_loss + dst_host.extra_loss
        if loss > 0.0 and self._rng.random() < loss:
            self.stats.drops += 1
            return
        delay = link.delay(size, self._rng)
        src_addr = Address(src_host, 0)

        def _deliver() -> None:
            # Re-check liveness at delivery time: the host may have died
            # or closed the port while the datagram was in flight.
            live = self._hosts.get(dst.host)
            if live is None or not live.up:
                self.stats.drops += 1
                return
            ep = live.ports.get(dst.port)
            if ep is None or ep.datagram_handler is None:
                self.stats.drops += 1
                return
            ep.datagram_handler(payload, src_addr)

        self.clock.call_later(delay, _deliver)

    # ------------------------------------------------------------------
    def _future_resolved(self) -> None:
        self._outstanding_futures -= 1

    def _require_host(self, name: str) -> _Host:
        host = self._hosts.get(name)
        if host is None:
            raise KeyError(f"unknown host: {name!r}")
        return host
