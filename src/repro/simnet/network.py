"""In-process simulated network.

The network is synchronous: :meth:`Network.request` performs a blocking
RPC (advancing the virtual clock by the modelled round-trip delay), and
:meth:`Network.send` delivers a one-way datagram (used for SNMP traps and
GridRM event propagation) via the clock's schedule.

Hosts belong to *sites*; traffic within a site uses the LAN link model and
traffic between sites uses the WAN model, matching the paper's two-layer
deployment (Figure 1).  Fault injection — dead hosts, partitions, extra
loss — drives the failover experiments (E10).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro.simnet.clock import VirtualClock
from repro.simnet.errors import (
    HostUnreachableError,
    PortClosedError,
    TimeoutError_,
)
from repro.simnet.link import LAN, WAN, LinkModel

#: RPC handler: (payload, source address) -> response payload.
RequestHandler = Callable[[Any, "Address"], Any]
#: One-way datagram handler: (payload, source address) -> None.
DatagramHandler = Callable[[Any, "Address"], None]


@dataclass(frozen=True, order=True)
class Address:
    """A (host, port) pair on the simulated network."""

    host: str
    port: int

    def __str__(self) -> str:  # pragma: no cover - trivial
        return f"{self.host}:{self.port}"


@dataclass
class Endpoint:
    """A listening socket: an address bound to a request handler."""

    address: Address
    handler: RequestHandler
    datagram_handler: Optional[DatagramHandler] = None


@dataclass
class _Host:
    name: str
    site: str
    up: bool = True
    extra_loss: float = 0.0
    ports: dict[int, Endpoint] = field(default_factory=dict)


@dataclass
class NetworkStats:
    """Aggregate traffic counters (reset-able; consumed by benchmarks)."""

    requests: int = 0
    datagrams: int = 0
    drops: int = 0
    bytes_sent: int = 0

    def reset(self) -> None:
        self.requests = 0
        self.datagrams = 0
        self.drops = 0
        self.bytes_sent = 0


def _payload_size(payload: Any) -> int:
    """Rough wire size of a payload, for bandwidth-delay charging."""
    if isinstance(payload, (bytes, bytearray)):
        return len(payload)
    if isinstance(payload, str):
        return len(payload.encode("utf-8", errors="replace"))
    return len(repr(payload))


class Network:
    """The simulated internetwork joining all sites in an experiment.

    >>> clock = VirtualClock()
    >>> net = Network(clock, seed=7)
    >>> net.add_host("a", site="s1"); net.add_host("b", site="s1")
    >>> net.listen(Address("b", 9), lambda req, src: req.upper())
    >>> net.request("a", Address("b", 9), "ping")
    'PING'
    """

    DEFAULT_TIMEOUT = 5.0

    def __init__(
        self,
        clock: VirtualClock,
        *,
        seed: int = 0,
        lan: LinkModel = LAN,
        wan: LinkModel = WAN,
    ) -> None:
        self.clock = clock
        self._rng = random.Random(seed)
        self._lan = lan
        self._wan = wan
        self._hosts: dict[str, _Host] = {}
        self._partitions: Optional[list[set[str]]] = None
        self.stats = NetworkStats()

    # ------------------------------------------------------------------
    # Topology management
    # ------------------------------------------------------------------
    def add_host(self, name: str, *, site: str = "default") -> None:
        """Register a host; idempotent only for identical site membership."""
        if name in self._hosts:
            if self._hosts[name].site != site:
                raise ValueError(
                    f"host {name!r} already exists in site {self._hosts[name].site!r}"
                )
            return
        self._hosts[name] = _Host(name=name, site=site)

    def has_host(self, name: str) -> bool:
        return name in self._hosts

    def hosts(self, *, site: str | None = None) -> list[str]:
        """All host names, optionally filtered to one site, sorted."""
        return sorted(
            h.name for h in self._hosts.values() if site is None or h.site == site
        )

    def site_of(self, host: str) -> str:
        return self._require_host(host).site

    def listen(
        self,
        address: Address,
        handler: RequestHandler,
        *,
        datagram_handler: DatagramHandler | None = None,
    ) -> Endpoint:
        """Bind ``handler`` at ``address``; the host must already exist."""
        host = self._require_host(address.host)
        if address.port in host.ports:
            raise ValueError(f"port already bound: {address}")
        ep = Endpoint(address=address, handler=handler, datagram_handler=datagram_handler)
        host.ports[address.port] = ep
        return ep

    def close(self, address: Address) -> None:
        """Unbind whatever listens at ``address`` (no-op if nothing does)."""
        host = self._hosts.get(address.host)
        if host is not None:
            host.ports.pop(address.port, None)

    def is_listening(self, address: Address) -> bool:
        host = self._hosts.get(address.host)
        return host is not None and address.port in host.ports

    # ------------------------------------------------------------------
    # Fault injection
    # ------------------------------------------------------------------
    def set_host_up(self, name: str, up: bool) -> None:
        """Crash (``up=False``) or revive a host."""
        self._require_host(name).up = up

    def set_extra_loss(self, name: str, loss: float) -> None:
        """Add host-local loss probability on top of the link model."""
        if not 0.0 <= loss < 1.0:
            raise ValueError(f"loss must be in [0, 1): {loss!r}")
        self._require_host(name).extra_loss = loss

    def partition(self, *groups: set[str]) -> None:
        """Split the network: traffic may only flow within one group.

        Hosts not named in any group can talk to nobody until
        :meth:`heal` is called.
        """
        self._partitions = [set(g) for g in groups]

    def heal(self) -> None:
        """Remove any active partition."""
        self._partitions = None

    def _partitioned(self, a: str, b: str) -> bool:
        if self._partitions is None or a == b:
            return False
        return not any(a in g and b in g for g in self._partitions)

    # ------------------------------------------------------------------
    # Traffic
    # ------------------------------------------------------------------
    def link_for(self, src: str, dst: str) -> LinkModel:
        """The link model governing traffic between two hosts."""
        if self._require_host(src).site == self._require_host(dst).site:
            return self._lan
        return self._wan

    def request(
        self,
        src_host: str,
        dst: Address,
        payload: Any,
        *,
        timeout: float | None = None,
    ) -> Any:
        """Synchronous RPC from ``src_host`` to the endpoint at ``dst``.

        Advances the virtual clock by the modelled round-trip time.
        Raises :class:`HostUnreachableError`, :class:`PortClosedError` or
        :class:`TimeoutError_` exactly where a real socket would fail.
        """
        timeout = self.DEFAULT_TIMEOUT if timeout is None else timeout
        self.stats.requests += 1
        size = _payload_size(payload)
        self.stats.bytes_sent += size

        src = self._require_host(src_host)
        dst_host = self._hosts.get(dst.host)
        if dst_host is None or self._partitioned(src_host, dst.host):
            # An unreachable destination looks like a timeout on the wire.
            self.clock.advance(timeout)
            raise HostUnreachableError(f"{src_host} -> {dst}: no route")
        if not dst_host.up:
            self.clock.advance(timeout)
            raise HostUnreachableError(f"{src_host} -> {dst}: host down")

        link = self.link_for(src_host, dst.host)
        loss = link.loss + src.extra_loss + dst_host.extra_loss
        if loss > 0.0 and self._rng.random() < loss:
            self.stats.drops += 1
            self.clock.advance(timeout)
            raise TimeoutError_(f"{src_host} -> {dst}: request lost")

        self.clock.advance(link.delay(size, self._rng))
        endpoint = dst_host.ports.get(dst.port)
        if endpoint is None:
            raise PortClosedError(f"{src_host} -> {dst}: connection refused")

        response = endpoint.handler(payload, Address(src_host, 0))
        rsize = _payload_size(response)
        self.stats.bytes_sent += rsize
        if loss > 0.0 and self._rng.random() < loss:
            self.stats.drops += 1
            self.clock.advance(timeout)
            raise TimeoutError_(f"{dst} -> {src_host}: response lost")
        self.clock.advance(link.delay(rsize, self._rng))
        return response

    def send(self, src_host: str, dst: Address, payload: Any) -> None:
        """One-way datagram (trap/event); silently dropped on failure."""
        self.stats.datagrams += 1
        size = _payload_size(payload)
        self.stats.bytes_sent += size

        src = self._require_host(src_host)
        dst_host = self._hosts.get(dst.host)
        if (
            dst_host is None
            or not dst_host.up
            or self._partitioned(src_host, dst.host)
        ):
            self.stats.drops += 1
            return
        link = self.link_for(src_host, dst.host)
        loss = link.loss + src.extra_loss + dst_host.extra_loss
        if loss > 0.0 and self._rng.random() < loss:
            self.stats.drops += 1
            return
        delay = link.delay(size, self._rng)
        src_addr = Address(src_host, 0)

        def _deliver() -> None:
            # Re-check liveness at delivery time: the host may have died
            # or closed the port while the datagram was in flight.
            live = self._hosts.get(dst.host)
            if live is None or not live.up:
                self.stats.drops += 1
                return
            ep = live.ports.get(dst.port)
            if ep is None or ep.datagram_handler is None:
                self.stats.drops += 1
                return
            ep.datagram_handler(payload, src_addr)

        self.clock.call_later(delay, _deliver)

    # ------------------------------------------------------------------
    def _require_host(self, name: str) -> _Host:
        host = self._hosts.get(name)
        if host is None:
            raise KeyError(f"unknown host: {name!r}")
        return host
