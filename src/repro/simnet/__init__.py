"""Simulated network substrate for GridRM.

The paper deploys GridRM against real agents on a LAN/WAN.  This package
provides the laptop-runnable substitute: a deterministic virtual clock and
an in-process message network with configurable latency, jitter, loss and
partitions.  Every agent, driver and gateway in the reproduction talks
through :class:`Network`, so the code paths exercised (timeouts, retries,
connection setup cost, trap delivery) match a real deployment while staying
seeded and fast.
"""

from repro.simnet.clock import ConcurrentScope, VirtualClock, ScheduledCall
from repro.simnet.errors import (
    NetworkError,
    HostUnreachableError,
    PayloadCorruptedError,
    PortClosedError,
    TimeoutError_,
)
from repro.simnet.faults import FaultPlane, FaultPlaneStats, FaultWindow
from repro.simnet.link import LinkModel
from repro.simnet.network import Address, Endpoint, NetFuture, Network

__all__ = [
    "ConcurrentScope",
    "NetFuture",
    "VirtualClock",
    "ScheduledCall",
    "NetworkError",
    "HostUnreachableError",
    "PayloadCorruptedError",
    "PortClosedError",
    "TimeoutError_",
    "FaultPlane",
    "FaultPlaneStats",
    "FaultWindow",
    "LinkModel",
    "Address",
    "Endpoint",
    "Network",
]
