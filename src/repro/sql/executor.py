"""SQL execution.

:func:`execute_select` evaluates a parsed SELECT against an in-memory
relation (column list + rows of dicts); :func:`execute` dispatches a full
statement against a :class:`~repro.sql.database.Database`.  Drivers also
reuse :func:`evaluate_predicate` directly to apply WHERE clauses to rows
assembled from native agent data.

NULL semantics are the pragmatic subset GridRM needs: any comparison or
arithmetic touching NULL yields NULL, and a NULL predicate is treated as
false; drivers signal "translation not possible" with NULL values (§3.2.3)
so NULL handling is exercised constantly.
"""

from __future__ import annotations

import re
from collections import OrderedDict
from typing import Any, Iterable, Mapping, Sequence

from repro.sql import ast_nodes as ast
from repro.sql.errors import SqlExecutionError

Row = Mapping[str, Any]


class SelectResult:
    """Materialised result of a SELECT: ordered columns plus row tuples."""

    def __init__(self, columns: Sequence[str], rows: Sequence[Sequence[Any]]) -> None:
        self.columns = list(columns)
        self.rows = [list(r) for r in rows]

    @classmethod
    def adopt(
        cls, columns: Sequence[str], rows: list[list[Any]]
    ) -> "SelectResult":
        """Wrap freshly-built rows without the defensive per-row copy.

        The caller transfers ownership: ``rows`` must be a list of lists
        nothing else will mutate.  The compiled-plan executor uses this
        so a projected result is materialised exactly once.
        """
        result = cls.__new__(cls)
        result.columns = list(columns)
        result.rows = rows
        return result

    def dicts(self) -> list[dict[str, Any]]:
        """Rows as dicts keyed by column label."""
        return [dict(zip(self.columns, r)) for r in self.rows]

    def __len__(self) -> int:
        return len(self.rows)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SelectResult(columns={self.columns!r}, rows={len(self.rows)})"


# ----------------------------------------------------------------------
# Expression evaluation
# ----------------------------------------------------------------------
#: Memoised LIKE patterns: compiling the regex once per distinct pattern
#: instead of once per row evaluation.  Bounded LRU so adversarial or
#: data-driven patterns cannot grow it without limit; an OrderedDict keeps
#: eviction order deterministic (insertion order, refreshed on hit).
_LIKE_CACHE: "OrderedDict[str, re.Pattern[str]]" = OrderedDict()
_LIKE_CACHE_MAX = 256


def compile_like(pattern: str) -> re.Pattern[str]:
    """The compiled regex for a SQL LIKE pattern (memoised, bounded)."""
    cached = _LIKE_CACHE.get(pattern)
    if cached is not None:
        _LIKE_CACHE.move_to_end(pattern)
        return cached
    out = ["^"]
    for ch in pattern:
        if ch == "%":
            out.append(".*")
        elif ch == "_":
            out.append(".")
        else:
            out.append(re.escape(ch))
    out.append("$")
    compiled = re.compile("".join(out), re.IGNORECASE)
    _LIKE_CACHE[pattern] = compiled
    if len(_LIKE_CACHE) > _LIKE_CACHE_MAX:
        _LIKE_CACHE.popitem(last=False)
    return compiled


def _like_to_regex(pattern: str) -> re.Pattern[str]:
    return compile_like(pattern)


def _coerce_pair(a: Any, b: Any) -> tuple[Any, Any]:
    """Coerce operands for comparison: numbers compare numerically even if
    one side arrived as a numeric string (native agents return text)."""
    if isinstance(a, str) and isinstance(b, (int, float)) and not isinstance(b, bool):
        try:
            return float(a), float(b)
        except ValueError:
            return a, b
    if isinstance(b, str) and isinstance(a, (int, float)) and not isinstance(a, bool):
        try:
            return float(a), float(b)
        except ValueError:
            return a, b
    return a, b


def evaluate_expr(expr: ast.Expr, row: Row) -> Any:
    """Evaluate ``expr`` against ``row``; missing columns are an error."""
    if isinstance(expr, ast.Literal):
        return expr.value
    if isinstance(expr, ast.Column):
        if expr.name in row:
            return row[expr.name]
        if expr.qualified in row:
            return row[expr.qualified]
        # Case-insensitive fallback: GLUE names are CamelCase but clients
        # frequently write lowercase column names.
        lowered = expr.name.lower()
        for key in row:
            if key.lower() == lowered:
                return row[key]
        raise SqlExecutionError(f"unknown column: {expr.qualified!r}")
    if isinstance(expr, ast.Star):
        raise SqlExecutionError("'*' is only valid as a projection or in COUNT(*)")
    if isinstance(expr, ast.UnaryOp):
        val = evaluate_expr(expr.operand, row)
        if expr.op == "NOT":
            if val is None:
                return None
            return not bool(val)
        if expr.op == "-":
            if val is None:
                return None
            return -val
        raise SqlExecutionError(f"unknown unary operator {expr.op!r}")
    if isinstance(expr, ast.BinOp):
        return _eval_binop(expr, row)
    if isinstance(expr, ast.InList):
        val = evaluate_expr(expr.expr, row)
        if val is None:
            return None
        found = False
        for item in expr.items:
            iv = evaluate_expr(item, row)
            a, b = _coerce_pair(val, iv)
            if a == b:
                found = True
                break
        return (not found) if expr.negated else found
    if isinstance(expr, ast.Between):
        val = evaluate_expr(expr.expr, row)
        lo = evaluate_expr(expr.low, row)
        hi = evaluate_expr(expr.high, row)
        if val is None or lo is None or hi is None:
            return None
        a, l = _coerce_pair(val, lo)
        a2, h = _coerce_pair(val, hi)
        result = l <= a and a2 <= h
        return (not result) if expr.negated else result
    if isinstance(expr, ast.IsNull):
        val = evaluate_expr(expr.expr, row)
        return (val is not None) if expr.negated else (val is None)
    if isinstance(expr, ast.FuncCall):
        raise SqlExecutionError(
            f"aggregate {expr.name} used outside an aggregating query"
        )
    raise SqlExecutionError(f"cannot evaluate {type(expr).__name__}")


def _eval_binop(expr: ast.BinOp, row: Row) -> Any:
    op = expr.op
    if op == "AND":
        left = evaluate_expr(expr.left, row)
        if left is not None and not left:
            return False
        right = evaluate_expr(expr.right, row)
        if right is not None and not right:
            return False
        if left is None or right is None:
            return None
        return True
    if op == "OR":
        left = evaluate_expr(expr.left, row)
        if left is not None and left:
            return True
        right = evaluate_expr(expr.right, row)
        if right is not None and right:
            return True
        if left is None or right is None:
            return None
        return False

    left = evaluate_expr(expr.left, row)
    right = evaluate_expr(expr.right, row)
    return _apply_binop_values(op, left, right)


def _apply_binop_values(op: str, left: Any, right: Any) -> Any:
    """Apply a binary operator to two already-evaluated values.

    Shared by the interpreted executor and the compiled-plan closures
    (:mod:`repro.sql.plan`) so operator/NULL/coercion semantics cannot
    drift between the two paths.  AND/OR here are the value-level
    (post-evaluation) forms used in aggregate contexts — row-level
    short-circuiting lives in the callers.
    """
    if op == "AND":
        if left is not None and not left:
            return False
        if right is not None and not right:
            return False
        if left is None or right is None:
            return None
        return True
    if op == "OR":
        if left is not None and left:
            return True
        if right is not None and right:
            return True
        if left is None or right is None:
            return None
        return False
    if left is None or right is None:
        return None
    if op == "LIKE":
        return compile_like(str(right)).match(str(left)) is not None

    a, b = _coerce_pair(left, right)
    try:
        if op == "=":
            return a == b
        if op == "!=":
            return a != b
        if op == "<":
            return a < b
        if op == "<=":
            return a <= b
        if op == ">":
            return a > b
        if op == ">=":
            return a >= b
        if op == "+":
            return a + b
        if op == "-":
            return a - b
        if op == "*":
            return a * b
        if op == "/":
            if b == 0:
                return None
            return a / b
        if op == "%":
            if b == 0:
                return None
            return a % b
    except TypeError as exc:
        raise SqlExecutionError(
            f"type error in {op!r}: {type(left).__name__} vs {type(right).__name__}"
        ) from exc
    raise SqlExecutionError(f"unknown operator {op!r}")


def evaluate_predicate(expr: ast.Expr | None, row: Row) -> bool:
    """Apply a WHERE clause; NULL results count as false (SQL semantics)."""
    if expr is None:
        return True
    value = evaluate_expr(expr, row)
    return bool(value) if value is not None else False


# ----------------------------------------------------------------------
# Aggregation
# ----------------------------------------------------------------------
def _aggregate(call: ast.FuncCall, rows: list[Row]) -> Any:
    if call.star:
        if call.name != "COUNT":
            raise SqlExecutionError(f"{call.name}(*) is not valid")
        return len(rows)
    if len(call.args) != 1:
        raise SqlExecutionError(f"{call.name} takes exactly one argument")
    values = [evaluate_expr(call.args[0], r) for r in rows]
    return _aggregate_values(call.name, values, call.distinct)


def _aggregate_values(name: str, values: list[Any], distinct: bool) -> Any:
    """Reduce already-evaluated argument values with aggregate ``name``.

    Shared by the interpreter and compiled plans: NULLs are dropped,
    DISTINCT dedups by equality (list scan — values may be unhashable),
    and empty input yields NULL for everything but COUNT.
    """
    values = [v for v in values if v is not None]
    if distinct:
        seen: list[Any] = []
        for v in values:
            if v not in seen:
                seen.append(v)
        values = seen
    if name == "COUNT":
        return len(values)
    if not values:
        return None
    if name == "SUM":
        return sum(_as_number(v) for v in values)
    if name == "AVG":
        return sum(_as_number(v) for v in values) / len(values)
    if name == "MIN":
        return min(values)
    if name == "MAX":
        return max(values)
    raise SqlExecutionError(f"unknown aggregate {name!r}")


def _as_number(v: Any) -> float | int:
    if isinstance(v, bool):
        return int(v)
    if isinstance(v, (int, float)):
        return v
    try:
        f = float(v)
    except (TypeError, ValueError) as exc:
        raise SqlExecutionError(f"cannot aggregate non-numeric value {v!r}") from exc
    return f


def _eval_with_aggregates(expr: ast.Expr, rows: list[Row], sample: Row) -> Any:
    """Evaluate an expression that may contain aggregate calls over ``rows``.

    Non-aggregate column references are resolved against ``sample`` (the
    group's representative row), matching common SQL-engine behaviour for
    grouped columns.
    """
    if isinstance(expr, ast.FuncCall) and expr.name in ast.AGGREGATES:
        return _aggregate(expr, rows)
    if isinstance(expr, ast.BinOp):
        left = _eval_with_aggregates(expr.left, rows, sample)
        right = _eval_with_aggregates(expr.right, rows, sample)
        return _eval_binop(
            ast.BinOp(op=expr.op, left=ast.Literal(left), right=ast.Literal(right)),
            sample,
        )
    if isinstance(expr, ast.UnaryOp):
        inner = _eval_with_aggregates(expr.operand, rows, sample)
        return evaluate_expr(
            ast.UnaryOp(op=expr.op, operand=ast.Literal(inner)), sample
        )
    return evaluate_expr(expr, sample)


# ----------------------------------------------------------------------
# Natural join
# ----------------------------------------------------------------------
def natural_join(
    relations: Sequence[tuple[Sequence[str], Sequence[Row]]],
    *,
    key_columns: Sequence[str] | None = None,
) -> tuple[list[str], list[dict[str, Any]]]:
    """Inner natural join of several relations.

    Args:
        relations: (columns, rows-as-mappings) pairs, joined left to
            right.
        key_columns: explicit join keys; None joins on *all* shared
            column names (textbook natural join).  GridRM's gateway
            passes explicit identity keys (HostName/SiteName) because
            per-agent sample timestamps never match exactly.

    Output columns are the first relation's columns followed by each
    later relation's new columns, in order.
    """
    if not relations:
        return [], []
    out_columns = list(relations[0][0])
    out_rows: list[dict[str, Any]] = [dict(r) for r in relations[0][1]]
    for columns, rows in relations[1:]:
        if key_columns is None:
            keys = [c for c in out_columns if c in set(columns)]
        else:
            keys = [
                c for c in key_columns if c in set(out_columns) and c in set(columns)
            ]
        if not keys:
            raise SqlExecutionError(
                "natural join requires at least one shared column "
                f"(left has {out_columns!r}, right has {list(columns)!r})"
            )
        new_columns = [c for c in columns if c not in set(out_columns)]
        index: dict[tuple[Any, ...], list[Row]] = {}
        for row in rows:
            index.setdefault(tuple(row.get(k) for k in keys), []).append(row)
        joined: list[dict[str, Any]] = []
        for left in out_rows:
            for right in index.get(tuple(left.get(k) for k in keys), ()):
                merged = dict(left)
                for c in new_columns:
                    merged[c] = right.get(c)
                joined.append(merged)
        out_columns.extend(new_columns)
        out_rows = joined
    return out_columns, out_rows


# ----------------------------------------------------------------------
# SELECT execution
# ----------------------------------------------------------------------
def execute_select(
    stmt: ast.Select,
    columns: Sequence[str],
    rows: Iterable[Row],
) -> SelectResult:
    """Run a SELECT over an in-memory relation.

    ``columns`` fixes the output order for ``SELECT *``; ``rows`` is any
    iterable of mappings (extra keys beyond ``columns`` are permitted and
    ignored for star-projection).
    """
    filtered = [r for r in rows if evaluate_predicate(stmt.where, r)]

    has_aggregates = any(ast.contains_aggregate(i.expr) for i in stmt.items)

    if stmt.group_by or has_aggregates:
        out_cols, out_rows = _grouped(stmt, filtered)
        if stmt.order_by:
            # Grouped output: ORDER BY keys resolve against the projected
            # columns (aliases and aggregate labels).
            out_rows = _ordered(stmt, [dict(zip(out_cols, r)) for r in out_rows], out_rows)
    else:
        if stmt.order_by:
            # ORDER BY may reference source columns that are not
            # projected AND projection aliases (ORDER BY dbl for
            # "SELECT load*2 AS dbl"), so sort over source rows augmented
            # with the computed aliases.
            key_rows: list[Row] = filtered
            aliases = [
                (item.alias, item.expr)
                for item in stmt.items
                if item.alias is not None
            ]
            if aliases:
                augmented = []
                for r in filtered:
                    extended = dict(r)
                    for alias, expr in aliases:
                        try:
                            extended[alias] = evaluate_expr(expr, r)
                        except SqlExecutionError:
                            extended[alias] = None
                    augmented.append(extended)
                key_rows = augmented
            order = _ordered(stmt, key_rows, list(range(len(filtered))))
            filtered = [filtered[i] for i in order]
        out_cols, out_rows = _plain(stmt, columns, filtered)

    if stmt.distinct:
        seen: set[tuple[Any, ...]] = set()
        unique: list[list[Any]] = []
        for r in out_rows:
            key = tuple(_hashable(v) for v in r)
            if key not in seen:
                seen.add(key)
                unique.append(r)
        out_rows = unique

    if stmt.offset:
        out_rows = out_rows[stmt.offset :]
    if stmt.limit is not None:
        out_rows = out_rows[: stmt.limit]
    return SelectResult(out_cols, out_rows)


def _hashable(v: Any) -> Any:
    return tuple(v) if isinstance(v, list) else v


def _plain(
    stmt: ast.Select, columns: Sequence[str], rows: list[Row]
) -> tuple[list[str], list[list[Any]]]:
    if stmt.is_star:
        cols = list(columns)
        return cols, [[r.get(c) for c in cols] for r in rows]
    cols = stmt.projected_names()
    out = []
    for r in rows:
        out.append([evaluate_expr(item.expr, r) for item in stmt.items])
    return cols, out


def _grouped(
    stmt: ast.Select, rows: list[Row]
) -> tuple[list[str], list[list[Any]]]:
    if stmt.is_star:
        raise SqlExecutionError("SELECT * cannot be combined with aggregation")
    groups: dict[tuple[Any, ...], list[Row]] = {}
    if stmt.group_by:
        for r in rows:
            key = tuple(_hashable(evaluate_expr(g, r)) for g in stmt.group_by)
            groups.setdefault(key, []).append(r)
    else:
        # Implicit single group; aggregates over an empty input still
        # produce one output row (COUNT(*) = 0).
        groups[()] = rows

    cols = stmt.projected_names()
    out: list[list[Any]] = []
    for key in groups:
        members = groups[key]
        sample: Row = members[0] if members else {}
        if stmt.having is not None:
            hv = _eval_with_aggregates(stmt.having, members, sample)
            if hv is None or not hv:
                continue
        out.append(
            [_eval_with_aggregates(item.expr, members, sample) for item in stmt.items]
        )
    return cols, out


class _SortKey:
    """Total-order wrapper: None sorts first, mixed types sort by type name."""

    __slots__ = ("value",)

    def __init__(self, value: Any) -> None:
        self.value = value

    def __lt__(self, other: "_SortKey") -> bool:
        a, b = self.value, other.value
        if a is None:
            return b is not None
        if b is None:
            return False
        try:
            return bool(a < b)
        except TypeError:
            return str(type(a).__name__) < str(type(b).__name__)


def _ordered(
    stmt: ast.Select, key_rows: list[Row], payload: list[Any]
) -> list[Any]:
    """Sort ``payload`` by the ORDER BY keys evaluated over ``key_rows``.

    ``key_rows[i]`` supplies the column values used to sort
    ``payload[i]`` — either the source row (plain queries) or the
    projected row (grouped queries).  Stable multi-key sort applied
    right-to-left so per-key ASC/DESC composes correctly.
    """
    indexed = list(range(len(payload)))
    for item in reversed(stmt.order_by):

        def single_key(i: int, it: ast.OrderItem = item) -> _SortKey:
            try:
                return _SortKey(evaluate_expr(it.expr, key_rows[i]))
            except SqlExecutionError:
                return _SortKey(None)

        if item.descending:
            # Reverse sort must keep None-first overall ordering stable:
            # sort ascending on the negated comparator via reverse=True.
            indexed.sort(key=single_key, reverse=True)
        else:
            indexed.sort(key=single_key)
    return [payload[i] for i in indexed]


# ----------------------------------------------------------------------
# Full statement dispatch
# ----------------------------------------------------------------------
def execute(stmt: ast.Statement, db: "Database") -> Any:
    """Execute any statement against a Database.

    Returns a :class:`SelectResult` for SELECT and an affected-row count
    for DML/DDL.
    """
    from repro.sql.database import Database  # local import to avoid a cycle

    assert isinstance(db, Database)
    return db.execute_ast(stmt)
