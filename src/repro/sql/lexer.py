"""SQL lexer.

Hand-written single-pass scanner producing a flat token list.  Keywords
are case-insensitive; identifiers preserve case (GLUE group and attribute
names are CamelCase, e.g. ``Processor.ClockSpeed``).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.sql.errors import SqlParseError


class TokenType(enum.Enum):
    IDENT = "IDENT"
    KEYWORD = "KEYWORD"
    NUMBER = "NUMBER"
    STRING = "STRING"
    OPERATOR = "OPERATOR"
    PUNCT = "PUNCT"
    EOF = "EOF"


#: Reserved words recognised as keywords (upper-cased canonical form).
KEYWORDS = frozenset(
    """
    SELECT FROM WHERE AND OR NOT IN LIKE BETWEEN IS NULL TRUE FALSE
    ORDER BY ASC DESC LIMIT OFFSET GROUP HAVING DISTINCT AS
    INSERT INTO VALUES UPDATE SET DELETE CREATE DROP TABLE IF EXISTS
    COUNT SUM AVG MIN MAX
    INTEGER REAL TEXT BOOLEAN TIMESTAMP
    """.split()
)

_OPERATORS = ("<=", ">=", "<>", "!=", "=", "<", ">", "+", "-", "*", "/", "%")
_PUNCT = "(),.;"


@dataclass(frozen=True)
class Token:
    """One lexical token with its source position (for error messages).

    ``raw`` preserves the source spelling for keywords (``value`` is the
    upper-cased canonical form) so that keywords doubling as identifiers
    — a column named ``Timestamp`` — keep their case.
    """

    type: TokenType
    value: str
    pos: int
    raw: str = ""

    def is_keyword(self, *names: str) -> bool:
        return self.type is TokenType.KEYWORD and self.value in names


class Lexer:
    """Tokenise a SQL string.

    >>> [t.value for t in Lexer("SELECT * FROM Processor").tokens()][:4]
    ['SELECT', '*', 'FROM', 'Processor']
    """

    def __init__(self, text: str) -> None:
        self.text = text
        self.pos = 0

    def tokens(self) -> list[Token]:
        out: list[Token] = []
        while True:
            tok = self._next()
            out.append(tok)
            if tok.type is TokenType.EOF:
                return out

    # ------------------------------------------------------------------
    def _next(self) -> Token:
        text, n = self.text, len(self.text)
        while self.pos < n and text[self.pos].isspace():
            self.pos += 1
        if self.pos >= n:
            return Token(TokenType.EOF, "", self.pos)
        start = self.pos
        ch = text[start]

        if ch == "'" or ch == '"':
            return self._string(ch)
        if ch.isdigit() or (ch == "." and start + 1 < n and text[start + 1].isdigit()):
            return self._number()
        if ch.isalpha() or ch == "_":
            return self._word()
        for op in _OPERATORS:
            if text.startswith(op, start):
                self.pos += len(op)
                return Token(TokenType.OPERATOR, op, start)
        if ch in _PUNCT:
            self.pos += 1
            return Token(TokenType.PUNCT, ch, start)
        raise SqlParseError(f"unexpected character {ch!r} at position {start}", start)

    def _string(self, quote: str) -> Token:
        start = self.pos
        self.pos += 1
        buf: list[str] = []
        text, n = self.text, len(self.text)
        while self.pos < n:
            ch = text[self.pos]
            if ch == quote:
                # Doubled quote is an escaped quote ('' -> ').
                if self.pos + 1 < n and text[self.pos + 1] == quote:
                    buf.append(quote)
                    self.pos += 2
                    continue
                self.pos += 1
                return Token(TokenType.STRING, "".join(buf), start)
            buf.append(ch)
            self.pos += 1
        raise SqlParseError(f"unterminated string starting at {start}", start)

    def _number(self) -> Token:
        start = self.pos
        text, n = self.text, len(self.text)
        seen_dot = False
        while self.pos < n and (text[self.pos].isdigit() or text[self.pos] == "."):
            if text[self.pos] == ".":
                if seen_dot:
                    break
                seen_dot = True
            self.pos += 1
        # Exponent suffix (1e-3).
        if self.pos < n and text[self.pos] in "eE":
            save = self.pos
            self.pos += 1
            if self.pos < n and text[self.pos] in "+-":
                self.pos += 1
            if self.pos < n and text[self.pos].isdigit():
                while self.pos < n and text[self.pos].isdigit():
                    self.pos += 1
            else:
                self.pos = save
        return Token(TokenType.NUMBER, text[start : self.pos], start)

    def _word(self) -> Token:
        start = self.pos
        text, n = self.text, len(self.text)
        while self.pos < n and (text[self.pos].isalnum() or text[self.pos] == "_"):
            self.pos += 1
        word = text[start : self.pos]
        upper = word.upper()
        if upper in KEYWORDS:
            return Token(TokenType.KEYWORD, upper, start, raw=word)
        return Token(TokenType.IDENT, word, start)
