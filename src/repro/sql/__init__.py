"""SQL substrate.

GridRM uses SQL pervasively: clients query GLUE groups with ``SELECT``
statements, drivers receive the same strings, and the gateway's historical
store is relational (paper §3).  This package is a from-scratch SQL engine
covering the dialect GridRM needs:

* ``SELECT [DISTINCT] ... FROM t [WHERE ...] [GROUP BY ...] [ORDER BY ...]
  [LIMIT n]`` with aggregates (COUNT/SUM/AVG/MIN/MAX), arithmetic,
  comparison, ``LIKE``/``IN``/``BETWEEN``/``IS NULL``, AND/OR/NOT.
* ``INSERT INTO``, ``UPDATE``, ``DELETE``, ``CREATE TABLE``, ``DROP TABLE``.

The lexer/parser (:mod:`repro.sql.parser`) is also reused standalone by
data-source drivers — the paper ships "a class to parse the SQL query
strings ... as part of a GridRM driver development API" (§3.2.1).
"""

from repro.sql.errors import SqlError, SqlParseError, SqlExecutionError
from repro.sql.lexer import Lexer, Token, TokenType
from repro.sql.parser import parse_statement, parse_select
from repro.sql.database import Database, Table
from repro.sql.executor import execute, evaluate_predicate
from repro.sql import ast_nodes as ast

__all__ = [
    "SqlError",
    "SqlParseError",
    "SqlExecutionError",
    "Lexer",
    "Token",
    "TokenType",
    "parse_statement",
    "parse_select",
    "Database",
    "Table",
    "execute",
    "evaluate_predicate",
    "ast",
]
