"""SQL abstract syntax tree.

Plain frozen dataclasses; the executor pattern-matches on node type.
Expressions evaluate against a row mapping (column name -> value).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union


# ----------------------------------------------------------------------
# Expressions
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Literal:
    """A constant: number, string, boolean or NULL (``value is None``)."""

    value: object


@dataclass(frozen=True)
class Column:
    """A column reference, optionally table-qualified (``t.col``)."""

    name: str
    table: Optional[str] = None

    @property
    def qualified(self) -> str:
        return f"{self.table}.{self.name}" if self.table else self.name


@dataclass(frozen=True)
class Star:
    """``*`` — all columns (optionally ``t.*``)."""

    table: Optional[str] = None


@dataclass(frozen=True)
class BinOp:
    """Binary operation: arithmetic, comparison, AND/OR, LIKE."""

    op: str
    left: "Expr"
    right: "Expr"


@dataclass(frozen=True)
class UnaryOp:
    """Unary operation: NOT, negation."""

    op: str
    operand: "Expr"


@dataclass(frozen=True)
class InList:
    """``expr [NOT] IN (v1, v2, ...)``."""

    expr: "Expr"
    items: tuple["Expr", ...]
    negated: bool = False


@dataclass(frozen=True)
class Between:
    """``expr [NOT] BETWEEN low AND high``."""

    expr: "Expr"
    low: "Expr"
    high: "Expr"
    negated: bool = False


@dataclass(frozen=True)
class IsNull:
    """``expr IS [NOT] NULL``."""

    expr: "Expr"
    negated: bool = False


@dataclass(frozen=True)
class FuncCall:
    """Aggregate or scalar function call.  ``COUNT(*)`` has ``star=True``."""

    name: str
    args: tuple["Expr", ...] = ()
    star: bool = False
    distinct: bool = False


Expr = Union[Literal, Column, Star, BinOp, UnaryOp, InList, Between, IsNull, FuncCall]

#: Aggregate function names understood by the executor.
AGGREGATES = frozenset({"COUNT", "SUM", "AVG", "MIN", "MAX"})


def contains_aggregate(expr: Expr) -> bool:
    """Whether any aggregate call appears anywhere in ``expr``."""
    if isinstance(expr, FuncCall):
        if expr.name in AGGREGATES:
            return True
        return any(contains_aggregate(a) for a in expr.args)
    if isinstance(expr, BinOp):
        return contains_aggregate(expr.left) or contains_aggregate(expr.right)
    if isinstance(expr, UnaryOp):
        return contains_aggregate(expr.operand)
    if isinstance(expr, InList):
        return contains_aggregate(expr.expr) or any(
            contains_aggregate(i) for i in expr.items
        )
    if isinstance(expr, Between):
        return (
            contains_aggregate(expr.expr)
            or contains_aggregate(expr.low)
            or contains_aggregate(expr.high)
        )
    if isinstance(expr, IsNull):
        return contains_aggregate(expr.expr)
    return False


def columns_in(expr: Expr) -> set[str]:
    """All column names referenced anywhere in ``expr`` (unqualified)."""
    out: set[str] = set()

    def walk(e: Expr) -> None:
        if isinstance(e, Column):
            out.add(e.name)
        elif isinstance(e, BinOp):
            walk(e.left)
            walk(e.right)
        elif isinstance(e, UnaryOp):
            walk(e.operand)
        elif isinstance(e, InList):
            walk(e.expr)
            for i in e.items:
                walk(i)
        elif isinstance(e, Between):
            walk(e.expr)
            walk(e.low)
            walk(e.high)
        elif isinstance(e, IsNull):
            walk(e.expr)
        elif isinstance(e, FuncCall):
            for a in e.args:
                walk(a)

    walk(expr)
    return out


# ----------------------------------------------------------------------
# Statements
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SelectItem:
    """One projected expression with an optional alias."""

    expr: Expr
    alias: Optional[str] = None


@dataclass(frozen=True)
class OrderItem:
    """One ORDER BY key."""

    expr: Expr
    descending: bool = False


@dataclass(frozen=True)
class Select:
    """A SELECT statement.

    ``table`` is the primary relation.  GridRM lets clients "select one
    or more GLUE group names to query" (paper §3.2.3): additional groups
    appear in ``extra_tables`` (``FROM Processor, MainMemory``) and are
    natural-joined by the gateway's RequestManager — individual drivers
    always see single-group statements.
    """

    items: tuple[SelectItem, ...]
    table: str
    where: Optional[Expr] = None
    group_by: tuple[Expr, ...] = ()
    having: Optional[Expr] = None
    order_by: tuple[OrderItem, ...] = ()
    limit: Optional[int] = None
    offset: Optional[int] = None
    distinct: bool = False
    extra_tables: tuple[str, ...] = ()

    @property
    def tables(self) -> tuple[str, ...]:
        """All relations named in FROM, primary first."""
        return (self.table,) + self.extra_tables

    @property
    def is_join(self) -> bool:
        return bool(self.extra_tables)

    @property
    def is_star(self) -> bool:
        return len(self.items) == 1 and isinstance(self.items[0].expr, Star)

    def projected_names(self) -> list[str]:
        """Output column labels for non-star projections."""
        names: list[str] = []
        for item in self.items:
            if item.alias:
                names.append(item.alias)
            elif isinstance(item.expr, Column):
                names.append(item.expr.name)
            elif isinstance(item.expr, FuncCall):
                if item.expr.star:
                    names.append(f"{item.expr.name}(*)")
                else:
                    inner = ", ".join(
                        a.name if isinstance(a, Column) else "expr"
                        for a in item.expr.args
                    )
                    names.append(f"{item.expr.name}({inner})")
            else:
                names.append("expr")
        return names


@dataclass(frozen=True)
class Insert:
    """``INSERT INTO t (c1, c2) VALUES (v1, v2), ...``."""

    table: str
    columns: tuple[str, ...]
    rows: tuple[tuple[Expr, ...], ...]


@dataclass(frozen=True)
class Update:
    """``UPDATE t SET c = expr, ... [WHERE ...]``."""

    table: str
    assignments: tuple[tuple[str, Expr], ...]
    where: Optional[Expr] = None


@dataclass(frozen=True)
class Delete:
    """``DELETE FROM t [WHERE ...]``."""

    table: str
    where: Optional[Expr] = None


@dataclass(frozen=True)
class ColumnDef:
    """One column in a CREATE TABLE: name plus declared type keyword."""

    name: str
    type: str = "TEXT"


@dataclass(frozen=True)
class CreateTable:
    """``CREATE TABLE [IF NOT EXISTS] t (c TYPE, ...)``."""

    table: str
    columns: tuple[ColumnDef, ...]
    if_not_exists: bool = False


@dataclass(frozen=True)
class DropTable:
    """``DROP TABLE [IF EXISTS] t``."""

    table: str
    if_exists: bool = False


Statement = Union[Select, Insert, Update, Delete, CreateTable, DropTable]
