"""Render SQL AST nodes back to SQL text.

Used by the JDBC-SQL driver to push translated WHERE clauses down to
native relational sources, and by the gateway when forwarding client
queries to remote gateways verbatim.
"""

from __future__ import annotations

from repro.sql import ast_nodes as ast
from repro.sql.errors import SqlError


def _quote_str(s: str) -> str:
    return "'" + s.replace("'", "''") + "'"


def render_expr(expr: ast.Expr) -> str:
    """SQL text for an expression (parenthesised conservatively)."""
    if isinstance(expr, ast.Literal):
        v = expr.value
        if v is None:
            return "NULL"
        if isinstance(v, bool):
            return "TRUE" if v else "FALSE"
        if isinstance(v, (int, float)):
            return repr(v)
        return _quote_str(str(v))
    if isinstance(expr, ast.Column):
        return expr.qualified
    if isinstance(expr, ast.Star):
        return f"{expr.table}.*" if expr.table else "*"
    if isinstance(expr, ast.BinOp):
        return f"({render_expr(expr.left)} {expr.op} {render_expr(expr.right)})"
    if isinstance(expr, ast.UnaryOp):
        if expr.op == "NOT":
            return f"(NOT {render_expr(expr.operand)})"
        return f"({expr.op}{render_expr(expr.operand)})"
    if isinstance(expr, ast.InList):
        items = ", ".join(render_expr(i) for i in expr.items)
        neg = "NOT " if expr.negated else ""
        return f"({render_expr(expr.expr)} {neg}IN ({items}))"
    if isinstance(expr, ast.Between):
        neg = "NOT " if expr.negated else ""
        return (
            f"({render_expr(expr.expr)} {neg}BETWEEN "
            f"{render_expr(expr.low)} AND {render_expr(expr.high)})"
        )
    if isinstance(expr, ast.IsNull):
        neg = "NOT " if expr.negated else ""
        return f"({render_expr(expr.expr)} IS {neg}NULL)"
    if isinstance(expr, ast.FuncCall):
        if expr.star:
            return f"{expr.name}(*)"
        inner = ", ".join(render_expr(a) for a in expr.args)
        distinct = "DISTINCT " if expr.distinct else ""
        return f"{expr.name}({distinct}{inner})"
    raise SqlError(f"cannot render {type(expr).__name__}")


def render_select(stmt: ast.Select) -> str:
    """SQL text for a SELECT statement."""
    parts = ["SELECT"]
    if stmt.distinct:
        parts.append("DISTINCT")
    items = []
    for item in stmt.items:
        text = render_expr(item.expr)
        if item.alias:
            text += f" AS {item.alias}"
        items.append(text)
    parts.append(", ".join(items))
    parts.append("FROM " + ", ".join(stmt.tables))
    if stmt.where is not None:
        parts.append(f"WHERE {render_expr(stmt.where)}")
    if stmt.group_by:
        parts.append("GROUP BY " + ", ".join(render_expr(g) for g in stmt.group_by))
    if stmt.having is not None:
        parts.append(f"HAVING {render_expr(stmt.having)}")
    if stmt.order_by:
        keys = []
        for o in stmt.order_by:
            keys.append(render_expr(o.expr) + (" DESC" if o.descending else " ASC"))
        parts.append("ORDER BY " + ", ".join(keys))
    if stmt.limit is not None:
        parts.append(f"LIMIT {stmt.limit}")
    if stmt.offset is not None:
        parts.append(f"OFFSET {stmt.offset}")
    return " ".join(parts)


def rewrite_columns(expr: ast.Expr, renames: dict[str, str]) -> ast.Expr | None:
    """Rewrite column references via ``renames`` (GLUE name -> native name).

    Returns None when the expression touches a column with no rename —
    the caller then skips pushdown for that (sub)expression.
    """
    if isinstance(expr, ast.Literal):
        return expr
    if isinstance(expr, ast.Column):
        native = renames.get(expr.name)
        if native is None:
            return None
        return ast.Column(name=native)
    if isinstance(expr, ast.BinOp):
        left = rewrite_columns(expr.left, renames)
        right = rewrite_columns(expr.right, renames)
        if left is None or right is None:
            return None
        return ast.BinOp(op=expr.op, left=left, right=right)
    if isinstance(expr, ast.UnaryOp):
        inner = rewrite_columns(expr.operand, renames)
        return None if inner is None else ast.UnaryOp(op=expr.op, operand=inner)
    if isinstance(expr, ast.InList):
        inner = rewrite_columns(expr.expr, renames)
        items = [rewrite_columns(i, renames) for i in expr.items]
        if inner is None or any(i is None for i in items):
            return None
        return ast.InList(expr=inner, items=tuple(items), negated=expr.negated)  # type: ignore[arg-type]
    if isinstance(expr, ast.Between):
        inner = rewrite_columns(expr.expr, renames)
        low = rewrite_columns(expr.low, renames)
        high = rewrite_columns(expr.high, renames)
        if inner is None or low is None or high is None:
            return None
        return ast.Between(expr=inner, low=low, high=high, negated=expr.negated)
    if isinstance(expr, ast.IsNull):
        inner = rewrite_columns(expr.expr, renames)
        return None if inner is None else ast.IsNull(expr=inner, negated=expr.negated)
    # Aggregates and stars are never pushed down.
    return None
