"""In-memory relational database.

Backs three things in the reproduction: the gateway's historical store
(paper §3.1.1 routes historical queries to "the Gateway's internal
database"), the SQL data-source agent, and assorted tests.  Tables carry a
declared column list with light type coercion on insert.
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping, Sequence

from repro.sql import ast_nodes as ast
from repro.sql.errors import SqlExecutionError
from repro.sql.executor import SelectResult, evaluate_expr, evaluate_predicate, execute_select
from repro.sql.parser import parse_statement

_COERCERS = {
    "INTEGER": lambda v: int(v),
    "REAL": lambda v: float(v),
    "TEXT": lambda v: str(v),
    "BOOLEAN": lambda v: bool(v),
    "TIMESTAMP": lambda v: float(v),
}


class Table:
    """One named relation: ordered columns, declared types, row storage."""

    def __init__(self, name: str, columns: Sequence[ast.ColumnDef]) -> None:
        if not columns:
            raise SqlExecutionError(f"table {name!r} needs at least one column")
        names = [c.name for c in columns]
        if len(set(names)) != len(names):
            raise SqlExecutionError(f"duplicate column in table {name!r}")
        self.name = name
        self.columns = list(columns)
        self.column_names = names
        self.rows: list[dict[str, Any]] = []

    def coerce(self, column: ast.ColumnDef, value: Any) -> Any:
        if value is None:
            return None
        coercer = _COERCERS.get(column.type)
        if coercer is None:
            return value
        try:
            return coercer(value)
        except (TypeError, ValueError) as exc:
            raise SqlExecutionError(
                f"cannot coerce {value!r} to {column.type} for "
                f"{self.name}.{column.name}"
            ) from exc

    def insert_row(self, values: Mapping[str, Any]) -> None:
        """Insert one row given as a column->value mapping."""
        unknown = set(values) - set(self.column_names)
        if unknown:
            raise SqlExecutionError(
                f"unknown column(s) {sorted(unknown)} for table {self.name!r}"
            )
        row: dict[str, Any] = {}
        for col in self.columns:
            row[col.name] = self.coerce(col, values.get(col.name))
        self.rows.append(row)

    def __len__(self) -> int:
        return len(self.rows)


class Database:
    """A set of tables addressable by SQL text or pre-parsed statements.

    >>> db = Database()
    >>> db.execute("CREATE TABLE m (host TEXT, load REAL)")
    0
    >>> db.execute("INSERT INTO m (host, load) VALUES ('a', 0.5)")
    1
    >>> db.execute("SELECT load FROM m WHERE host = 'a'").rows
    [[0.5]]
    """

    def __init__(self) -> None:
        self.tables: dict[str, Table] = {}

    # ------------------------------------------------------------------
    def create_table(
        self,
        name: str,
        columns: Sequence[ast.ColumnDef | tuple[str, str] | str],
        *,
        if_not_exists: bool = False,
    ) -> Table:
        """Programmatic CREATE TABLE; columns may be names, pairs or defs."""
        if name in self.tables:
            if if_not_exists:
                return self.tables[name]
            raise SqlExecutionError(f"table already exists: {name!r}")
        defs: list[ast.ColumnDef] = []
        for c in columns:
            if isinstance(c, ast.ColumnDef):
                defs.append(c)
            elif isinstance(c, tuple):
                defs.append(ast.ColumnDef(name=c[0], type=c[1]))
            else:
                defs.append(ast.ColumnDef(name=c))
        table = Table(name, defs)
        self.tables[name] = table
        return table

    def table(self, name: str) -> Table:
        t = self.tables.get(name)
        if t is None:
            raise SqlExecutionError(f"no such table: {name!r}")
        return t

    def insert_rows(self, name: str, rows: Iterable[Mapping[str, Any]]) -> int:
        """Bulk insert of mappings; returns the number inserted."""
        table = self.table(name)
        n = 0
        for r in rows:
            table.insert_row(r)
            n += 1
        return n

    # ------------------------------------------------------------------
    def execute(self, sql: str) -> Any:
        """Parse and execute one statement of SQL text."""
        return self.execute_ast(parse_statement(sql))

    def execute_ast(self, stmt: ast.Statement) -> Any:
        if isinstance(stmt, ast.Select):
            if stmt.is_join:
                from repro.sql.executor import natural_join

                relations = [
                    (self.table(name).column_names, self.table(name).rows)
                    for name in stmt.tables
                ]
                columns, rows = natural_join(relations)
                return execute_select(stmt, columns, rows)
            table = self.table(stmt.table)
            return execute_select(stmt, table.column_names, table.rows)
        if isinstance(stmt, ast.Insert):
            table = self.table(stmt.table)
            empty: dict[str, Any] = {}
            for values in stmt.rows:
                mapping = {
                    col: evaluate_expr(v, empty)
                    for col, v in zip(stmt.columns, values)
                }
                table.insert_row(mapping)
            return len(stmt.rows)
        if isinstance(stmt, ast.Update):
            table = self.table(stmt.table)
            coldefs = {c.name: c for c in table.columns}
            for name, _ in stmt.assignments:
                if name not in coldefs:
                    raise SqlExecutionError(
                        f"unknown column {name!r} in UPDATE {stmt.table}"
                    )
            n = 0
            for row in table.rows:
                if evaluate_predicate(stmt.where, row):
                    for name, expr in stmt.assignments:
                        row[name] = table.coerce(coldefs[name], evaluate_expr(expr, row))
                    n += 1
            return n
        if isinstance(stmt, ast.Delete):
            table = self.table(stmt.table)
            before = len(table.rows)
            table.rows = [
                r for r in table.rows if not evaluate_predicate(stmt.where, r)
            ]
            return before - len(table.rows)
        if isinstance(stmt, ast.CreateTable):
            self.create_table(
                stmt.table, stmt.columns, if_not_exists=stmt.if_not_exists
            )
            return 0
        if isinstance(stmt, ast.DropTable):
            if stmt.table not in self.tables:
                if stmt.if_exists:
                    return 0
                raise SqlExecutionError(f"no such table: {stmt.table!r}")
            del self.tables[stmt.table]
            return 0
        raise SqlExecutionError(f"unsupported statement {type(stmt).__name__}")

    def query(self, sql: str) -> SelectResult:
        """Execute SQL text that must be a SELECT."""
        result = self.execute(sql)
        if not isinstance(result, SelectResult):
            raise SqlExecutionError("query() requires a SELECT statement")
        return result
