"""SQL engine error hierarchy."""

from __future__ import annotations


class SqlError(Exception):
    """Base class for all SQL engine failures."""


class SqlParseError(SqlError):
    """The statement text is not valid in the supported dialect."""

    def __init__(self, message: str, position: int = -1) -> None:
        super().__init__(message)
        self.position = position


class SqlExecutionError(SqlError):
    """The statement parsed but could not be executed (missing table,
    unknown column, type error, ...)."""
