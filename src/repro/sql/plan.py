"""Compiled query plans.

The interpreted executor (:mod:`repro.sql.executor`) re-walks the SELECT
AST for every row: each column reference re-resolves its name against the
row mapping, each LIKE recompiles (pre-memoisation) its regex, and every
operator dispatch is an ``isinstance`` ladder.  This module compiles a
parsed :class:`~repro.sql.ast_nodes.Select` **once** into closures:

* :func:`compile_plan` produces a :class:`CompiledPlan` — a layout-
  independent holder for the statement;
* ``plan.bind(columns)`` resolves every column name to a tuple-slot index
  against a concrete column layout and returns a :class:`BoundPlan`
  whose ``execute(rows)`` evaluates predicate/projection/ordering/
  aggregation over **positional rows** (lists), building no per-row
  dicts;
* ``plan.bind_mapping(columns)`` is the same machinery bound over
  mapping rows (the history store's dict storage), with each column
  name resolved to its canonical key once at bind time instead of once
  per row.

Bindings are cached per layout on the plan, so repeated queries pay the
closure-construction cost once.

Semantics are **byte-identical** to the interpreted executor — NULL
tri-state logic, AND/OR short-circuiting, numeric-string coercion, the
case-insensitive column fallback, alias-aware ORDER BY, error messages —
and a differential property test (``tests/test_sql_plan.py``) enforces
the equivalence over generated queries.  The interpreted path remains
both the fallback and the testing oracle.

:func:`join_rows` is the positional mirror of
:func:`~repro.sql.executor.natural_join` for the gateway's multi-group
join path.
"""

from __future__ import annotations

import operator
from typing import Any, Callable, Mapping, Sequence

from repro.sql import ast_nodes as ast
from repro.sql.errors import SqlExecutionError
from repro.sql.executor import (
    SelectResult,
    _aggregate_values,
    _apply_binop_values,
    _coerce_pair,
    _hashable,
    _SortKey,
    compile_like,
)

#: A compiled accessor/evaluator over one row (positional or mapping).
RowFn = Callable[[Any], Any]
#: A compiled evaluator over one group: (member rows, sample row) -> value.
GroupFn = Callable[[list[Any], Any], Any]

#: Slot-flavour sample row for an empty implicit group: every accessor
#: raises "unknown column" against it, matching the interpreted
#: executor's empty-dict sample.
_EMPTY_SLOT_ROW: tuple[Any, ...] = ()


def _last_index(columns: Sequence[str], name: str) -> int:
    """Index of the *last* occurrence of ``name`` (dict-build semantics:
    when a layout carries a duplicate label, the later value wins, as it
    does in ``dict(zip(columns, row))``)."""
    for i in range(len(columns) - 1, -1, -1):
        if columns[i] == name:
            return i
    raise ValueError(name)


def _resolve_slot(columns: Sequence[str], column: ast.Column) -> int | None:
    """Resolve a column reference to a slot index, or None when absent.

    Mirrors ``evaluate_expr``'s resolution against a dict row whose keys
    are ``columns``: exact name, then qualified name, then a
    case-insensitive scan in key order (first distinct key that matches,
    reading the last duplicate occurrence's value).
    """
    if column.name in columns:
        return _last_index(columns, column.name)
    qualified = column.qualified
    if qualified != column.name and qualified in columns:
        return _last_index(columns, qualified)
    lowered = column.name.lower()
    seen: set[str] = set()
    for c in columns:
        if c in seen:
            continue
        seen.add(c)
        if c.lower() == lowered:
            return _last_index(columns, c)
    return None


def _raise_unknown(qualified: str) -> Any:
    raise SqlExecutionError(f"unknown column: {qualified!r}")


def _slow_mapping_lookup(row: Mapping[str, Any], name: str, qualified: str) -> Any:
    """The interpreted executor's column resolution, verbatim — the
    mapping-flavour fallback when a row lacks the bind-time key."""
    if name in row:
        return row[name]
    if qualified in row:
        return row[qualified]
    lowered = name.lower()
    for key in row:
        if key.lower() == lowered:
            return row[key]
    raise SqlExecutionError(f"unknown column: {qualified!r}")


class _SlotFlavour:
    """Rows are positional lists; columns resolve to slot indices."""

    __slots__ = ("columns",)

    def __init__(self, columns: Sequence[str]) -> None:
        self.columns = list(columns)

    def resolve(self, column: ast.Column) -> RowFn:
        index = _resolve_slot(self.columns, column)
        qualified = column.qualified
        if index is None:
            return lambda row: _raise_unknown(qualified)

        def accessor(row: Any, i: int = index, q: str = qualified) -> Any:
            try:
                return row[i]
            except IndexError:
                return _raise_unknown(q)

        return accessor

    def empty_sample(self) -> Any:
        return _EMPTY_SLOT_ROW

    def star_rows(self, filtered: list[Any]) -> list[list[Any]]:
        # Positional rows under this layout ARE the star projection:
        # adopt them without building per-row copies (zero-copy path).
        # Duplicate labels are the one exception — the interpreter's
        # dict round-trip makes the last occurrence's value show at
        # every duplicate position, so mirror that explicitly.
        cols = self.columns
        if len(set(cols)) != len(cols):
            idx = [_last_index(cols, c) for c in cols]
            return [[row[i] for i in idx] for row in filtered]
        return filtered


class _MappingFlavour:
    """Rows are mappings; column names resolve to canonical keys once."""

    __slots__ = ("columns",)

    def __init__(self, columns: Sequence[str]) -> None:
        self.columns = list(columns)

    def resolve(self, column: ast.Column) -> RowFn:
        index = _resolve_slot(self.columns, column)
        name, qualified = column.name, column.qualified
        if index is None:
            return lambda row: _slow_mapping_lookup(row, name, qualified)
        key = self.columns[index]

        def accessor(
            row: Any, k: str = key, n: str = name, q: str = qualified
        ) -> Any:
            try:
                return row[k]
            except KeyError:
                return _slow_mapping_lookup(row, n, q)

        return accessor

    def empty_sample(self) -> Any:
        return {}

    def star_rows(self, filtered: list[Any]) -> list[list[Any]]:
        cols = self.columns
        return [[r.get(c) for c in cols] for r in filtered]


_Flavour = _SlotFlavour | _MappingFlavour


# ----------------------------------------------------------------------
# Expression compilation (row-level)
# ----------------------------------------------------------------------
def _compile_expr(expr: ast.Expr, flavour: _Flavour) -> RowFn:
    """Compile an expression to a closure over one row.

    Compilation is total: anything the interpreted executor rejects at
    evaluation time compiles to a closure raising the identical
    :class:`SqlExecutionError` when (and only when) evaluated.
    """
    if isinstance(expr, ast.Literal):
        value = expr.value
        return lambda row: value
    if isinstance(expr, ast.Column):
        return flavour.resolve(expr)
    if isinstance(expr, ast.Star):
        def star_error(row: Any) -> Any:
            raise SqlExecutionError(
                "'*' is only valid as a projection or in COUNT(*)"
            )
        return star_error
    if isinstance(expr, ast.UnaryOp):
        inner = _compile_expr(expr.operand, flavour)
        if expr.op == "NOT":
            def not_fn(row: Any) -> Any:
                val = inner(row)
                if val is None:
                    return None
                return not bool(val)
            return not_fn
        if expr.op == "-":
            def neg_fn(row: Any) -> Any:
                val = inner(row)
                if val is None:
                    return None
                return -val
            return neg_fn
        bad_op = expr.op

        def unary_error(row: Any) -> Any:
            inner(row)
            raise SqlExecutionError(f"unknown unary operator {bad_op!r}")
        return unary_error
    if isinstance(expr, ast.BinOp):
        return _compile_binop(expr, flavour)
    if isinstance(expr, ast.InList):
        target = _compile_expr(expr.expr, flavour)
        items = [_compile_expr(i, flavour) for i in expr.items]
        negated = expr.negated

        def in_fn(row: Any) -> Any:
            val = target(row)
            if val is None:
                return None
            found = False
            for item in items:
                a, b = _coerce_pair(val, item(row))
                if a == b:
                    found = True
                    break
            return (not found) if negated else found
        return in_fn
    if isinstance(expr, ast.Between):
        target = _compile_expr(expr.expr, flavour)
        low = _compile_expr(expr.low, flavour)
        high = _compile_expr(expr.high, flavour)
        negated = expr.negated

        def between_fn(row: Any) -> Any:
            val = target(row)
            lo = low(row)
            hi = high(row)
            if val is None or lo is None or hi is None:
                return None
            a, l_ = _coerce_pair(val, lo)
            a2, h = _coerce_pair(val, hi)
            result = l_ <= a and a2 <= h
            return (not result) if negated else result
        return between_fn
    if isinstance(expr, ast.IsNull):
        target = _compile_expr(expr.expr, flavour)
        negated = expr.negated

        def isnull_fn(row: Any) -> Any:
            val = target(row)
            return (val is not None) if negated else (val is None)
        return isnull_fn
    if isinstance(expr, ast.FuncCall):
        func_name = expr.name

        def agg_error(row: Any) -> Any:
            raise SqlExecutionError(
                f"aggregate {func_name} used outside an aggregating query"
            )
        return agg_error
    type_name = type(expr).__name__

    def unknown_error(row: Any) -> Any:
        raise SqlExecutionError(f"cannot evaluate {type_name}")
    return unknown_error


#: Operators whose value-level form is a plain binary function (the
#: zero-divisor ops and AND/OR/LIKE need their own closures).
_DIRECT_OPS: dict[str, Callable[[Any, Any], Any]] = {
    "=": operator.eq,
    "!=": operator.ne,
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
    "+": operator.add,
    "-": operator.sub,
    "*": operator.mul,
}


def _compile_binop(expr: ast.BinOp, flavour: _Flavour) -> RowFn:
    op = expr.op
    left = _compile_expr(expr.left, flavour)
    if op == "AND":
        right = _compile_expr(expr.right, flavour)

        def and_fn(row: Any) -> Any:
            lv = left(row)
            if lv is not None and not lv:
                return False
            rv = right(row)
            if rv is not None and not rv:
                return False
            if lv is None or rv is None:
                return None
            return True
        return and_fn
    if op == "OR":
        right = _compile_expr(expr.right, flavour)

        def or_fn(row: Any) -> Any:
            lv = left(row)
            if lv is not None and lv:
                return True
            rv = right(row)
            if rv is not None and rv:
                return True
            if lv is None or rv is None:
                return None
            return False
        return or_fn
    if (
        op == "LIKE"
        and isinstance(expr.right, ast.Literal)
        and expr.right.value is not None
    ):
        # The common shape — a constant pattern — compiles its regex
        # exactly once, at plan-compile time.
        pattern = compile_like(str(expr.right.value))

        def like_fn(row: Any) -> Any:
            lv = left(row)
            if lv is None:
                return None
            return pattern.match(str(lv)) is not None
        return like_fn
    right = _compile_expr(expr.right, flavour)
    fn = _DIRECT_OPS.get(op)
    if fn is not None:
        # Hot path: prebound operator function, no dispatch ladder.  The
        # None / coercion / error behaviour mirrors _apply_binop_values
        # exactly (the differential oracle holds both to the letter).
        def direct_fn(row: Any) -> Any:
            lv = left(row)
            rv = right(row)
            if lv is None or rv is None:
                return None
            a, b = _coerce_pair(lv, rv)
            try:
                return fn(a, b)
            except TypeError as exc:
                raise SqlExecutionError(
                    f"type error in {op!r}: "
                    f"{type(lv).__name__} vs {type(rv).__name__}"
                ) from exc
        return direct_fn
    if op in ("/", "%"):
        div = operator.truediv if op == "/" else operator.mod

        def div_fn(row: Any) -> Any:
            lv = left(row)
            rv = right(row)
            if lv is None or rv is None:
                return None
            a, b = _coerce_pair(lv, rv)
            try:
                if b == 0:
                    return None
                return div(a, b)
            except TypeError as exc:
                raise SqlExecutionError(
                    f"type error in {op!r}: "
                    f"{type(lv).__name__} vs {type(rv).__name__}"
                ) from exc
        return div_fn

    def binop_fn(row: Any) -> Any:
        return _apply_binop_values(op, left(row), right(row))
    return binop_fn


def _compile_predicate(
    where: ast.Expr | None, flavour: _Flavour
) -> RowFn | None:
    """WHERE clause -> bool closure (NULL counts false); None = no filter."""
    if where is None:
        return None
    inner = _compile_expr(where, flavour)

    def predicate(row: Any) -> bool:
        value = inner(row)
        return bool(value) if value is not None else False
    return predicate


# ----------------------------------------------------------------------
# Aggregate compilation (group-level)
# ----------------------------------------------------------------------
def _compile_aggregate(call: ast.FuncCall, flavour: _Flavour) -> GroupFn:
    if call.star:
        if call.name != "COUNT":
            message = f"{call.name}(*) is not valid"

            def star_error(rows: list[Any], sample: Any) -> Any:
                raise SqlExecutionError(message)
            return star_error
        return lambda rows, sample: len(rows)
    if len(call.args) != 1:
        arity_message = f"{call.name} takes exactly one argument"

        def arity_error(rows: list[Any], sample: Any) -> Any:
            raise SqlExecutionError(arity_message)
        return arity_error
    arg = _compile_expr(call.args[0], flavour)
    name = call.name
    distinct = call.distinct

    def aggregate(rows: list[Any], sample: Any) -> Any:
        values = [arg(r) for r in rows]
        return _aggregate_values(name, values, distinct)
    return aggregate


def _compile_agg_expr(expr: ast.Expr, flavour: _Flavour) -> GroupFn:
    """Compile an expression that may contain aggregate calls.

    Mirrors ``_eval_with_aggregates``: aggregates reduce the member
    rows, BinOp/UnaryOp combine already-computed values (both operands
    evaluated — no short-circuit, as in the interpreted path), and
    anything else evaluates against the group's sample row.
    """
    if isinstance(expr, ast.FuncCall) and expr.name in ast.AGGREGATES:
        return _compile_aggregate(expr, flavour)
    if isinstance(expr, ast.BinOp):
        left = _compile_agg_expr(expr.left, flavour)
        right = _compile_agg_expr(expr.right, flavour)
        op = expr.op

        def binop(rows: list[Any], sample: Any) -> Any:
            return _apply_binop_values(op, left(rows, sample), right(rows, sample))
        return binop
    if isinstance(expr, ast.UnaryOp):
        inner = _compile_agg_expr(expr.operand, flavour)
        op = expr.op

        def unary(rows: list[Any], sample: Any) -> Any:
            val = inner(rows, sample)
            if op == "NOT":
                return None if val is None else (not bool(val))
            if op == "-":
                return None if val is None else -val
            raise SqlExecutionError(f"unknown unary operator {op!r}")
        return unary
    plain = _compile_expr(expr, flavour)
    return lambda rows, sample: plain(sample)


# ----------------------------------------------------------------------
# Ordering
# ----------------------------------------------------------------------
def _sort_payload(
    order_keys: list[tuple[RowFn, bool]], key_rows: list[Any], payload: list[Any]
) -> list[Any]:
    """The interpreted ``_ordered`` over compiled key closures: stable
    multi-key sort applied right-to-left, None-first, evaluation errors
    sorting as None."""
    indexed = list(range(len(payload)))
    for key_fn, descending in reversed(order_keys):
        values = []
        for r in key_rows:
            try:
                values.append(key_fn(r))
            except SqlExecutionError:
                values.append(None)
        # Homogeneous keys (all numbers, or all strings — no NULLs) sort
        # identically raw, because _SortKey's total order reduces to the
        # native one when every pairwise comparison is defined.  That is
        # the overwhelmingly common case and skips one wrapper object +
        # one Python __lt__ frame per comparison.
        if all(type(v) is str for v in values) or all(
            isinstance(v, (int, float)) for v in values
        ):
            indexed.sort(key=values.__getitem__, reverse=descending)
        else:
            indexed.sort(
                key=lambda i: _SortKey(values[i]), reverse=descending
            )
    return [payload[i] for i in indexed]


# ----------------------------------------------------------------------
# Bound plans
# ----------------------------------------------------------------------
class BoundPlan:
    """A :class:`CompiledPlan` resolved against one column layout.

    ``execute(rows)`` consumes rows in the bound representation —
    positional lists (slot flavour) or mappings (mapping flavour) — and
    returns a :class:`SelectResult`.  Slot rows must be fresh lists the
    caller relinquishes: star projections adopt them into the result
    without copying.
    """

    __slots__ = (
        "select",
        "columns",
        "_flavour",
        "_predicate",
        "_out_cols",
        "_item_fns",
        "_grouped",
        "_group_keys",
        "_having",
        "_agg_items",
        "_order_plain",
        "_order_grouped",
        "_aliases",
        "_alias_actions",
        "_ext_columns",
        "_star",
        "_star_with_aggregates",
    )

    def __init__(self, select: ast.Select, flavour: _Flavour) -> None:
        self.select = select
        self.columns = list(flavour.columns)
        self._flavour = flavour
        self._predicate = _compile_predicate(select.where, flavour)
        self._star = select.is_star
        has_aggregates = any(
            ast.contains_aggregate(i.expr) for i in select.items
        )
        self._grouped = bool(select.group_by) or has_aggregates
        self._star_with_aggregates = self._grouped and self._star
        self._group_keys: list[RowFn] = []
        self._having: GroupFn | None = None
        self._agg_items: list[GroupFn] = []
        self._item_fns: list[RowFn] = []
        self._order_plain: list[tuple[RowFn, bool]] = []
        self._order_grouped: list[tuple[RowFn, bool]] = []
        self._aliases: list[tuple[str, RowFn]] = []
        self._alias_actions: list[int | None] = []
        self._ext_columns: list[str] = []
        if self._grouped:
            self._out_cols = (
                [] if self._star_with_aggregates else select.projected_names()
            )
            self._group_keys = [
                _compile_expr(g, flavour) for g in select.group_by
            ]
            if select.having is not None:
                self._having = _compile_agg_expr(select.having, flavour)
            if not self._star_with_aggregates:
                self._agg_items = [
                    _compile_agg_expr(i.expr, flavour) for i in select.items
                ]
            if select.order_by:
                # Grouped output: ORDER BY keys resolve against the
                # projected columns over the projected (positional) rows.
                projected = _SlotFlavour(self._out_cols)
                self._order_grouped = [
                    (_compile_expr(o.expr, projected), o.descending)
                    for o in select.order_by
                ]
        else:
            self._out_cols = (
                list(flavour.columns) if self._star else select.projected_names()
            )
            if not self._star:
                self._item_fns = [
                    _compile_expr(i.expr, flavour) for i in select.items
                ]
            if select.order_by:
                self._compile_plain_order(select, flavour)

    # -- plain-path ORDER BY (alias-augmented rows) --------------------
    def _compile_plain_order(self, select: ast.Select, flavour: _Flavour) -> None:
        self._aliases = [
            (item.alias, _compile_expr(item.expr, flavour))
            for item in select.items
            if item.alias is not None
        ]
        if not self._aliases:
            self._order_plain = [
                (_compile_expr(o.expr, flavour), o.descending)
                for o in select.order_by
            ]
            return
        # Sort keys see the source row augmented with the computed
        # aliases — an alias sharing an existing column's name
        # overwrites that value in place (dict semantics), a new name
        # appends a slot.
        ext_columns = list(flavour.columns)
        actions: list[int | None] = []
        for alias, _ in self._aliases:
            if alias in ext_columns:
                actions.append(_last_index(ext_columns, alias))
            else:
                actions.append(None)
                ext_columns.append(alias)
        self._alias_actions = actions
        self._ext_columns = ext_columns
        extended = _SlotFlavour(ext_columns)
        self._order_plain = [
            (_compile_expr(o.expr, extended), o.descending)
            for o in select.order_by
        ]

    def _extended_rows(self, filtered: list[Any]) -> list[list[Any]]:
        """Source rows + computed alias values, as positional rows under
        ``self._ext_columns`` (alias evaluation errors become None)."""
        flavour = self._flavour
        out: list[list[Any]] = []
        appended = sum(1 for a in self._alias_actions if a is None)
        for r in filtered:
            if isinstance(flavour, _SlotFlavour):
                ext = list(r)
            else:
                ext = [r.get(c) for c in flavour.columns]
            if appended:
                ext.extend([None] * appended)
            slot = len(flavour.columns)
            for (alias, fn), action in zip(self._aliases, self._alias_actions):
                try:
                    value = fn(r)
                except SqlExecutionError:
                    value = None
                if action is None:
                    ext[slot] = value
                    slot += 1
                else:
                    ext[action] = value
            out.append(ext)
        return out

    # -- execution -----------------------------------------------------
    def execute(self, rows: Sequence[Any]) -> SelectResult:
        """Run the bound plan over ``rows``."""
        predicate = self._predicate
        if predicate is None:
            filtered = list(rows)
        else:
            filtered = [r for r in rows if predicate(r)]

        if self._grouped:
            out_cols, out_rows = self._execute_grouped(filtered)
        else:
            if self._order_plain:
                if self._aliases:
                    key_rows: list[Any] = self._extended_rows(filtered)
                else:
                    key_rows = filtered
                order = _sort_payload(
                    self._order_plain, key_rows, list(range(len(filtered)))
                )
                filtered = [filtered[i] for i in order]
            out_cols = self._out_cols
            if self._star:
                out_rows = self._flavour.star_rows(filtered)
            else:
                item_fns = self._item_fns
                out_rows = [[fn(r) for fn in item_fns] for r in filtered]

        stmt = self.select
        if stmt.distinct:
            seen: set[tuple[Any, ...]] = set()
            unique: list[list[Any]] = []
            for r in out_rows:
                key = tuple(_hashable(v) for v in r)
                if key not in seen:
                    seen.add(key)
                    unique.append(r)
            out_rows = unique
        if stmt.offset:
            out_rows = out_rows[stmt.offset:]
        if stmt.limit is not None:
            out_rows = out_rows[: stmt.limit]
        return SelectResult.adopt(out_cols, out_rows)

    def _execute_grouped(
        self, filtered: list[Any]
    ) -> tuple[list[str], list[list[Any]]]:
        if self._star_with_aggregates:
            raise SqlExecutionError(
                "SELECT * cannot be combined with aggregation"
            )
        groups: dict[tuple[Any, ...], list[Any]] = {}
        group_keys = self._group_keys
        if group_keys:
            for r in filtered:
                key = tuple(_hashable(fn(r)) for fn in group_keys)
                groups.setdefault(key, []).append(r)
        else:
            # Implicit single group: aggregates over empty input still
            # produce one row (COUNT(*) = 0).
            groups[()] = filtered

        having = self._having
        agg_items = self._agg_items
        empty_sample = self._flavour.empty_sample()
        out: list[list[Any]] = []
        for key in groups:
            members = groups[key]
            sample = members[0] if members else empty_sample
            if having is not None:
                hv = having(members, sample)
                if hv is None or not hv:
                    continue
            out.append([fn(members, sample) for fn in agg_items])
        if self._order_grouped:
            out = _sort_payload(self._order_grouped, out, out)
        return self._out_cols, out


class CompiledPlan:
    """A SELECT compiled once, bindable to any column layout.

    Layout bindings (the expensive closure construction) are cached on
    the plan, keyed by the column tuple, so a plan held in the
    :class:`~repro.core.plans.PlanCache` pays compilation exactly once
    per (query, layout) pair.
    """

    __slots__ = ("select", "_slot_bindings", "_mapping_bindings")

    def __init__(self, select: ast.Select) -> None:
        self.select = select
        self._slot_bindings: dict[tuple[str, ...], BoundPlan] = {}
        self._mapping_bindings: dict[tuple[str, ...], BoundPlan] = {}

    def bind(self, columns: Sequence[str]) -> BoundPlan:
        """Bind to a positional-row layout (rows are lists of values)."""
        key = tuple(columns)
        bound = self._slot_bindings.get(key)
        if bound is None:
            bound = BoundPlan(self.select, _SlotFlavour(key))
            self._slot_bindings[key] = bound
        return bound

    def bind_mapping(self, columns: Sequence[str]) -> BoundPlan:
        """Bind to a mapping-row layout (rows are dicts; the history
        store's persistent representation)."""
        key = tuple(columns)
        bound = self._mapping_bindings.get(key)
        if bound is None:
            bound = BoundPlan(self.select, _MappingFlavour(key))
            self._mapping_bindings[key] = bound
        return bound


def compile_plan(select: ast.Select) -> CompiledPlan:
    """Compile a parsed SELECT into a reusable :class:`CompiledPlan`."""
    return CompiledPlan(select)


# ----------------------------------------------------------------------
# Positional natural join
# ----------------------------------------------------------------------
def join_rows(
    relations: Sequence[tuple[Sequence[str], Sequence[Sequence[Any]]]],
    *,
    key_columns: Sequence[str] | None = None,
) -> tuple[list[str], list[list[Any]]]:
    """Inner natural join over positional rows.

    The slot-level mirror of :func:`~repro.sql.executor.natural_join`
    (same key selection, same output column order, same error) without
    building a dict per intermediate row: join keys and carried columns
    are resolved to indices once per relation.
    """
    if not relations:
        return [], []
    out_columns = list(relations[0][0])
    out_rows: list[list[Any]] = [list(r) for r in relations[0][1]]
    for columns, rows in relations[1:]:
        columns = list(columns)
        column_set = set(columns)
        if key_columns is None:
            keys = [c for c in out_columns if c in column_set]
        else:
            out_set = set(out_columns)
            keys = [c for c in key_columns if c in out_set and c in column_set]
        if not keys:
            raise SqlExecutionError(
                "natural join requires at least one shared column "
                f"(left has {out_columns!r}, right has {list(columns)!r})"
            )
        new_columns = [c for c in columns if c not in set(out_columns)]
        left_key = [_last_index(out_columns, k) for k in keys]
        right_key = [_last_index(columns, k) for k in keys]
        new_index = [_last_index(columns, c) for c in new_columns]
        index: dict[tuple[Any, ...], list[Sequence[Any]]] = {}
        for row in rows:
            index.setdefault(
                tuple(row[i] for i in right_key), []
            ).append(row)
        joined: list[list[Any]] = []
        for left in out_rows:
            probe = tuple(left[i] for i in left_key)
            for right in index.get(probe, ()):
                joined.append(left + [right[i] for i in new_index])
        out_columns.extend(new_columns)
        out_rows = joined
    return out_columns, out_rows
