"""Recursive-descent SQL parser for the GridRM dialect."""

from __future__ import annotations

from repro.sql import ast_nodes as ast
from repro.sql.errors import SqlParseError
from repro.sql.lexer import Lexer, Token, TokenType


def parse_statement(text: str) -> ast.Statement:
    """Parse one SQL statement (trailing ``;`` allowed)."""
    return _Parser(text).statement()


def parse_select(text: str) -> ast.Select:
    """Parse a statement that must be a SELECT (drivers only accept reads)."""
    stmt = parse_statement(text)
    if not isinstance(stmt, ast.Select):
        raise SqlParseError(f"expected SELECT statement, got {type(stmt).__name__}")
    return stmt


class _Parser:
    def __init__(self, text: str) -> None:
        self.text = text
        self.toks = Lexer(text).tokens()
        self.i = 0

    # ------------------------------------------------------------------
    # Token plumbing
    # ------------------------------------------------------------------
    @property
    def cur(self) -> Token:
        return self.toks[self.i]

    def advance(self) -> Token:
        tok = self.toks[self.i]
        if tok.type is not TokenType.EOF:
            self.i += 1
        return tok

    def accept_keyword(self, *names: str) -> bool:
        if self.cur.is_keyword(*names):
            self.advance()
            return True
        return False

    def expect_keyword(self, name: str) -> None:
        if not self.accept_keyword(name):
            self.fail(f"expected {name}")

    def accept_punct(self, ch: str) -> bool:
        if self.cur.type is TokenType.PUNCT and self.cur.value == ch:
            self.advance()
            return True
        return False

    def expect_punct(self, ch: str) -> None:
        if not self.accept_punct(ch):
            self.fail(f"expected {ch!r}")

    def accept_op(self, *ops: str) -> str | None:
        if self.cur.type is TokenType.OPERATOR and self.cur.value in ops:
            return self.advance().value
        return None

    def expect_ident(self) -> str:
        if self.cur.type is TokenType.IDENT:
            return self.advance().value
        # Permit non-reserved-looking keywords as identifiers where
        # unambiguous (e.g. a column named "Timestamp"), preserving the
        # source spelling via the token's raw text.
        if self.cur.type is TokenType.KEYWORD and self.cur.value in (
            "TIMESTAMP",
            "TEXT",
            "REAL",
            "INTEGER",
            "BOOLEAN",
            "COUNT",
            "SUM",
            "AVG",
            "MIN",
            "MAX",
        ):
            tok = self.advance()
            return tok.raw or tok.value
        self.fail("expected identifier")
        raise AssertionError  # unreachable

    def fail(self, message: str) -> None:
        tok = self.cur
        raise SqlParseError(
            f"{message} at position {tok.pos} (near {tok.value!r}) in {self.text!r}",
            tok.pos,
        )

    # ------------------------------------------------------------------
    # Statements
    # ------------------------------------------------------------------
    def statement(self) -> ast.Statement:
        if self.cur.is_keyword("SELECT"):
            stmt: ast.Statement = self.select()
        elif self.cur.is_keyword("INSERT"):
            stmt = self.insert()
        elif self.cur.is_keyword("UPDATE"):
            stmt = self.update()
        elif self.cur.is_keyword("DELETE"):
            stmt = self.delete()
        elif self.cur.is_keyword("CREATE"):
            stmt = self.create_table()
        elif self.cur.is_keyword("DROP"):
            stmt = self.drop_table()
        else:
            self.fail("expected a statement keyword")
            raise AssertionError
        self.accept_punct(";")
        if self.cur.type is not TokenType.EOF:
            self.fail("unexpected trailing input")
        return stmt

    def select(self) -> ast.Select:
        self.expect_keyword("SELECT")
        distinct = self.accept_keyword("DISTINCT")
        items = [self.select_item()]
        while self.accept_punct(","):
            items.append(self.select_item())
        self.expect_keyword("FROM")
        table = self.expect_ident()
        extra_tables: list[str] = []
        while self.accept_punct(","):
            extra_tables.append(self.expect_ident())

        where = self.expr() if self.accept_keyword("WHERE") else None

        group_by: tuple[ast.Expr, ...] = ()
        having = None
        if self.accept_keyword("GROUP"):
            self.expect_keyword("BY")
            keys = [self.expr()]
            while self.accept_punct(","):
                keys.append(self.expr())
            group_by = tuple(keys)
            if self.accept_keyword("HAVING"):
                having = self.expr()

        order_by: list[ast.OrderItem] = []
        if self.accept_keyword("ORDER"):
            self.expect_keyword("BY")
            order_by.append(self.order_item())
            while self.accept_punct(","):
                order_by.append(self.order_item())

        limit = offset = None
        if self.accept_keyword("LIMIT"):
            limit = self.int_literal()
            if self.accept_keyword("OFFSET"):
                offset = self.int_literal()

        return ast.Select(
            items=tuple(items),
            table=table,
            where=where,
            group_by=group_by,
            having=having,
            order_by=tuple(order_by),
            limit=limit,
            offset=offset,
            distinct=distinct,
            extra_tables=tuple(extra_tables),
        )

    def select_item(self) -> ast.SelectItem:
        expr = self.expr()
        alias = None
        if self.accept_keyword("AS"):
            alias = self.expect_ident()
        elif self.cur.type is TokenType.IDENT:
            alias = self.advance().value
        return ast.SelectItem(expr=expr, alias=alias)

    def order_item(self) -> ast.OrderItem:
        expr = self.expr()
        descending = False
        if self.accept_keyword("DESC"):
            descending = True
        else:
            self.accept_keyword("ASC")
        return ast.OrderItem(expr=expr, descending=descending)

    def int_literal(self) -> int:
        if self.cur.type is not TokenType.NUMBER:
            self.fail("expected integer")
        value = self.advance().value
        try:
            return int(value)
        except ValueError:
            self.fail(f"expected integer, got {value!r}")
            raise AssertionError from None

    def insert(self) -> ast.Insert:
        self.expect_keyword("INSERT")
        self.expect_keyword("INTO")
        table = self.expect_ident()
        columns: list[str] = []
        self.expect_punct("(")
        columns.append(self.expect_ident())
        while self.accept_punct(","):
            columns.append(self.expect_ident())
        self.expect_punct(")")
        self.expect_keyword("VALUES")
        rows: list[tuple[ast.Expr, ...]] = []
        while True:
            self.expect_punct("(")
            values = [self.expr()]
            while self.accept_punct(","):
                values.append(self.expr())
            self.expect_punct(")")
            if len(values) != len(columns):
                self.fail(
                    f"INSERT arity mismatch: {len(columns)} columns, "
                    f"{len(values)} values"
                )
            rows.append(tuple(values))
            if not self.accept_punct(","):
                break
        return ast.Insert(table=table, columns=tuple(columns), rows=tuple(rows))

    def update(self) -> ast.Update:
        self.expect_keyword("UPDATE")
        table = self.expect_ident()
        self.expect_keyword("SET")
        assignments: list[tuple[str, ast.Expr]] = []
        while True:
            col = self.expect_ident()
            if not self.accept_op("="):
                self.fail("expected '=' in SET clause")
            assignments.append((col, self.expr()))
            if not self.accept_punct(","):
                break
        where = self.expr() if self.accept_keyword("WHERE") else None
        return ast.Update(table=table, assignments=tuple(assignments), where=where)

    def delete(self) -> ast.Delete:
        self.expect_keyword("DELETE")
        self.expect_keyword("FROM")
        table = self.expect_ident()
        where = self.expr() if self.accept_keyword("WHERE") else None
        return ast.Delete(table=table, where=where)

    def create_table(self) -> ast.CreateTable:
        self.expect_keyword("CREATE")
        self.expect_keyword("TABLE")
        if_not_exists = False
        if self.accept_keyword("IF"):
            self.expect_keyword("NOT")
            self.expect_keyword("EXISTS")
            if_not_exists = True
        table = self.expect_ident()
        self.expect_punct("(")
        columns: list[ast.ColumnDef] = []
        while True:
            name = self.expect_ident()
            ctype = "TEXT"
            if self.cur.is_keyword("INTEGER", "REAL", "TEXT", "BOOLEAN", "TIMESTAMP"):
                ctype = self.advance().value
            columns.append(ast.ColumnDef(name=name, type=ctype))
            if not self.accept_punct(","):
                break
        self.expect_punct(")")
        return ast.CreateTable(
            table=table, columns=tuple(columns), if_not_exists=if_not_exists
        )

    def drop_table(self) -> ast.DropTable:
        self.expect_keyword("DROP")
        self.expect_keyword("TABLE")
        if_exists = False
        if self.accept_keyword("IF"):
            self.expect_keyword("EXISTS")
            if_exists = True
        return ast.DropTable(table=self.expect_ident(), if_exists=if_exists)

    # ------------------------------------------------------------------
    # Expressions (precedence climbing)
    # ------------------------------------------------------------------
    def expr(self) -> ast.Expr:
        return self.or_expr()

    def or_expr(self) -> ast.Expr:
        left = self.and_expr()
        while self.accept_keyword("OR"):
            left = ast.BinOp(op="OR", left=left, right=self.and_expr())
        return left

    def and_expr(self) -> ast.Expr:
        left = self.not_expr()
        while self.accept_keyword("AND"):
            left = ast.BinOp(op="AND", left=left, right=self.not_expr())
        return left

    def not_expr(self) -> ast.Expr:
        if self.accept_keyword("NOT"):
            return ast.UnaryOp(op="NOT", operand=self.not_expr())
        return self.comparison()

    def comparison(self) -> ast.Expr:
        left = self.additive()
        op = self.accept_op("=", "!=", "<>", "<", "<=", ">", ">=")
        if op is not None:
            if op == "<>":
                op = "!="
            return ast.BinOp(op=op, left=left, right=self.additive())

        negated = False
        if self.cur.is_keyword("NOT"):
            # Lookahead for NOT IN / NOT LIKE / NOT BETWEEN.
            nxt = self.toks[self.i + 1]
            if nxt.is_keyword("IN", "LIKE", "BETWEEN"):
                self.advance()
                negated = True

        if self.accept_keyword("IN"):
            self.expect_punct("(")
            items = [self.expr()]
            while self.accept_punct(","):
                items.append(self.expr())
            self.expect_punct(")")
            return ast.InList(expr=left, items=tuple(items), negated=negated)
        if self.accept_keyword("LIKE"):
            node = ast.BinOp(op="LIKE", left=left, right=self.additive())
            return ast.UnaryOp(op="NOT", operand=node) if negated else node
        if self.accept_keyword("BETWEEN"):
            low = self.additive()
            self.expect_keyword("AND")
            high = self.additive()
            return ast.Between(expr=left, low=low, high=high, negated=negated)
        if self.accept_keyword("IS"):
            is_not = self.accept_keyword("NOT")
            self.expect_keyword("NULL")
            return ast.IsNull(expr=left, negated=is_not)
        return left

    def additive(self) -> ast.Expr:
        left = self.multiplicative()
        while True:
            op = self.accept_op("+", "-")
            if op is None:
                return left
            left = ast.BinOp(op=op, left=left, right=self.multiplicative())

    def multiplicative(self) -> ast.Expr:
        left = self.unary()
        while True:
            op = self.accept_op("*", "/", "%")
            if op is None:
                return left
            left = ast.BinOp(op=op, left=left, right=self.unary())

    def unary(self) -> ast.Expr:
        if self.accept_op("-"):
            return ast.UnaryOp(op="-", operand=self.unary())
        if self.accept_op("+"):
            return self.unary()
        return self.primary()

    def primary(self) -> ast.Expr:
        tok = self.cur
        if tok.type is TokenType.NUMBER:
            self.advance()
            text = tok.value
            value: object
            if "." in text or "e" in text or "E" in text:
                value = float(text)
            else:
                value = int(text)
            return ast.Literal(value)
        if tok.type is TokenType.STRING:
            self.advance()
            return ast.Literal(tok.value)
        if tok.is_keyword("NULL"):
            self.advance()
            return ast.Literal(None)
        if tok.is_keyword("TRUE"):
            self.advance()
            return ast.Literal(True)
        if tok.is_keyword("FALSE"):
            self.advance()
            return ast.Literal(False)
        if tok.is_keyword("COUNT", "SUM", "AVG", "MIN", "MAX"):
            self.advance()
            return self.func_call(tok.value)
        if tok.type is TokenType.OPERATOR and tok.value == "*":
            self.advance()
            return ast.Star()
        if self.accept_punct("("):
            inner = self.expr()
            self.expect_punct(")")
            return inner
        if tok.type is TokenType.IDENT or tok.type is TokenType.KEYWORD:
            name = self.expect_ident()
            # Function call on a plain identifier.
            if self.cur.type is TokenType.PUNCT and self.cur.value == "(":
                return self.func_call(name.upper())
            # Qualified name: table.column or table.*
            if self.accept_punct("."):
                if self.cur.type is TokenType.OPERATOR and self.cur.value == "*":
                    self.advance()
                    return ast.Star(table=name)
                return ast.Column(name=self.expect_ident(), table=name)
            return ast.Column(name=name)
        self.fail("expected expression")
        raise AssertionError

    def func_call(self, name: str) -> ast.FuncCall:
        self.expect_punct("(")
        if self.cur.type is TokenType.OPERATOR and self.cur.value == "*":
            self.advance()
            self.expect_punct(")")
            return ast.FuncCall(name=name, star=True)
        distinct = self.accept_keyword("DISTINCT")
        args = [self.expr()]
        while self.accept_punct(","):
            args.append(self.expr())
        self.expect_punct(")")
        return ast.FuncCall(name=name, args=tuple(args), distinct=distinct)
