"""Concrete list-backed ResultSet.

All GridRM drivers ultimately populate one of these: "String queries in,
and ResultSets out" (paper §3).  The cursor starts *before* the first row,
as in JDBC; ``next()`` must be called before the first ``get``.
"""

from __future__ import annotations

from typing import Any, Iterator, Sequence

from repro.dbapi.exceptions import SQLDataException, SQLException
from repro.dbapi.interfaces import ResultSet, ResultSetMetaData


class ListResultSetMetaData(ResultSetMetaData):
    """Metadata over a fixed column list with optional declared types."""

    def __init__(
        self, columns: Sequence[str], types: Sequence[str] | None = None
    ) -> None:
        self._columns = list(columns)
        if types is None:
            self._types = ["TEXT"] * len(self._columns)
        else:
            if len(types) != len(columns):
                raise SQLException(
                    f"{len(columns)} columns but {len(types)} types supplied"
                )
            self._types = list(types)

    def column_count(self) -> int:
        return len(self._columns)

    def column_name(self, index: int) -> str:
        self._check(index)
        return self._columns[index - 1]

    def column_type(self, index: int) -> str:
        self._check(index)
        return self._types[index - 1]

    def column_index(self, name: str) -> int:
        try:
            return self._columns.index(name) + 1
        except ValueError:
            # Case-insensitive fallback, matching the SQL executor.
            lowered = name.lower()
            for i, c in enumerate(self._columns):
                if c.lower() == lowered:
                    return i + 1
            raise SQLException(f"no such column: {name!r}") from None

    def _check(self, index: int) -> None:
        if not 1 <= index <= len(self._columns):
            raise SQLException(
                f"column index {index} out of range 1..{len(self._columns)}"
            )


class ListResultSet(ResultSet):
    """ResultSet over materialised rows.

    >>> rs = ListResultSet(["host", "load"], [["a", 0.5], ["b", 1.5]])
    >>> rs.next()
    True
    >>> rs.get("load")
    0.5
    """

    def __init__(
        self,
        columns: Sequence[str],
        rows: Sequence[Sequence[Any]],
        types: Sequence[str] | None = None,
    ) -> None:
        self._meta = ListResultSetMetaData(columns, types)
        self._columns = list(columns)
        self._rows = [list(r) for r in rows]
        for i, r in enumerate(self._rows):
            if len(r) != len(self._columns):
                raise SQLException(
                    f"row {i} has {len(r)} values for {len(self._columns)} columns"
                )
        self._cursor = -1
        self._closed = False
        self._last_was_null = False

    @classmethod
    def adopt(
        cls,
        columns: Sequence[str],
        rows: list[list[Any]],
        types: Sequence[str] | None = None,
    ) -> "ListResultSet":
        """Wrap freshly-built rows without the defensive per-row copy.

        The caller transfers ownership of ``rows`` (a list of equal-width
        lists nothing else will mutate) — the compiled-plan result path
        uses this so driver results are materialised exactly once.
        Length validation is skipped: the plan executor constructs every
        row against a fixed projection, so widths hold by construction.
        """
        rs = cls.__new__(cls)
        rs._meta = ListResultSetMetaData(columns, types)
        rs._columns = list(columns)
        rs._rows = rows
        rs._cursor = -1
        rs._closed = False
        rs._last_was_null = False
        return rs

    # ------------------------------------------------------------------
    # Cursor protocol
    # ------------------------------------------------------------------
    def next(self) -> bool:
        self._check_open()
        if self._cursor + 1 >= len(self._rows):
            self._cursor = len(self._rows)
            return False
        self._cursor += 1
        return True

    def row_count(self) -> int:
        """Total rows (an extension: GridRM consolidates counts eagerly)."""
        return len(self._rows)

    def get(self, column: int | str) -> Any:
        self._check_open()
        if not 0 <= self._cursor < len(self._rows):
            raise SQLException("cursor is not positioned on a row; call next()")
        if isinstance(column, str):
            index = self._meta.column_index(column)
        else:
            self._meta._check(column)
            index = column
        value = self._rows[self._cursor][index - 1]
        self._last_was_null = value is None
        return value

    def get_string(self, column: int | str) -> str | None:
        value = self.get(column)
        return None if value is None else str(value)

    def get_int(self, column: int | str) -> int | None:
        value = self.get(column)
        if value is None:
            return None
        try:
            return int(float(value)) if isinstance(value, str) else int(value)
        except (TypeError, ValueError) as exc:
            raise SQLDataException(f"cannot convert {value!r} to int") from exc

    def get_float(self, column: int | str) -> float | None:
        value = self.get(column)
        if value is None:
            return None
        try:
            return float(value)
        except (TypeError, ValueError) as exc:
            raise SQLDataException(f"cannot convert {value!r} to float") from exc

    def get_bool(self, column: int | str) -> bool | None:
        value = self.get(column)
        if value is None:
            return None
        if isinstance(value, bool):
            return value
        if isinstance(value, (int, float)):
            return value != 0
        if isinstance(value, str):
            lowered = value.strip().lower()
            if lowered in ("true", "t", "yes", "1", "on"):
                return True
            if lowered in ("false", "f", "no", "0", "off"):
                return False
        raise SQLDataException(f"cannot convert {value!r} to bool")

    def was_null(self) -> bool:
        return self._last_was_null

    def metadata(self) -> ListResultSetMetaData:
        return self._meta

    def close(self) -> None:
        self._closed = True

    def is_closed(self) -> bool:
        return self._closed

    # ------------------------------------------------------------------
    # Pythonic access
    # ------------------------------------------------------------------
    def __iter__(self) -> Iterator[dict[str, Any]]:
        """Yield remaining rows as dicts, advancing the cursor."""
        while self.next():
            yield dict(zip(self._columns, self._rows[self._cursor]))

    def to_dicts(self) -> list[dict[str, Any]]:
        """All rows as dicts, ignoring cursor state (does not advance it)."""
        return [dict(zip(self._columns, r)) for r in self._rows]

    def raw_rows(self) -> list[list[Any]]:
        """All row value lists, ignoring cursor state (does not advance it)."""
        return [list(r) for r in self._rows]

    def take_rows(self) -> list[list[Any]]:
        """Move the row storage out of this ResultSet (zero-copy).

        The caller takes ownership of the returned lists; the ResultSet
        is left empty (cursor reset), so subsequent reads see no rows
        rather than aliased ones.
        """
        rows = self._rows
        self._rows = []
        self._cursor = -1
        return rows

    @property
    def columns(self) -> list[str]:
        return list(self._columns)

    def __len__(self) -> int:
        return len(self._rows)

    # ------------------------------------------------------------------
    def _check_open(self) -> None:
        if self._closed:
            raise SQLException("ResultSet is closed")


def result_set_from_select(result: "object") -> ListResultSet:
    """Adapt a :class:`repro.sql.executor.SelectResult` to a ResultSet."""
    from repro.sql.executor import SelectResult

    if not isinstance(result, SelectResult):
        raise SQLException(f"expected SelectResult, got {type(result).__name__}")
    return ListResultSet(result.columns, result.rows)
