"""Abstract driver interfaces.

Every method of every class here raises
:class:`~repro.dbapi.exceptions.SQLFeatureNotSupportedException` until a
driver overrides it.  This is the paper's incremental-development scheme
verbatim (§3.2.1): "if a call is made to a ResultSet method that is not
implemented, an SQLException is thrown, as one would expect from a fully
implemented driver that had experienced errors".

A minimal GridRM driver overrides the members the paper lists:

* ``Driver.accepts_url`` and ``Driver.connect``
* ``Connection.create_statement`` / ``close``
* ``Statement.execute_query``
* ``ResultSet`` row-cursor and typed getters
* ``ResultSetMetaData`` column descriptors
"""

from __future__ import annotations

from typing import Any, Iterator, TYPE_CHECKING

from repro.dbapi.exceptions import SQLFeatureNotSupportedException

if TYPE_CHECKING:  # pragma: no cover
    from repro.dbapi.url import JdbcUrl


def _unsupported(what: str) -> SQLFeatureNotSupportedException:
    return SQLFeatureNotSupportedException(f"{what} is not implemented by this driver")


class ResultSetMetaData:
    """Describes the columns of a :class:`ResultSet` (JDBC
    ``java.sql.ResultSetMetaData``)."""

    def column_count(self) -> int:
        raise _unsupported("ResultSetMetaData.column_count")

    def column_name(self, index: int) -> str:
        """1-based, as in JDBC."""
        raise _unsupported("ResultSetMetaData.column_name")

    def column_type(self, index: int) -> str:
        """Declared type keyword ("TEXT", "REAL", ...); 1-based index."""
        raise _unsupported("ResultSetMetaData.column_type")

    def column_index(self, name: str) -> int:
        """1-based index of a named column."""
        raise _unsupported("ResultSetMetaData.column_index")


class ResultSet:
    """Cursor over query results (JDBC ``java.sql.ResultSet``).

    The Java original has 139 methods; the reproduction keeps the cursor
    protocol and the typed getters GridRM actually calls, and inherits the
    throw-by-default behaviour for everything else.
    """

    def next(self) -> bool:
        """Advance to the next row; False once the set is exhausted."""
        raise _unsupported("ResultSet.next")

    def get(self, column: int | str) -> Any:
        """Value in the current row, by 1-based index or column name."""
        raise _unsupported("ResultSet.get")

    def get_string(self, column: int | str) -> str | None:
        raise _unsupported("ResultSet.get_string")

    def get_int(self, column: int | str) -> int | None:
        raise _unsupported("ResultSet.get_int")

    def get_float(self, column: int | str) -> float | None:
        raise _unsupported("ResultSet.get_float")

    def get_bool(self, column: int | str) -> bool | None:
        raise _unsupported("ResultSet.get_bool")

    def was_null(self) -> bool:
        """Whether the last value read was NULL (JDBC ``wasNull``)."""
        raise _unsupported("ResultSet.was_null")

    def metadata(self) -> ResultSetMetaData:
        raise _unsupported("ResultSet.metadata")

    def close(self) -> None:
        raise _unsupported("ResultSet.close")

    def __iter__(self) -> Iterator[dict[str, Any]]:
        """Pythonic iteration: yields each remaining row as a dict."""
        raise _unsupported("ResultSet.__iter__")


class Statement:
    """An executable statement bound to a connection (JDBC
    ``java.sql.Statement``)."""

    def execute_query(self, sql: str) -> ResultSet:
        """Run a SELECT against the data source, returning a ResultSet."""
        raise _unsupported("Statement.execute_query")

    def execute_update(self, sql: str) -> int:
        """Run DML; most monitoring sources are read-only and keep the
        default (throwing) behaviour."""
        raise _unsupported("Statement.execute_update")

    def set_query_timeout(self, seconds: float) -> None:
        raise _unsupported("Statement.set_query_timeout")

    def close(self) -> None:
        raise _unsupported("Statement.close")


class DatabaseMetaData:
    """Static facts about the data source (JDBC ``DatabaseMetaData``,
    165 methods in Java; we keep the handful GridRM's console shows)."""

    def driver_name(self) -> str:
        raise _unsupported("DatabaseMetaData.driver_name")

    def driver_version(self) -> str:
        raise _unsupported("DatabaseMetaData.driver_version")

    def url(self) -> str:
        raise _unsupported("DatabaseMetaData.url")

    def get_tables(self) -> list[str]:
        """GLUE group names this source can answer queries for."""
        raise _unsupported("DatabaseMetaData.get_tables")


class Connection:
    """A session with one data source (JDBC ``java.sql.Connection``).

    Per the paper, the connection "creates a session with the data source
    and initialises schema settings for the session" — the GLUE mapping is
    cached at connection time (Figure 5) and statements check cache
    consistency before use.
    """

    def create_statement(self) -> Statement:
        raise _unsupported("Connection.create_statement")

    def close(self) -> None:
        raise _unsupported("Connection.close")

    def is_closed(self) -> bool:
        raise _unsupported("Connection.is_closed")

    def is_valid(self, timeout: float = 1.0) -> bool:
        """Liveness probe used by the connection pool before reuse."""
        raise _unsupported("Connection.is_valid")

    def get_metadata(self) -> DatabaseMetaData:
        raise _unsupported("Connection.get_metadata")


class Driver:
    """A data-source driver plug-in (JDBC ``java.sql.Driver``).

    ``accepts_url`` + ``connect`` are the two members every driver must
    provide; the registry's dynamic-selection loop (paper Table 2) calls
    ``accepts_url`` on each registered driver in turn.
    """

    def accepts_url(self, url: "JdbcUrl") -> bool:
        """Whether this driver can plausibly serve ``url``.

        Implementations should be cheap (string checks); expensive
        liveness probes belong in ``connect``.
        """
        raise _unsupported("Driver.accepts_url")

    def connect(self, url: "JdbcUrl", info: dict[str, Any] | None = None) -> Connection:
        """Open a session, raising ``SQLConnectionException`` on failure."""
        raise _unsupported("Driver.connect")

    def name(self) -> str:
        raise _unsupported("Driver.name")

    def version(self) -> str:
        return "1.0"
