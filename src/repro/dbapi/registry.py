"""Driver registry — the ``java.sql.DriverManager`` equivalent.

Implements the dynamic driver-location loop of paper Table 2: iterate the
registered drivers in registration order and use the first whose
``accepts_url`` returns True.  Registration is name-agnostic, mirroring
Table 1's reflection-based ``Class.forName(...)`` trick: anything
implementing the :class:`~repro.dbapi.interfaces.Driver` interface can be
registered, at start-up or at runtime.
"""

from __future__ import annotations

from typing import Any, Iterable

from repro.dbapi.exceptions import SQLConnectionException, SQLException
from repro.dbapi.interfaces import Connection, Driver
from repro.dbapi.url import JdbcUrl


class DriverRegistry:
    """An ordered set of registered driver plug-ins.

    Unlike Java's global ``DriverManager``, registries are instances — a
    GridRM gateway owns one, so runtime (un)registration is scoped to the
    gateway (paper §3.2.2: drivers "can be added or removed at runtime
    without affecting normal Gateway operation").
    """

    def __init__(self) -> None:
        self._drivers: list[Driver] = []

    # ------------------------------------------------------------------
    def register(self, driver: Driver) -> None:
        """Register a driver; re-registering the same instance is a no-op."""
        if not isinstance(driver, Driver):
            raise SQLException(
                f"not a Driver: {type(driver).__name__} (drivers must subclass "
                "repro.dbapi.Driver, as any java.sql.Driver implementor could "
                "be registered in the original)"
            )
        if driver not in self._drivers:
            self._drivers.append(driver)

    def unregister(self, driver: Driver) -> bool:
        """Remove a driver; returns whether it was present."""
        try:
            self._drivers.remove(driver)
            return True
        except ValueError:
            return False

    def drivers(self) -> list[Driver]:
        """Snapshot of registered drivers in registration order."""
        return list(self._drivers)

    def driver_names(self) -> list[str]:
        return [d.name() for d in self._drivers]

    def __len__(self) -> int:
        return len(self._drivers)

    def __contains__(self, driver: Driver) -> bool:
        return driver in self._drivers

    # ------------------------------------------------------------------
    def locate(self, url: JdbcUrl | str) -> Driver:
        """Find the first registered driver accepting ``url`` (Table 2).

        Raises :class:`SQLException` when no driver matches.
        """
        url = JdbcUrl.parse(url) if isinstance(url, str) else url
        for driver in self._drivers:
            try:
                if driver.accepts_url(url):
                    return driver
            except SQLException:
                # A driver that cannot even parse the URL does not accept it.
                continue
        raise SQLException(f"no suitable driver for {url}")

    def locate_all(self, url: JdbcUrl | str) -> list[Driver]:
        """All drivers accepting ``url``, in registration order.

        Used by the driver manager's failover policies ("register a number
        of drivers to be used in prioritised order", paper §4).
        """
        url = JdbcUrl.parse(url) if isinstance(url, str) else url
        out = []
        for driver in self._drivers:
            try:
                if driver.accepts_url(url):
                    out.append(driver)
            except SQLException:
                continue
        return out

    def connect(
        self, url: JdbcUrl | str, info: dict[str, Any] | None = None
    ) -> Connection:
        """Locate a driver for ``url`` and open a connection through it.

        Where several drivers accept the URL, tries each in order until
        one connects — this is the "Have we found a driver that supports
        the URL AND can connect to the data source?" semantics the paper's
        Table 2 comment describes.
        """
        url = JdbcUrl.parse(url) if isinstance(url, str) else url
        candidates = self.locate_all(url)
        if not candidates:
            raise SQLException(f"no suitable driver for {url}")
        last_error: SQLException | None = None
        for driver in candidates:
            try:
                return driver.connect(url, info)
            except SQLException as exc:
                last_error = exc
        raise SQLConnectionException(
            f"all {len(candidates)} candidate driver(s) failed for {url}",
            cause=last_error,
        )


def register_all(registry: DriverRegistry, drivers: Iterable[Driver]) -> None:
    """Register several drivers (start-up default set, paper §3.2.2)."""
    for d in drivers:
        registry.register(d)
