"""JDBC-style URL parsing.

GridRM clients address data sources with JDBC URLs.  The paper gives two
forms (§3.2.2):

* ``jdbc:nws://snowboard.workgroup/perfdata`` — protocol pinned: only the
  NWS driver may serve the request;
* ``jdbc:://snowboard.workgroup/perfdata`` — protocol empty: "use the
  first available driver" (the registry scans ``accepts_url``).

We additionally accept ``jdbc://host/path`` as the protocol-less form and
``?key=value&...`` query parameters (community strings, ports, cache
hints), which real JDBC URLs carry the same way.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.dbapi.exceptions import SQLException

_URL_RE = re.compile(
    r"""
    ^jdbc:
    (?:(?P<protocol>[A-Za-z][A-Za-z0-9+._-]*)?:)?   # optional ":<subprotocol>:"
    //
    (?P<host>[^:/?\#\s]+)
    (?::(?P<port>\d+))?
    (?P<path>/[^?\#\s]*)?
    (?:\?(?P<query>[^\#\s]*))?
    $
    """,
    re.VERBOSE,
)


@dataclass(frozen=True)
class JdbcUrl:
    """A parsed ``jdbc:`` URL.

    Attributes:
        protocol: subprotocol selecting a driver family ("snmp", "ganglia",
            ...); empty string means "any compatible driver".
        host: data source host name.
        port: explicit port, or None for the protocol default.
        path: path component without leading slash ("perfdata").
        params: parsed query parameters.
    """

    protocol: str
    host: str
    port: int | None = None
    path: str = ""
    params: dict[str, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.host:
            raise SQLException("JDBC URL requires a host")

    @classmethod
    def parse(cls, text: str) -> "JdbcUrl":
        """Parse URL text; raises :class:`SQLException` on malformed input."""
        m = _URL_RE.match(text.strip())
        if m is None:
            raise SQLException(f"malformed JDBC URL: {text!r}")
        params: dict[str, str] = {}
        query = m.group("query")
        if query:
            for pair in query.split("&"):
                if not pair:
                    continue
                key, _, value = pair.partition("=")
                params[key] = value
        path = (m.group("path") or "").lstrip("/")
        port = m.group("port")
        return cls(
            protocol=(m.group("protocol") or "").lower(),
            host=m.group("host"),
            port=int(port) if port else None,
            path=path,
            params=params,
        )

    @property
    def is_wildcard(self) -> bool:
        """True when no subprotocol was given (dynamic driver selection)."""
        return self.protocol == ""

    def with_protocol(self, protocol: str) -> "JdbcUrl":
        """A copy of this URL pinned to ``protocol``."""
        return JdbcUrl(
            protocol=protocol.lower(),
            host=self.host,
            port=self.port,
            path=self.path,
            params=dict(self.params),
        )

    def __str__(self) -> str:
        port = f":{self.port}" if self.port is not None else ""
        path = f"/{self.path}" if self.path else ""
        query = (
            "?" + "&".join(f"{k}={v}" for k, v in sorted(self.params.items()))
            if self.params
            else ""
        )
        return f"jdbc:{self.protocol}://{self.host}{port}{path}{query}"
