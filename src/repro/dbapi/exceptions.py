"""SQLException hierarchy, mirroring the java.sql exceptions GridRM uses."""

from __future__ import annotations


class SQLException(Exception):
    """Base driver-layer failure, as thrown throughout the JDBC API."""

    def __init__(self, message: str = "", *, sql_state: str = "", cause: Exception | None = None) -> None:
        super().__init__(message)
        self.sql_state = sql_state
        self.cause = cause


class SQLFeatureNotSupportedException(SQLException):
    """Raised by every unimplemented method of the abstract driver bases.

    The paper: "the JDBC API interfaces were implemented to return nulls
    or throw SQLExceptions. The resulting classes are then used as
    super-classes for driver implementations" (§3.2.1).
    """


class SQLSyntaxErrorException(SQLException):
    """The SQL text was rejected by the driver's parser."""


class SQLTimeoutException(SQLException):
    """The data source did not answer within the driver's deadline."""


class SQLConnectionException(SQLException):
    """The driver could not establish or keep a session with the source."""


class SQLDataException(SQLException):
    """Returned data could not be represented as the requested type."""
