"""JDBC-equivalent driver SPI.

The paper implements GridRM drivers against the Java JDBC 3.0 API and
notes that only a small subset of its methods needs implementing for a
minimal driver; the remainder are generated to throw ``SQLException`` so
drivers can be developed incrementally (§3.2.1).  This package is the
Python rendering of that contract:

* :mod:`repro.dbapi.exceptions` — the ``SQLException`` hierarchy.
* :mod:`repro.dbapi.interfaces` — ``Driver`` / ``Connection`` /
  ``Statement`` / ``ResultSet`` / ``ResultSetMetaData`` /
  ``DatabaseMetaData`` base classes whose every method raises
  ``SQLFeatureNotSupportedException`` until overridden.
* :mod:`repro.dbapi.resultset` — concrete list-backed ``ResultSet``.
* :mod:`repro.dbapi.url` — ``jdbc:<protocol>://host[:port]/path`` parsing,
  including the paper's protocol-less form ``jdbc://host/path`` meaning
  "any compatible driver".
* :mod:`repro.dbapi.registry` — the ``DriverManager`` equivalent with the
  ``accepts_url`` scan of paper Table 2.
"""

from repro.dbapi.exceptions import (
    SQLException,
    SQLFeatureNotSupportedException,
    SQLSyntaxErrorException,
    SQLTimeoutException,
    SQLConnectionException,
    SQLDataException,
)
from repro.dbapi.url import JdbcUrl
from repro.dbapi.interfaces import (
    Driver,
    Connection,
    Statement,
    ResultSet,
    ResultSetMetaData,
    DatabaseMetaData,
)
from repro.dbapi.resultset import ListResultSet, ListResultSetMetaData
from repro.dbapi.registry import DriverRegistry

__all__ = [
    "SQLException",
    "SQLFeatureNotSupportedException",
    "SQLSyntaxErrorException",
    "SQLTimeoutException",
    "SQLConnectionException",
    "SQLDataException",
    "JdbcUrl",
    "Driver",
    "Connection",
    "Statement",
    "ResultSet",
    "ResultSetMetaData",
    "DatabaseMetaData",
    "ListResultSet",
    "ListResultSetMetaData",
    "DriverRegistry",
]
