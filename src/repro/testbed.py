"""Testbed construction helpers.

One call builds a complete Grid site: simulated hosts, the native agents
the paper's initial driver set targets (SNMP, Ganglia, NWS, NetLogger,
SCMS + a site SQL database), and a configured gateway with every agent
registered as a data source.  Used by the examples, the integration tests
and every benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Sequence

from repro.agents.ganglia import GangliaAgent
from repro.agents.host_model import HostSpec, SimulatedHost
from repro.agents.netlogger import NetLoggerAgent
from repro.agents.nws import NwsAgent
from repro.agents.scms import ScmsAgent
from repro.agents.snmp import SnmpAgent
from repro.agents.sqlagent import SqlAgent, seed_site_database
from repro.core.gateway import Gateway
from repro.core.policy import GatewayPolicy
from repro.simnet.clock import VirtualClock
from repro.simnet.network import Network

#: Agent kinds :func:`build_site` understands.
AGENT_KINDS = ("snmp", "ganglia", "nws", "netlogger", "scms", "sql")


@dataclass
class Site:
    """Everything :func:`build_site` constructed for one Grid site."""

    name: str
    network: Network
    hosts: list[SimulatedHost]
    gateway: Gateway
    agents: dict[str, list[Any]] = field(default_factory=dict)
    source_urls: list[str] = field(default_factory=list)

    @property
    def clock(self) -> VirtualClock:
        return self.network.clock

    def host_names(self) -> list[str]:
        return [h.spec.name for h in self.hosts]

    def url_for(self, kind: str, host: str | None = None) -> str:
        """The JDBC URL of one of this site's agents."""
        hits = [u for u in self.source_urls if u.startswith(f"jdbc:{kind}:")]
        if host is not None:
            hits = [u for u in hits if f"//{host}/" in u]
        if not hits:
            raise KeyError(f"no {kind!r} source{f' on {host}' if host else ''}")
        return hits[0]

    def fail_host(self, host: str) -> None:
        """Take one monitored host (and its agents) off the network —
        the failure-injection knob for breaker/robustness experiments."""
        if host not in self.host_names() and host != self.gateway.host:
            raise KeyError(f"no host {host!r} in site {self.name!r}")
        self.network.set_host_up(host, False)

    def heal_host(self, host: str) -> None:
        """Bring a previously failed host back."""
        if host not in self.host_names() and host != self.gateway.host:
            raise KeyError(f"no host {host!r} in site {self.name!r}")
        self.network.set_host_up(host, True)


def build_site(
    network: Network,
    *,
    name: str,
    n_hosts: int = 4,
    agents: Sequence[str] = ("snmp", "ganglia"),
    seed: int = 0,
    policy: GatewayPolicy | None = None,
    gateway_host: str | None = None,
    snmp_trap_threshold: float | None = None,
    disk: Any | None = None,
    persistent_store: dict[str, str] | None = None,
) -> Site:
    """Build one site: hosts + agents + gateway, all registered.

    Args:
        network: shared simulated network (one per experiment).
        name: site name; hosts are ``<name>-nNN`` and the gateway host is
            ``<name>-gw`` unless overridden.
        n_hosts: number of monitored machines.
        agents: which agent kinds to deploy (see :data:`AGENT_KINDS`).
        seed: host-model seed, combined with host names.
        policy: gateway policy (defaults applied when None).
        gateway_host: override the gateway's host name.
        snmp_trap_threshold: when set, SNMP agents send load-high traps
            above this 1-minute load, sunk at the gateway's EventManager.
        disk: a :class:`~repro.storage.simdisk.SimDisk` for durable
            history — pass the same disk to successive gateway builds to
            model restart/recovery (see ``python -m repro crashtest``).
        persistent_store: driver-spec persistence shared across gateway
            incarnations, as for the Gateway constructor.
    """
    unknown = set(agents) - set(AGENT_KINDS)
    if unknown:
        raise ValueError(f"unknown agent kind(s): {sorted(unknown)}")
    if n_hosts < 1:
        raise ValueError(f"n_hosts must be >= 1: {n_hosts}")

    host_names = [f"{name}-n{i:02d}" for i in range(n_hosts)]
    for h in host_names:
        network.add_host(h, site=name)
    hosts = [
        SimulatedHost(HostSpec.generate(h, name, seed), network.clock)
        for h in host_names
    ]
    gw_host = gateway_host or f"{name}-gw"
    gateway = Gateway(
        network,
        gw_host,
        site=name,
        policy=policy,
        disk=disk,
        persistent_store=persistent_store,
    )

    site = Site(name=name, network=network, hosts=hosts, gateway=gateway)

    if "snmp" in agents:
        snmp_agents = []
        for h in hosts:
            agent = SnmpAgent(
                h, network, load_trap_threshold=snmp_trap_threshold
            )
            if snmp_trap_threshold is not None:
                agent.add_trap_sink(gateway.trap_sink_address)
            snmp_agents.append(agent)
            url = f"jdbc:snmp://{h.spec.name}/system"
            gateway.add_source(url)
            site.source_urls.append(url)
        site.agents["snmp"] = snmp_agents
    if "ganglia" in agents:
        agent = GangliaAgent(name, hosts, network)
        url = f"jdbc:ganglia://{agent.address.host}/cluster"
        gateway.add_source(url)
        site.source_urls.append(url)
        site.agents["ganglia"] = [agent]
    if "nws" in agents:
        sensor_host = hosts[0]
        peers = [h.spec.name for h in hosts[1:3]]
        agent = NwsAgent(sensor_host, network, peers=peers)
        url = f"jdbc:nws://{sensor_host.spec.name}/forecast"
        gateway.add_source(url)
        site.source_urls.append(url)
        site.agents["nws"] = [agent]
    if "netlogger" in agents:
        nl_agents = []
        for h in hosts:
            nl_agents.append(NetLoggerAgent(h, network))
            url = f"jdbc:netlogger://{h.spec.name}/ulm"
            gateway.add_source(url)
            site.source_urls.append(url)
        site.agents["netlogger"] = nl_agents
    if "scms" in agents:
        agent = ScmsAgent(name, hosts, network)
        url = f"jdbc:scms://{agent.address.host}/cluster"
        gateway.add_source(url)
        site.source_urls.append(url)
        site.agents["scms"] = [agent]
    if "sql" in agents:
        db = seed_site_database(hosts, network)
        bind = hosts[-1].spec.name
        agent = SqlAgent(db, network, bind)
        url = f"jdbc:sql://{bind}/sitedb"
        gateway.add_source(url)
        site.source_urls.append(url)
        site.agents["sql"] = [agent]

    return site


def build_testbed(
    *,
    n_sites: int = 1,
    n_hosts: int = 4,
    agents: Sequence[str] = ("snmp", "ganglia"),
    seed: int = 0,
    policy: GatewayPolicy | None = None,
) -> tuple[Network, list[Site]]:
    """A fresh clock + network with ``n_sites`` identical sites."""
    clock = VirtualClock()
    network = Network(clock, seed=seed)
    sites = [
        build_site(
            network,
            name=f"site-{chr(ord('a') + i)}",
            n_hosts=n_hosts,
            agents=agents,
            seed=seed + i,
            policy=policy,
        )
        for i in range(n_sites)
    ]
    return network, sites
