"""JDBC-SQL driver.

Bridges GridRM to relational data sources (site inventory/accounting
databases).  The native protocol *is* SQL, so this driver can do what no
other can: push the WHERE clause down to the source.  When every column a
WHERE clause references maps 1:1 onto a native column (no transform, no
unit scaling), the clause is rewritten with native names and shipped with
the native SELECT; otherwise the driver falls back to fetching the whole
native table and filtering locally, which is always correct.
"""

from __future__ import annotations

from typing import Any

from repro.agents.sqlagent import SQLAGENT_PORT
from repro.dbapi.exceptions import SQLConnectionException, SQLException
from repro.dbapi.url import JdbcUrl
from repro.drivers.base import GridRmConnection, GridRmDriver
from repro.glue.mapping import GroupMapping, MappingRule, SchemaMapping
from repro.simnet.errors import PortClosedError
from repro.simnet.network import Address
from repro.sql import ast_nodes as sql_ast
from repro.sql.render import render_expr, rewrite_columns

#: GLUE group -> (native table, {GLUE field -> native column}).
#: Only identity-mapped (un-transformed) fields are listed here; they are
#: both the translation table and the pushdown rename map.
_NATIVE_TABLES: dict[str, tuple[str, dict[str, str]]] = {
    "Host": (
        "hosts",
        {"HostName": "name", "SiteName": "site"},
    ),
    "Processor": (
        "hosts",
        {
            "HostName": "name",
            "SiteName": "site",
            "CPUCount": "cpus",
            "ClockSpeedMHz": "mhz",
            "LoadAverage1Min": "load1",
            "Timestamp": "updated",
        },
    ),
    "Job": (
        "jobs",
        {
            "HostName": "node",
            "JobId": "jobid",
            "Queue": "queue",
            "Owner": "owner",
            "State": "state",
            "CPUSeconds": "cpusec",
            "WallSeconds": "wallsec",
            "NodeCount": "nodes",
            "Timestamp": "submitted",
        },
    ),
}


class SqlDriver(GridRmDriver):
    """Relational data-source driver with WHERE pushdown."""

    protocol = "sql"
    default_port = SQLAGENT_PORT
    display_name = "JDBC-SQL"

    #: Incremented whenever a query's WHERE clause was pushed to the
    #: source; consumed by tests and the pushdown ablation bench.
    pushdowns = 0

    def build_mapping(self) -> SchemaMapping:
        groups = []
        for group, (_table, columns) in _NATIVE_TABLES.items():
            rules = [
                MappingRule(glue_field, native) for glue_field, native in columns.items()
            ]
            if group == "Host":
                rules += [
                    MappingRule(
                        "UniqueId", None, transform=lambda r: f"{r.get('name')}#sql"
                    ),
                    MappingRule("Reachable", None, transform=lambda r: True),
                    MappingRule("AgentName", None, transform=lambda r: "sql-db"),
                    MappingRule("Timestamp", "updated"),
                ]
            groups.append(GroupMapping(group, rules))
        return SchemaMapping(self.display_name, groups)

    # ------------------------------------------------------------------
    def probe(self, url: JdbcUrl, *, timeout: float = 1.0) -> bool:
        self.stats["probes"] += 1
        port = url.port if url.port is not None else self.default_port
        try:
            response = self.network.request(
                self.gateway_host,
                Address(url.host, port),
                "SELECT COUNT(*) FROM hosts",
                timeout=timeout,
            )
        except PortClosedError:
            return False
        return isinstance(response, tuple) and response and response[0] == "ok"

    def fetch_group(
        self,
        connection: GridRmConnection,
        group: str,
        select: sql_ast.Select,
    ) -> list[dict[str, Any]]:
        self.stats["fetches"] += 1
        entry = _NATIVE_TABLES.get(group)
        if entry is None:
            raise SQLException(f"{self.display_name} does not serve group {group!r}")
        table, columns = entry

        native_sql = f"SELECT * FROM {table}"
        if select.where is not None:
            rewritten = rewrite_columns(select.where, columns)
            if rewritten is not None:
                native_sql += f" WHERE {render_expr(rewritten)}"
                type(self).pushdowns += 1

        response = connection.request(native_sql)
        if not isinstance(response, tuple) or not response:
            raise SQLConnectionException(
                f"malformed response from SQL source at {connection.url.host}"
            )
        if response[0] == "error":
            raise SQLException(f"native SQL error: {response[1]}")
        if response[0] != "ok":
            raise SQLException(f"unexpected native response kind {response[0]!r}")
        _, cols, rows = response
        return [dict(zip(cols, r)) for r in rows]
