"""Driver development kit.

The paper's minimal-driver recipe (§3.2.1) requires implementing a small
subset of the JDBC surface plus, "typically implemented in separate
classes within the driver":

* a class to parse the SQL query strings (supplied as part of a GridRM
  driver development API) — here :func:`repro.sql.parser.parse_select`;
* a class to perform mapping of data requests to the data source based on
  the naming schema — here :class:`repro.glue.mapping.SchemaMapping`,
  fetched from the gateway's SchemaManager at connection time;
* code to interact with the data source agent via native protocols;
* code to translate result data into the format required by GLUE.

:class:`GridRmDriver` / :class:`GridRmConnection` / :class:`GridRmStatement`
implement everything except the two native-protocol hooks, which each
concrete driver supplies:

* ``probe(url)`` — cheap liveness check (used for wildcard-URL driver
  selection and connection-pool validation);
* ``fetch_group(connection, group, select)`` — return native records for
  one GLUE group.

Per-driver caching policy (§3.3: "implementations should address these
issues by using caching policies within the plug-in, as appropriate for
the characteristics of a particular type of data source") is provided by
:class:`ResponseCache`, a virtual-clock TTL cache coarse-grained drivers
wrap around their expensive full-dump fetches.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Mapping, Sequence

from repro.dbapi.exceptions import (
    SQLConnectionException,
    SQLException,
    SQLSyntaxErrorException,
    SQLTimeoutException,
)
from repro.dbapi.interfaces import (
    Connection,
    DatabaseMetaData,
    Driver,
    ResultSet,
    Statement,
)
from repro.dbapi.resultset import ListResultSet
from repro.dbapi.url import JdbcUrl
from repro.glue.mapping import SchemaMapping
from repro.glue.schema import GlueSchema, STANDARD_SCHEMA
from repro.simnet.errors import NetworkError, TimeoutError_
from repro.simnet.network import Address, Network
from repro.sql import ast_nodes as sql_ast
from repro.sql.errors import SqlError
from repro.sql.executor import execute_select
from repro.sql.parser import parse_select

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.deadline import Deadline
    from repro.sql.plan import CompiledPlan

#: Default TTL for coarse-grained response caches, virtual seconds.
DEFAULT_CACHE_TTL = 15.0


class ResponseCache:
    """A tiny TTL cache keyed on arbitrary hashables, over virtual time."""

    def __init__(self, network: Network, ttl: float = DEFAULT_CACHE_TTL) -> None:
        if ttl < 0:
            raise ValueError(f"negative ttl: {ttl!r}")
        self.network = network
        self.ttl = ttl
        self._entries: dict[Any, tuple[float, Any]] = {}
        self.hits = 0
        self.misses = 0

    def get_or_fetch(self, key: Any, fetch: Callable[[], Any]) -> Any:
        now = self.network.clock.now()
        entry = self._entries.get(key)
        if entry is not None and self.ttl > 0 and now - entry[0] <= self.ttl:
            self.hits += 1
            return entry[1]
        self.misses += 1
        value = fetch()
        self._entries[key] = (now, value)
        return value

    def invalidate(self, key: Any = None) -> None:
        if key is None:
            self._entries.clear()
        else:
            self._entries.pop(key, None)

    @property
    def hit_ratio(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


@dataclass
class _MappingHandle:
    """The connection's cached schema mapping plus its version stamp.

    Paper Figure 5: "Schema is cached when the connection is created.
    Statement checks cache consistency before using schema instance."
    """

    mapping: SchemaMapping
    version: int


class GridRmStatement(Statement):
    """Statement: parse SQL, fetch native records, translate, filter."""

    def __init__(self, connection: "GridRmConnection") -> None:
        self._connection = connection
        self._closed = False
        self._timeout: float | None = None

    def execute_query(
        self, sql: str, plan: "CompiledPlan | None" = None
    ) -> ResultSet:
        """Parse, fetch, translate, filter.

        ``plan`` (a :class:`repro.sql.plan.CompiledPlan` for this exact
        ``sql``) lets the gateway's hot path skip the parse and run the
        compiled executor over positional rows straight out of the
        mapping layer — no per-row dicts, no per-row copies.  Callers
        that only have raw SQL (standalone JDBC-style use) omit it and
        get the interpreted path.
        """
        if self._closed:
            raise SQLException("statement is closed")
        conn = self._connection
        if conn.is_closed():
            raise SQLConnectionException("connection is closed")
        if plan is not None:
            select = plan.select
        else:
            try:
                select = parse_select(sql)
            except SqlError as exc:
                raise SQLSyntaxErrorException(str(exc), cause=exc) from exc

        if select.is_join:
            raise SQLException(
                "drivers serve one GLUE group per statement; multi-group "
                "queries are joined by the gateway's RequestManager"
            )
        conn.refresh_mapping_if_stale()
        mapping = conn.mapping
        schema = conn.schema
        group_name = select.table
        if not mapping.supports(group_name):
            raise SQLException(
                f"driver {conn.driver.name()!r} does not serve group "
                f"{group_name!r} (supported: {mapping.groups()})"
            )
        group = schema.group(group_name)
        try:
            records = conn.driver.fetch_group(conn, group.name, select)
        except TimeoutError_ as exc:
            raise SQLTimeoutException(str(exc), cause=exc) from exc
        except NetworkError as exc:
            raise SQLConnectionException(str(exc), cause=exc) from exc

        types: Sequence[str] | None = None
        if select.is_star:
            types = group.column_types()
        if plan is not None:
            slot_rows = mapping.translate_rows(group.name, records, schema)
            result = plan.bind(tuple(group.field_names())).execute(slot_rows)
            return ListResultSet.adopt(result.columns, result.rows, types)
        rows = mapping.translate(group.name, records, schema)
        result = execute_select(select, group.field_names(), rows)
        return ListResultSet(result.columns, result.rows, types)

    def set_query_timeout(self, seconds: float) -> None:
        if seconds <= 0:
            raise SQLException(f"timeout must be positive: {seconds!r}")
        self._timeout = seconds

    @property
    def query_timeout(self) -> float | None:
        return self._timeout

    def close(self) -> None:
        self._closed = True

    def is_closed(self) -> bool:
        return self._closed


class GridRmDatabaseMetaData(DatabaseMetaData):
    """Connection metadata surfaced by the management console."""

    def __init__(self, connection: "GridRmConnection") -> None:
        self._connection = connection

    def driver_name(self) -> str:
        return self._connection.driver.name()

    def driver_version(self) -> str:
        return self._connection.driver.version()

    def url(self) -> str:
        return str(self._connection.url)

    def get_tables(self) -> list[str]:
        return self._connection.mapping.groups()


class GridRmConnection(Connection):
    """A session with one data source.

    Creating the connection costs a native probe round-trip plus the
    schema-mapping fetch — the overhead the ConnectionManager's pool
    amortises (paper §3.1.2, experiment E1).
    """

    def __init__(
        self,
        driver: "GridRmDriver",
        url: JdbcUrl,
        info: Mapping[str, Any] | None = None,
    ) -> None:
        self.driver = driver
        self.url = url
        self.info = dict(info or {})
        self._closed = False
        self.schema: GlueSchema = self.info.get("schema", STANDARD_SCHEMA)
        self._schema_manager = self.info.get("schema_manager")
        self._mapping_handle = self._fetch_mapping()
        # Session state usable by concrete drivers (per-connection caches).
        self.session: dict[str, Any] = {}
        #: End-to-end deadline of the query currently borrowing this
        #: connection; stamped by the ConnectionManager at acquire time
        #: and cleared at release.  Every native request is clamped to
        #: the remaining budget (see :meth:`request`).
        self.deadline: "Deadline | None" = None
        #: Tracer of the query currently borrowing this connection —
        #: stamped and cleared exactly like :attr:`deadline` — so native
        #: round-trips show up as spans without drivers doing anything.
        self.tracer: Any = None

    # -- schema mapping lifecycle --------------------------------------
    def _fetch_mapping(self) -> _MappingHandle:
        if self._schema_manager is not None:
            mapping = self._schema_manager.mapping_for(
                self.driver.name(), default=self.driver.default_mapping()
            )
            version = self._schema_manager.version
        else:
            mapping = self.driver.default_mapping()
            version = 0
        return _MappingHandle(mapping=mapping, version=version)

    def refresh_mapping_if_stale(self) -> None:
        """Statement-time consistency check against the SchemaManager."""
        if self._schema_manager is None:
            return
        if self._schema_manager.version != self._mapping_handle.version:
            self._mapping_handle = self._fetch_mapping()

    @property
    def mapping(self) -> SchemaMapping:
        return self._mapping_handle.mapping

    # -- Connection interface -------------------------------------------
    def create_statement(self) -> GridRmStatement:
        if self._closed:
            raise SQLConnectionException("connection is closed")
        return GridRmStatement(self)

    def close(self) -> None:
        self._closed = True

    def is_closed(self) -> bool:
        return self._closed

    def is_valid(self, timeout: float = 1.0) -> bool:
        if self._closed:
            return False
        try:
            return self.driver.probe(self.url, timeout=timeout)
        except NetworkError:
            return False

    def get_metadata(self) -> GridRmDatabaseMetaData:
        return GridRmDatabaseMetaData(self)

    # -- helpers for concrete drivers ------------------------------------
    @property
    def network(self) -> Network:
        return self.driver.network

    def agent_address(self) -> Address:
        """The native agent endpoint this connection talks to."""
        port = self.url.port if self.url.port is not None else self.driver.default_port
        return Address(self.url.host, port)

    def request(self, payload: Any, *, timeout: float | None = None) -> Any:
        """One native round-trip from the gateway host to the agent.

        When the borrowing query carries a deadline, the native timeout
        is clamped to the remaining budget (and the request fails fast
        with :class:`~repro.core.errors.DeadlineExceededError` once that
        budget is gone) — a driver that routes all its agent traffic
        through here honours end-to-end deadlines for free.
        """
        deadline = self.deadline
        if deadline is not None:
            base = self.network.DEFAULT_TIMEOUT if timeout is None else timeout
            timeout = deadline.clamp(base, f"native request to {self.url.host}")
        if self.tracer is None:
            return self.network.request(
                self.driver.gateway_host,
                self.agent_address(),
                payload,
                timeout=timeout,
            )
        with self.tracer.span(
            "native", host=self.url.host, protocol=self.driver.protocol
        ) as span:
            if timeout is not None:
                span["timeout"] = timeout
            return self.network.request(
                self.driver.gateway_host,
                self.agent_address(),
                payload,
                timeout=timeout,
            )


class GridRmDriver(Driver):
    """Base class for all GridRM data-source drivers.

    Concrete drivers set :attr:`protocol` and :attr:`default_port`, build
    their GLUE mapping in :meth:`build_mapping`, and implement
    :meth:`probe` and :meth:`fetch_group`.
    """

    #: JDBC subprotocol this driver serves ("snmp", "ganglia", ...).
    protocol = ""
    #: Agent port assumed when the URL does not carry one.
    default_port = 0
    #: Human-readable driver name.
    display_name = "GridRM driver"
    #: Whether a fetch may safely be re-issued (retries, hedging).
    #: Monitoring reads are idempotent; a driver wrapping an agent with
    #: side effects (counters reset on read, one-shot probes) must set
    #: this False to opt out of query-level retries and hedged requests.
    idempotent = True

    def __init__(self, network: Network, *, gateway_host: str = "gateway") -> None:
        if not self.protocol:
            raise SQLException(f"{type(self).__name__} must define a protocol")
        self.network = network
        self.gateway_host = gateway_host
        self._mapping: SchemaMapping | None = None
        #: Probe/connect/query counters for the experiments.
        self.stats = {"probes": 0, "connects": 0, "fetches": 0}

    # -- Driver interface -------------------------------------------------
    def accepts_url(self, url: JdbcUrl) -> bool:
        """Protocol-pinned URLs match by string; wildcard URLs require a
        live probe of the data source (Table 2's "supports the URL AND can
        connect" semantics)."""
        if not isinstance(url, JdbcUrl):
            raise SQLException(f"expected JdbcUrl, got {type(url).__name__}")
        if url.protocol == self.protocol:
            return True
        if url.is_wildcard:
            try:
                return self.probe(url)
            except NetworkError:
                return False
        return False

    def connect(
        self, url: JdbcUrl | str, info: Mapping[str, Any] | None = None
    ) -> GridRmConnection:
        url = JdbcUrl.parse(url) if isinstance(url, str) else url
        if not url.is_wildcard and url.protocol != self.protocol:
            raise SQLConnectionException(
                f"{self.name()} cannot serve protocol {url.protocol!r}"
            )
        self.stats["connects"] += 1
        # JDBC's login-timeout idiom: a "connect_timeout" connection
        # property bounds the liveness probe, so a caller with little
        # deadline budget left is not stuck paying the full probe
        # timeout to a dead host (the DriverManager sets this from the
        # query's remaining deadline).
        probe_kwargs: dict[str, Any] = {}
        if info is not None and "connect_timeout" in info:
            probe_kwargs["timeout"] = float(info["connect_timeout"])
        try:
            alive = self.probe(url, **probe_kwargs)
        except NetworkError as exc:
            raise SQLConnectionException(
                f"{self.name()}: cannot reach {url.host}: {exc}", cause=exc
            ) from exc
        if not alive:
            raise SQLConnectionException(
                f"{self.name()}: no compatible agent at {url.host}"
            )
        return GridRmConnection(self, url, info)

    def name(self) -> str:
        return self.display_name

    # -- mapping ----------------------------------------------------------
    def default_mapping(self) -> SchemaMapping:
        """The driver's built-in GLUE implementation (built once)."""
        if self._mapping is None:
            self._mapping = self.build_mapping()
        return self._mapping

    def build_mapping(self) -> SchemaMapping:
        raise NotImplementedError

    # -- native protocol hooks ---------------------------------------------
    def probe(self, url: JdbcUrl, *, timeout: float = 1.0) -> bool:
        """Cheap native liveness check; must not raise on a clean 'no'."""
        raise NotImplementedError

    def fetch_group(
        self,
        connection: GridRmConnection,
        group: str,
        select: sql_ast.Select,
    ) -> list[dict[str, Any]]:
        """Return native records (dicts of native keys) for ``group``.

        ``select`` is provided so fine-grained drivers can fetch only the
        fields the query touches and push down LIMIT/WHERE where the
        native protocol allows.
        """
        raise NotImplementedError

    # -- shared helpers -----------------------------------------------------
    def fields_needed(
        self, select: sql_ast.Select, group_fields: Sequence[str]
    ) -> list[str]:
        """GLUE fields a query actually touches (projection + WHERE +
        ORDER BY + GROUP BY); all fields for ``SELECT *``."""
        if select.is_star:
            return list(group_fields)
        needed: set[str] = set()
        for item in select.items:
            needed |= sql_ast.columns_in(item.expr)
        if select.where is not None:
            needed |= sql_ast.columns_in(select.where)
        for g in select.group_by:
            needed |= sql_ast.columns_in(g)
        for o in select.order_by:
            needed |= sql_ast.columns_in(o.expr)
        # Normalise case against the group's canonical field names.
        canonical = {f.lower(): f for f in group_fields}
        out = []
        for n in sorted(needed):
            hit = canonical.get(n.lower())
            if hit is not None:
                out.append(hit)
        return sorted(out)
