"""JDBC-NetLogger driver.

Serves the ``LogEvent`` GLUE group from a NetLogger agent's ULM record
stream.  Fine-grained like SNMP (§3.3): the driver pushes the query down
to the agent where the native protocol allows —

* ``WHERE Program = 'x'``      -> ``MATCH PROG=x``
* ``WHERE EventName = 'y'``    -> ``MATCH NL.EVNT=y``
* ``WHERE EventTime >= t``     -> ``SINCE t``
* ``LIMIT n`` (no WHERE)       -> ``TAIL n``

so only matching lines cross the wire; anything the pushdown cannot
express is still filtered by the statement layer afterwards.
"""

from __future__ import annotations

from typing import Any

from repro.agents.netlogger import NETLOGGER_PORT, parse_ulm_line
from repro.dbapi.url import JdbcUrl
from repro.drivers.base import GridRmConnection, GridRmDriver
from repro.glue.mapping import GroupMapping, MappingRule, SchemaMapping
from repro.simnet.errors import PortClosedError
from repro.simnet.network import Address
from repro.sql import ast_nodes as sql_ast

#: Default tail size when no pushdown-friendly constraint is present.
DEFAULT_TAIL = 256

#: GLUE field -> ULM field for equality pushdown via MATCH.
_MATCH_FIELDS = {"Program": "PROG", "EventName": "NL.EVNT", "Level": "LVL"}


def _parse_ulm_date(text: str) -> float | None:
    """Invert :func:`repro.agents.netlogger.format_ulm_date`."""
    # Format: 20030615<seconds:010d>.<micros:06d>
    if len(text) < 19 or not text.startswith("20030615"):
        return None
    try:
        whole = int(text[8:18])
        micros = int(text.partition(".")[2] or "0")
    except ValueError:
        return None
    return whole + micros / 1e6


def _equality_pushdown(where: sql_ast.Expr | None) -> tuple[str, str] | None:
    """Detect a top-level ``Column = 'literal'`` suited to MATCH."""
    if not isinstance(where, sql_ast.BinOp) or where.op != "=":
        return None
    col, lit = where.left, where.right
    if not isinstance(col, sql_ast.Column):
        col, lit = lit, col
    if isinstance(col, sql_ast.Column) and isinstance(lit, sql_ast.Literal):
        ulm = _MATCH_FIELDS.get(col.name)
        if ulm is not None and isinstance(lit.value, str):
            return ulm, lit.value
    return None


def _since_pushdown(where: sql_ast.Expr | None) -> float | None:
    """Detect a top-level ``EventTime >= t`` (or > t) constraint."""
    if not isinstance(where, sql_ast.BinOp) or where.op not in (">=", ">"):
        return None
    if (
        isinstance(where.left, sql_ast.Column)
        and where.left.name == "EventTime"
        and isinstance(where.right, sql_ast.Literal)
        and isinstance(where.right.value, (int, float))
    ):
        return float(where.right.value)
    return None


class NetLoggerDriver(GridRmDriver):
    """NetLogger ULM data-source driver with native query pushdown."""

    protocol = "netlogger"
    default_port = NETLOGGER_PORT
    display_name = "JDBC-NetLogger"

    def build_mapping(self) -> SchemaMapping:
        return SchemaMapping(
            self.display_name,
            [
                GroupMapping(
                    "LogEvent",
                    [
                        MappingRule("HostName", "HOST"),
                        MappingRule("SiteName", "_site"),
                        MappingRule("Timestamp", "_time"),
                        MappingRule("EventTime", "DATE", transform=_parse_ulm_date),
                        MappingRule("Program", "PROG"),
                        MappingRule("EventName", "NL.EVNT"),
                        MappingRule("Level", "LVL"),
                        MappingRule("Message", "_line"),
                    ],
                ),
                GroupMapping(
                    "Host",
                    [
                        MappingRule("HostName", "_host"),
                        MappingRule("SiteName", "_site"),
                        MappingRule("Timestamp", "_time"),
                        MappingRule(
                            "UniqueId",
                            None,
                            transform=lambda r: f"{r['_host']}#netlogger",
                        ),
                        MappingRule("Reachable", None, transform=lambda r: True),
                        MappingRule("AgentName", None, transform=lambda r: "netlogger"),
                    ],
                ),
            ],
        )

    # ------------------------------------------------------------------
    def probe(self, url: JdbcUrl, *, timeout: float = 1.0) -> bool:
        self.stats["probes"] += 1
        port = url.port if url.port is not None else self.default_port
        try:
            response = self.network.request(
                self.gateway_host, Address(url.host, port), "TAIL 1", timeout=timeout
            )
        except PortClosedError:
            return False
        return isinstance(response, str) and not response.startswith("ERROR")

    def fetch_group(
        self,
        connection: GridRmConnection,
        group: str,
        select: sql_ast.Select,
    ) -> list[dict[str, Any]]:
        self.stats["fetches"] += 1
        url = connection.url
        site = (
            self.network.site_of(url.host) if self.network.has_host(url.host) else None
        )
        now = self.network.clock.now()
        if group == "Host":
            return [{"_host": url.host, "_site": site, "_time": now}]

        # Choose the native request: MATCH > SINCE > TAIL.
        match = _equality_pushdown(select.where)
        since = _since_pushdown(select.where) if match is None else None
        if match is not None:
            native = f"MATCH {match[0]}={match[1]}"
        elif since is not None:
            native = f"SINCE {since}"
        else:
            limit = select.limit if select.limit is not None else DEFAULT_TAIL
            native = f"TAIL {limit}"
        response = str(connection.request(native))
        records: list[dict[str, Any]] = []
        for line in response.splitlines():
            if not line or line.startswith("ERROR"):
                continue
            fields = parse_ulm_line(line)
            fields["_site"] = site
            fields["_time"] = now
            fields["_line"] = line
            records.append(fields)
        return records
