"""JDBC-SNMP driver.

The paper's flagship fine-grained driver: each query issues one SNMP GET
whose varbind list contains exactly the OIDs the query touches, so
``SELECT LoadAverage1Min FROM Processor`` moves a few dozen bytes where
Ganglia would ship the whole cluster dump (experiment E3).

Unit friction handled here, matching real UCD/host-resources MIB
conventions: load averages arrive as ``load * 100`` integers, memory in
KB, sysUpTime in TimeTicks (centiseconds), ifSpeed in bits/second.  GLUE
fields with no SNMP equivalent (CPU vendor/model/clock) come out NULL —
the paper's prescribed behaviour for untranslatable data.
"""

from __future__ import annotations

import itertools
from typing import Any

from repro.agents import snmp as wire
from repro.dbapi.exceptions import SQLConnectionException, SQLException
from repro.dbapi.url import JdbcUrl
from repro.drivers.base import GridRmConnection, GridRmDriver
from repro.glue.mapping import GroupMapping, MappingRule, SchemaMapping
from repro.simnet.errors import PortClosedError
from repro.sql import ast_nodes as sql_ast

#: GLUE group -> { glue field -> (native key, OID) }.
_GROUP_OIDS: dict[str, dict[str, tuple[str, wire.Oid]]] = {
    "Host": {
        "HostName": ("sysName", wire.SYS_NAME),
        "AgentName": ("sysDescr", wire.SYS_DESCR),
    },
    "Processor": {
        "CPUCount": ("hrProcessorCount", wire.HR_PROCESSOR_COUNT),
        "LoadAverage1Min": ("laLoad1", wire.LA_LOAD_1),
        "LoadAverage5Min": ("laLoad5", wire.LA_LOAD_5),
        "LoadAverage15Min": ("laLoad15", wire.LA_LOAD_15),
        "CPUUser": ("ssCpuUser", wire.SS_CPU_USER),
        "CPUSystem": ("ssCpuSystem", wire.SS_CPU_SYSTEM),
        "CPUIdle": ("ssCpuIdle", wire.SS_CPU_IDLE),
        "CPUUtilization": ("ssCpuIdle", wire.SS_CPU_IDLE),
    },
    "MainMemory": {
        "RAMSizeMB": ("memTotalReal", wire.MEM_TOTAL_REAL),
        "RAMAvailableMB": ("memAvailReal", wire.MEM_AVAIL_REAL),
        "VirtualSizeMB": ("memTotalSwap", wire.MEM_TOTAL_SWAP),
        "VirtualAvailableMB": ("memAvailSwap", wire.MEM_AVAIL_SWAP),
        "BuffersMB": ("memBuffer", wire.MEM_BUFFER),
        "CachedMB": ("memCached", wire.MEM_CACHED),
    },
    "OperatingSystem": {
        "Name": ("sysDescr", wire.SYS_DESCR),
        "UptimeSeconds": ("sysUpTime", wire.SYS_UPTIME),
        "ProcessCount": ("hrSystemProcesses", wire.HR_SYSTEM_PROCESSES),
        "UserCount": ("hrSystemUsers", wire.HR_SYSTEM_USERS),
    },
    "NetworkAdapter": {
        "Name": ("ifDescr", wire.IF_DESCR),
        "MTU": ("ifMtu", wire.IF_MTU),
        "BandwidthMbps": ("ifSpeed", wire.IF_SPEED),
        "BytesReceived": ("ifInOctets", wire.IF_IN_OCTETS),
        "BytesSent": ("ifOutOctets", wire.IF_OUT_OCTETS),
        "ErrorsIn": ("ifInErrors", wire.IF_IN_ERRORS),
        "ErrorsOut": ("ifOutErrors", wire.IF_OUT_ERRORS),
    },
}

#: Fields synthesised locally (no OID fetch needed).
_LOCAL_FIELDS = {"HostName", "SiteName", "Timestamp", "UniqueId", "Reachable"}


def _avail_mb(record: dict) -> float | None:
    size, used = record.get("hrStorageSizeMB"), record.get("hrStorageUsedMB")
    if size is None or used is None:
        return None
    return float(size) - float(used)


#: hrSWRunStatus codes -> the host model's process-state letters.
_SWRUN_STATES = {1: "R", 2: "S", 3: "D", 4: "Z"}


def _descale_load(v: Any) -> float:
    return float(v) / 100.0


def _uptime_seconds(v: Any) -> float:
    return float(v) / 100.0  # TimeTicks are centiseconds


def _util_from_idle(v: Any) -> float:
    return 100.0 - float(v)


class SnmpDriver(GridRmDriver):
    """Fine-grained SNMP data-source driver."""

    protocol = "snmp"
    default_port = wire.SNMP_PORT
    display_name = "JDBC-SNMP"

    def __init__(self, network, *, gateway_host: str = "gateway") -> None:
        super().__init__(network, gateway_host=gateway_host)
        # Per-instance, not a class attribute: request ids feed the wire
        # payload, whose repr length feeds the bandwidth-delay model — a
        # process-global counter would make one testbed's timing depend
        # on how many SNMP requests earlier testbeds sent, breaking
        # seeded chaos replays.
        self._request_ids = itertools.count(1)

    # ------------------------------------------------------------------
    def build_mapping(self) -> SchemaMapping:
        common = lambda: [  # noqa: E731 - tiny local factory
            MappingRule("HostName", "_host"),
            MappingRule("SiteName", "_site"),
            MappingRule("Timestamp", "_time"),
        ]
        return SchemaMapping(
            self.display_name,
            [
                GroupMapping(
                    "Host",
                    common()
                    + [
                        MappingRule("UniqueId", "_unique_id"),
                        MappingRule("Reachable", "_reachable"),
                        MappingRule("AgentName", "sysDescr", transform=lambda v: f"snmp: {v}"),
                    ],
                ),
                GroupMapping(
                    "Processor",
                    common()
                    + [
                        MappingRule("CPUCount", "hrProcessorCount"),
                        MappingRule("LoadAverage1Min", "laLoad1", transform=_descale_load),
                        MappingRule("LoadAverage5Min", "laLoad5", transform=_descale_load),
                        MappingRule("LoadAverage15Min", "laLoad15", transform=_descale_load),
                        MappingRule("CPUUser", "ssCpuUser"),
                        MappingRule("CPUSystem", "ssCpuSystem"),
                        MappingRule("CPUIdle", "ssCpuIdle"),
                        MappingRule("CPUUtilization", "ssCpuIdle", transform=_util_from_idle),
                        # Vendor / Model / ClockSpeedMHz: no SNMP source -> NULL.
                    ],
                ),
                GroupMapping(
                    "MainMemory",
                    common()
                    + [
                        MappingRule("RAMSizeMB", "memTotalReal", unit="KB"),
                        MappingRule("RAMAvailableMB", "memAvailReal", unit="KB"),
                        MappingRule("VirtualSizeMB", "memTotalSwap", unit="KB"),
                        MappingRule("VirtualAvailableMB", "memAvailSwap", unit="KB"),
                        MappingRule("BuffersMB", "memBuffer", unit="KB"),
                        MappingRule("CachedMB", "memCached", unit="KB"),
                    ],
                ),
                GroupMapping(
                    "OperatingSystem",
                    common()
                    + [
                        MappingRule(
                            "Name", "sysDescr", transform=lambda v: str(v).split()[0]
                        ),
                        MappingRule(
                            "Release",
                            "sysDescr",
                            transform=lambda v: str(v).split()[1],
                        ),
                        MappingRule("UptimeSeconds", "sysUpTime", transform=_uptime_seconds),
                        MappingRule("ProcessCount", "hrSystemProcesses"),
                        MappingRule("UserCount", "hrSystemUsers"),
                    ],
                ),
                GroupMapping(
                    "FileSystem",
                    common()
                    + [
                        MappingRule("Name", "hrStorageDescr"),
                        MappingRule("Root", "hrStorageDescr"),
                        MappingRule("SizeMB", "hrStorageSizeMB"),
                        MappingRule("AvailableSpaceMB", None, transform=_avail_mb),
                        # ReadOnly / Type: not observable via hrStorage -> NULL.
                    ],
                ),
                GroupMapping(
                    "Process",
                    common()
                    + [
                        MappingRule("PID", "hrSWRunIndex"),
                        MappingRule("Name", "hrSWRunName"),
                        MappingRule(
                            "State",
                            "hrSWRunStatus",
                            transform=lambda v: _SWRUN_STATES.get(int(v)),
                        ),
                        MappingRule(
                            "CPUPercent", "hrSWRunPerfCPU", transform=lambda v: v / 10.0
                        ),
                        MappingRule(
                            "MemoryPercent", "hrSWRunPerfMem", transform=lambda v: v / 10.0
                        ),
                        # Owner: not in hrSWRun -> NULL.
                    ],
                ),
                GroupMapping(
                    "NetworkAdapter",
                    common()
                    + [
                        MappingRule("Name", "ifDescr"),
                        MappingRule("MTU", "ifMtu"),
                        MappingRule("BandwidthMbps", "ifSpeed", unit="bps"),
                        MappingRule("BytesReceived", "ifInOctets"),
                        MappingRule("BytesSent", "ifOutOctets"),
                        MappingRule("ErrorsIn", "ifInErrors"),
                        MappingRule("ErrorsOut", "ifOutErrors"),
                    ],
                ),
            ],
        )

    # ------------------------------------------------------------------
    def _community(self, url: JdbcUrl) -> str:
        return url.params.get("community", "public")

    def _send(
        self,
        url: JdbcUrl,
        msg: wire.SnmpMessage,
        *,
        timeout: float | None = None,
        conn: GridRmConnection | None = None,
    ) -> wire.SnmpMessage:
        """One native SNMP round-trip.

        Fetch-path callers pass the borrowing ``conn`` so the request is
        routed through :meth:`GridRmConnection.request` and the native
        timeout is clamped to the query's remaining deadline.  Probe-time
        callers have no connection yet and go straight to the network.
        """
        if conn is not None:
            raw = conn.request(msg.encode(), timeout=timeout)
        else:
            port = url.port if url.port is not None else self.default_port
            raw = self.network.request(
                self.gateway_host,
                wire.Address(url.host, port),
                msg.encode(),
                timeout=timeout,
            )
        try:
            return wire.SnmpMessage.decode(raw)
        except wire.SnmpCodecError as exc:
            raise SQLConnectionException(
                f"undecodable SNMP response from {url.host}", cause=exc
            ) from exc

    def _get(
        self,
        url: JdbcUrl,
        oids: list[wire.Oid],
        *,
        timeout: float | None = None,
        conn: GridRmConnection | None = None,
    ) -> wire.SnmpMessage:
        msg = wire.SnmpMessage(
            version=0,
            community=self._community(url),
            pdu_type=wire.TAG_GET,
            request_id=next(self._request_ids),
            error_status=0,
            error_index=0,
            varbinds=tuple(wire.VarBind(oid) for oid in oids),
        )
        return self._send(url, msg, timeout=timeout, conn=conn)

    def _getnext(
        self,
        url: JdbcUrl,
        oid: wire.Oid,
        *,
        timeout: float | None = None,
        conn: GridRmConnection | None = None,
    ) -> wire.SnmpMessage:
        msg = wire.SnmpMessage(
            version=0,
            community=self._community(url),
            pdu_type=wire.TAG_GETNEXT,
            request_id=next(self._request_ids),
            error_status=0,
            error_index=0,
            varbinds=(wire.VarBind(oid),),
        )
        return self._send(url, msg, timeout=timeout, conn=conn)

    def walk(
        self,
        url: JdbcUrl,
        base: wire.Oid,
        *,
        conn: GridRmConnection | None = None,
    ) -> list[tuple[wire.Oid, Any]]:
        """GETNEXT walk of one MIB subtree: [(suffix, value), ...].

        This is how a real JDBC-SNMP driver enumerates conceptual table
        rows — one round-trip per entry, the price of SNMP's fine grain.
        """
        out: list[tuple[wire.Oid, Any]] = []
        current = base
        while True:
            resp = self._getnext(url, current, conn=conn)
            if resp.error_status != wire.ERR_NONE or not resp.varbinds:
                break
            vb = resp.varbinds[0]
            if vb.oid[: len(base)] != base:
                break  # walked past the subtree
            out.append((vb.oid[len(base):], vb.value))
            current = vb.oid
        return out

    def bulk_walk(
        self,
        url: JdbcUrl,
        base: wire.Oid,
        *,
        max_repetitions: int = 16,
        conn: GridRmConnection | None = None,
    ) -> list[tuple[wire.Oid, Any]]:
        """GETBULK walk: like :meth:`walk` but fetching ``max_repetitions``
        entries per round-trip (SNMPv2c).  Ablation A2 measures the
        round-trip saving on table enumeration."""
        if max_repetitions < 1:
            raise SQLException(f"max_repetitions must be >= 1: {max_repetitions!r}")
        out: list[tuple[wire.Oid, Any]] = []
        current = base
        while True:
            msg = wire.SnmpMessage(
                version=1,
                community=self._community(url),
                pdu_type=wire.TAG_GETBULK,
                request_id=next(self._request_ids),
                error_status=0,  # non-repeaters
                error_index=max_repetitions,
                varbinds=(wire.VarBind(current),),
            )
            resp = self._send(url, msg, conn=conn)
            if resp.error_status != wire.ERR_NONE or not resp.varbinds:
                break
            done = False
            for vb in resp.varbinds:
                if vb.oid[: len(base)] != base:
                    done = True
                    break
                out.append((vb.oid[len(base):], vb.value))
                current = vb.oid
            if done or len(resp.varbinds) < max_repetitions:
                break
        return out

    def probe(self, url: JdbcUrl, *, timeout: float = 1.0) -> bool:
        self.stats["probes"] += 1
        try:
            resp = self._get(url, [wire.SYS_UPTIME], timeout=timeout)
        except PortClosedError:
            return False
        except SQLException:
            return False
        return resp.error_status == wire.ERR_NONE

    def fetch_group(
        self,
        connection: GridRmConnection,
        group: str,
        select: sql_ast.Select,
    ) -> list[dict[str, Any]]:
        self.stats["fetches"] += 1
        url = connection.url
        if group == "FileSystem":
            return self._fetch_filesystems(connection)
        if group == "Process":
            return self._fetch_processes(connection)
        field_map = _GROUP_OIDS.get(group, {})
        group_fields = list(field_map) + sorted(_LOCAL_FIELDS)
        needed = self.fields_needed(select, group_fields)

        oid_by_key: dict[str, wire.Oid] = {}
        for f in needed:
            if f in field_map:
                key, oid = field_map[f]
                oid_by_key[key] = oid
        record: dict[str, Any] = {
            "_host": url.host,
            "_site": self.network.site_of(url.host)
            if self.network.has_host(url.host)
            else None,
            "_time": self.network.clock.now(),
            "_unique_id": f"{url.host}#{self.protocol}",
            "_reachable": True,
        }
        if oid_by_key:
            keys = list(oid_by_key)
            resp = self._get(url, [oid_by_key[k] for k in keys], conn=connection)
            # (single-record groups; table groups are handled above)
            if resp.error_status == wire.ERR_NO_SUCH_NAME:
                # Partial MIB: retry one-by-one so present OIDs still land.
                for key in keys:
                    single = self._get(url, [oid_by_key[key]], conn=connection)
                    if single.error_status == wire.ERR_NONE and single.varbinds:
                        record[key] = single.varbinds[0].value
            elif resp.error_status != wire.ERR_NONE:
                raise SQLConnectionException(
                    f"SNMP error {resp.error_status} from {url.host}"
                )
            else:
                for key, vb in zip(keys, resp.varbinds):
                    record[key] = vb.value
        return [record]

    def _fetch_filesystems(self, connection: GridRmConnection) -> list[dict[str, Any]]:
        """One record per hrStorage table row, enumerated by a MIB walk."""
        url = connection.url
        base = {
            "_host": url.host,
            "_site": self.network.site_of(url.host)
            if self.network.has_host(url.host)
            else None,
            "_time": self.network.clock.now(),
            "_unique_id": f"{url.host}#{self.protocol}",
            "_reachable": True,
        }
        descrs = self.walk(url, wire.HR_STORAGE_DESCR, conn=connection)
        if not descrs:
            return []
        # One batched GET for every size/used cell of the table.
        indices = [suffix for suffix, _ in descrs]
        oids = [wire.HR_STORAGE_SIZE_MB + s for s in indices]
        oids += [wire.HR_STORAGE_USED_MB + s for s in indices]
        resp = self._get(url, oids, conn=connection)
        if resp.error_status != wire.ERR_NONE:
            raise SQLConnectionException(
                f"SNMP error {resp.error_status} walking storage on {url.host}"
            )
        n = len(indices)
        records = []
        for i, (suffix, descr) in enumerate(descrs):
            record = dict(base)
            record["hrStorageDescr"] = descr
            record["hrStorageSizeMB"] = resp.varbinds[i].value
            record["hrStorageUsedMB"] = resp.varbinds[n + i].value
            records.append(record)
        return records

    def _fetch_processes(self, connection: GridRmConnection) -> list[dict[str, Any]]:
        """One record per hrSWRun table row (PID-indexed), via GETBULK.

        The process table can be large, so this uses the bulk walk rather
        than one GETNEXT per row (ablation A2 quantifies the saving).
        The four columns must be read within a single virtual instant or
        the PID set could shift between walks; columns are therefore
        fetched with one batched GET over the PIDs the name-column walk
        enumerated, exactly like the filesystem fetch.
        """
        url = connection.url
        base = {
            "_host": url.host,
            "_site": self.network.site_of(url.host)
            if self.network.has_host(url.host)
            else None,
            "_time": self.network.clock.now(),
            "_unique_id": f"{url.host}#{self.protocol}",
            "_reachable": True,
        }
        names = self.bulk_walk(url, wire.HR_SWRUN_NAME, max_repetitions=16, conn=connection)
        if not names:
            return []
        indices = [suffix for suffix, _ in names]
        oids = [wire.HR_SWRUN_STATUS + s for s in indices]
        oids += [wire.HR_SWRUN_CPU + s for s in indices]
        oids += [wire.HR_SWRUN_MEM + s for s in indices]
        resp = self._get(url, oids, conn=connection)
        records: list[dict[str, Any]] = []
        n = len(indices)
        ok = resp.error_status == wire.ERR_NONE
        for i, (suffix, name) in enumerate(names):
            record = dict(base)
            record["hrSWRunIndex"] = suffix[0] if suffix else None
            record["hrSWRunName"] = name
            if ok:
                record["hrSWRunStatus"] = resp.varbinds[i].value
                record["hrSWRunPerfCPU"] = resp.varbinds[n + i].value
                record["hrSWRunPerfMem"] = resp.varbinds[2 * n + i].value
            records.append(record)
        return records
