"""GridRM data-source drivers.

One plug-in per native agent, all built on the driver development kit in
:mod:`repro.drivers.base` (the paper ships an equivalent kit: SQL parsing,
schema mapping and data-source interaction helpers, §3.2.1).  Every driver
follows the same contract: SQL strings in, GLUE-normalised ResultSets out,
with the native protocol fully encapsulated.
"""

from repro.drivers.base import (
    GridRmDriver,
    GridRmConnection,
    GridRmStatement,
    ResponseCache,
    DEFAULT_CACHE_TTL,
)
from repro.drivers.snmp_driver import SnmpDriver
from repro.drivers.ganglia_driver import GangliaDriver
from repro.drivers.nws_driver import NwsDriver
from repro.drivers.netlogger_driver import NetLoggerDriver
from repro.drivers.scms_driver import ScmsDriver
from repro.drivers.sql_driver import SqlDriver


def default_driver_set(network, *, gateway_host: str = "gateway"):
    """The start-up driver set a gateway registers by default (§3.2.2)."""
    return [
        SnmpDriver(network, gateway_host=gateway_host),
        GangliaDriver(network, gateway_host=gateway_host),
        NwsDriver(network, gateway_host=gateway_host),
        NetLoggerDriver(network, gateway_host=gateway_host),
        ScmsDriver(network, gateway_host=gateway_host),
        SqlDriver(network, gateway_host=gateway_host),
    ]


__all__ = [
    "GridRmDriver",
    "GridRmConnection",
    "GridRmStatement",
    "ResponseCache",
    "DEFAULT_CACHE_TTL",
    "SnmpDriver",
    "GangliaDriver",
    "NwsDriver",
    "NetLoggerDriver",
    "ScmsDriver",
    "SqlDriver",
    "default_driver_set",
]
