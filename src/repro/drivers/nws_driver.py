"""JDBC-NWS driver.

Serves the ``NetworkForecast`` GLUE group from a Network Weather Service
sensor: one native ``RESOURCES`` round-trip to enumerate what the sensor
measures, then one ``FORECAST`` request per resource.  Responses are
plain ``KEY=VALUE`` text the driver parses — the paper files NWS with
Ganglia under coarse-grained sources needing real parsing work (§3.3) —
and the resource list is cached per connection session, the per-driver
caching policy the paper recommends.
"""

from __future__ import annotations

from typing import Any

from repro.agents.nws import NWS_PORT
from repro.dbapi.url import JdbcUrl
from repro.drivers.base import GridRmConnection, GridRmDriver
from repro.glue.mapping import GroupMapping, MappingRule, SchemaMapping
from repro.simnet.errors import PortClosedError
from repro.simnet.network import Address
from repro.sql import ast_nodes as sql_ast


def parse_forecast_line(line: str) -> dict[str, str]:
    """Parse one ``KEY=VALUE ...`` forecast response line."""
    out: dict[str, str] = {}
    for part in line.split():
        key, sep, value = part.partition("=")
        if sep:
            out[key] = value
    return out


def _num_or_none(text: str | None) -> float | None:
    if text is None or text == "NA":
        return None
    try:
        return float(text)
    except ValueError:
        return None


class NwsDriver(GridRmDriver):
    """Network Weather Service data-source driver."""

    protocol = "nws"
    default_port = NWS_PORT
    display_name = "JDBC-NWS"

    # ------------------------------------------------------------------
    def build_mapping(self) -> SchemaMapping:
        return SchemaMapping(
            self.display_name,
            [
                GroupMapping(
                    "NetworkForecast",
                    [
                        MappingRule("HostName", "_host"),
                        MappingRule("SiteName", "_site"),
                        MappingRule("Timestamp", "TIME"),
                        MappingRule("Resource", "_resource"),
                        MappingRule("MeasuredValue", "MEASURED"),
                        MappingRule("ForecastValue", "FORECAST"),
                        MappingRule("ForecastError", "MAE"),
                        MappingRule("Method", "METHOD"),
                        MappingRule("PeerHost", "_peer"),
                    ],
                ),
                GroupMapping(
                    "Host",
                    [
                        MappingRule("HostName", "_host"),
                        MappingRule("SiteName", "_site"),
                        MappingRule("Timestamp", "_time"),
                        MappingRule(
                            "UniqueId", None, transform=lambda r: f"{r['_host']}#nws"
                        ),
                        MappingRule("Reachable", None, transform=lambda r: True),
                        MappingRule("AgentName", None, transform=lambda r: "nws-sensor"),
                    ],
                ),
            ],
        )

    # ------------------------------------------------------------------
    def probe(self, url: JdbcUrl, *, timeout: float = 1.0) -> bool:
        self.stats["probes"] += 1
        port = url.port if url.port is not None else self.default_port
        try:
            response = self.network.request(
                self.gateway_host, Address(url.host, port), "RESOURCES", timeout=timeout
            )
        except PortClosedError:
            return False
        return isinstance(response, str) and not response.startswith("ERROR")

    def _resources(self, connection: GridRmConnection) -> list[str]:
        cached = connection.session.get("nws_resources")
        if cached is not None:
            return cached
        response = connection.request("RESOURCES")
        resources = [r for r in str(response).splitlines() if r and not r.startswith("ERROR")]
        connection.session["nws_resources"] = resources
        return resources

    def fetch_group(
        self,
        connection: GridRmConnection,
        group: str,
        select: sql_ast.Select,
    ) -> list[dict[str, Any]]:
        self.stats["fetches"] += 1
        url = connection.url
        site = (
            self.network.site_of(url.host) if self.network.has_host(url.host) else None
        )
        if group == "Host":
            return [
                {
                    "_host": url.host,
                    "_site": site,
                    "_time": self.network.clock.now(),
                }
            ]
        records: list[dict[str, Any]] = []
        for resource in self._resources(connection):
            line = str(connection.request(f"FORECAST {resource.replace(':', ' ')}"))
            if line.startswith("ERROR"):
                continue
            fields = parse_forecast_line(line)
            name, _, peer = resource.partition(":")
            records.append(
                {
                    "_host": url.host,
                    "_site": site,
                    "_resource": name,
                    "_peer": peer or None,
                    "TIME": _num_or_none(fields.get("TIME")),
                    "MEASURED": _num_or_none(fields.get("MEASURED")),
                    "FORECAST": _num_or_none(fields.get("FORECAST")),
                    "MAE": _num_or_none(fields.get("MAE")),
                    "METHOD": fields.get("METHOD"),
                }
            )
        return records
