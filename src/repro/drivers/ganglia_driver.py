"""JDBC-Ganglia driver.

The coarse-grained counterpart to the SNMP driver: every native fetch
returns the gmond XML dump for the *whole cluster*, which the driver must
parse in full even when the query wants a single metric of a single host
(paper §3.3).  Two mitigations, both from the paper:

* a per-driver TTL response cache around the dump
  ("using caching policies within the plug-in, as appropriate for the
  characteristics of a particular type of data source");
* lazy vs eager parsing — the driver caches the *parsed* records by
  default (eager), or the raw XML when constructed with
  ``lazy_parse=True``, re-parsing per query (the trade-off §3.3 names:
  "how to represent data within the ResultSet, including lazy or eager
  parsing mechanisms").

The XML parser is hand-rolled (attribute-scanning, no recursion beyond
the fixed GANGLIA_XML/CLUSTER/HOST/METRIC nesting) so the measured parse
cost in experiment E3 reflects real string work.
"""

from __future__ import annotations

import re
from typing import Any

from repro.agents.ganglia import GANGLIA_PORT
from repro.dbapi.url import JdbcUrl
from repro.drivers.base import (
    DEFAULT_CACHE_TTL,
    GridRmConnection,
    GridRmDriver,
    ResponseCache,
)
from repro.glue.mapping import GroupMapping, MappingRule, SchemaMapping
from repro.simnet.errors import PortClosedError
from repro.simnet.network import Address
from repro.sql import ast_nodes as sql_ast

_TAG_RE = re.compile(r"<(/?)(\w+)((?:\s+\w+=\"[^\"]*\")*)\s*(/?)>")
_ATTR_RE = re.compile(r"(\w+)=\"([^\"]*)\"")


class GangliaXmlError(ValueError):
    """The agent response was not well-formed gmond XML."""


def parse_ganglia_xml(xml: str) -> list[dict[str, Any]]:
    """Parse a gmond dump into one flat record per HOST element.

    Each record maps metric NAME -> typed VAL, plus ``_host``/``_ip``/
    ``_cluster``/``_reported`` pseudo-metrics from the element attributes.
    """
    records: list[dict[str, Any]] = []
    cluster = ""
    current: dict[str, Any] | None = None
    for m in _TAG_RE.finditer(xml):
        closing, tag, attr_text, selfclosing = m.groups()
        if closing:
            if tag == "HOST":
                if current is None:
                    raise GangliaXmlError("</HOST> without <HOST>")
                records.append(current)
                current = None
            continue
        attrs = dict(_ATTR_RE.findall(attr_text))
        if tag == "CLUSTER":
            cluster = attrs.get("NAME", "")
        elif tag == "HOST":
            if current is not None:
                raise GangliaXmlError("nested <HOST>")
            current = {
                "_host": attrs.get("NAME", ""),
                "_ip": attrs.get("IP", ""),
                "_cluster": cluster,
                "_reported": float(attrs.get("REPORTED", "0")),
            }
        elif tag == "METRIC":
            if current is None:
                raise GangliaXmlError("<METRIC> outside <HOST>")
            name = attrs.get("NAME")
            if name is None:
                raise GangliaXmlError("<METRIC> without NAME")
            raw = attrs.get("VAL", "")
            mtype = attrs.get("TYPE", "string")
            value: Any
            if mtype == "string":
                value = raw
            elif mtype.startswith(("uint", "int")):
                try:
                    value = int(float(raw))
                except ValueError as exc:
                    raise GangliaXmlError(f"bad int VAL {raw!r} for {name}") from exc
            else:
                try:
                    value = float(raw)
                except ValueError as exc:
                    raise GangliaXmlError(f"bad float VAL {raw!r} for {name}") from exc
            current[name] = value
    if current is not None:
        raise GangliaXmlError("unterminated <HOST>")
    return records


class GangliaDriver(GridRmDriver):
    """Coarse-grained Ganglia data-source driver with a TTL dump cache."""

    protocol = "ganglia"
    default_port = GANGLIA_PORT
    display_name = "JDBC-Ganglia"

    def __init__(
        self,
        network,
        *,
        gateway_host: str = "gateway",
        cache_ttl: float = DEFAULT_CACHE_TTL,
        lazy_parse: bool = False,
    ) -> None:
        super().__init__(network, gateway_host=gateway_host)
        self.cache = ResponseCache(network, ttl=cache_ttl)
        self.lazy_parse = lazy_parse

    # ------------------------------------------------------------------
    def build_mapping(self) -> SchemaMapping:
        common = lambda: [  # noqa: E731
            MappingRule("HostName", "_host"),
            MappingRule("SiteName", "_cluster"),
            MappingRule("Timestamp", "_reported"),
        ]
        return SchemaMapping(
            self.display_name,
            [
                GroupMapping(
                    "Host",
                    common()
                    + [
                        MappingRule(
                            "UniqueId",
                            None,
                            transform=lambda r: f"{r['_host']}#ganglia",
                        ),
                        MappingRule("Reachable", None, transform=lambda r: True),
                        MappingRule("AgentName", None, transform=lambda r: "gmond/2.5"),
                    ],
                ),
                GroupMapping(
                    "Processor",
                    common()
                    + [
                        MappingRule("CPUCount", "cpu_num"),
                        MappingRule("ClockSpeedMHz", "cpu_speed", unit="MHz"),
                        MappingRule("LoadAverage1Min", "load_one"),
                        MappingRule("LoadAverage5Min", "load_five"),
                        MappingRule("LoadAverage15Min", "load_fifteen"),
                        MappingRule("CPUUser", "cpu_user"),
                        MappingRule("CPUSystem", "cpu_system"),
                        MappingRule("CPUIdle", "cpu_idle"),
                        MappingRule(
                            "CPUUtilization",
                            "cpu_idle",
                            transform=lambda v: 100.0 - float(v),
                        ),
                        # Vendor / Model unavailable from gmond -> NULL.
                    ],
                ),
                GroupMapping(
                    "MainMemory",
                    common()
                    + [
                        MappingRule("RAMSizeMB", "mem_total", unit="KB"),
                        MappingRule("RAMAvailableMB", "mem_free", unit="KB"),
                        MappingRule("VirtualSizeMB", "swap_total", unit="KB"),
                        MappingRule("VirtualAvailableMB", "swap_free", unit="KB"),
                        MappingRule("BuffersMB", "mem_buffers", unit="KB"),
                        MappingRule("CachedMB", "mem_cached", unit="KB"),
                    ],
                ),
                GroupMapping(
                    "OperatingSystem",
                    common()
                    + [
                        MappingRule("Name", "os_name"),
                        MappingRule("Release", "os_release"),
                        MappingRule("ProcessCount", "proc_total"),
                    ],
                ),
                GroupMapping(
                    "Architecture",
                    common()
                    + [
                        MappingRule("PlatformType", "machine_type"),
                        MappingRule("SMPSize", "cpu_num"),
                    ],
                ),
                GroupMapping(
                    "NetworkAdapter",
                    common()
                    + [
                        MappingRule("BytesReceived", "bytes_in"),
                        MappingRule("BytesSent", "bytes_out"),
                        MappingRule("PacketsReceived", "pkts_in"),
                        MappingRule("PacketsSent", "pkts_out"),
                    ],
                ),
            ],
        )

    # ------------------------------------------------------------------
    def probe(self, url: JdbcUrl, *, timeout: float = 1.0) -> bool:
        self.stats["probes"] += 1
        port = url.port if url.port is not None else self.default_port
        try:
            response = self.network.request(
                self.gateway_host, Address(url.host, port), "probe", timeout=timeout
            )
        except PortClosedError:
            return False
        return isinstance(response, str) and "<GANGLIA_XML" in response

    def _fetch_records(self, connection: GridRmConnection) -> list[dict[str, Any]]:
        """The (possibly cached) parsed records for this agent's cluster."""
        url = connection.url
        key = (url.host, url.port)

        def fetch_xml() -> str:
            self.stats["fetches"] += 1
            return connection.request("dump")

        if self.lazy_parse:
            xml = self.cache.get_or_fetch(key, fetch_xml)
            return parse_ganglia_xml(xml)
        return self.cache.get_or_fetch(
            ("parsed",) + key, lambda: parse_ganglia_xml(fetch_xml())
        )

    def fetch_group(
        self,
        connection: GridRmConnection,
        group: str,
        select: sql_ast.Select,
    ) -> list[dict[str, Any]]:
        return self._fetch_records(connection)
