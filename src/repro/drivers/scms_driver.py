"""JDBC-SCMS driver.

Serves Processor / MainMemory / OperatingSystem / Host rows for every
node an SCMS master manages, and the ``Job`` group from its batch queue.
Granularity sits between SNMP and Ganglia: the protocol is sectioned
(one CPU/MEM/NODE request per group rather than one OID per field or one
dump for everything), which is exactly the middle data point experiment
E3 needs.
"""

from __future__ import annotations

from typing import Any

from repro.agents.scms import SCMS_PORT
from repro.dbapi.url import JdbcUrl
from repro.drivers.base import GridRmConnection, GridRmDriver
from repro.glue.mapping import GroupMapping, MappingRule, SchemaMapping
from repro.simnet.errors import PortClosedError
from repro.simnet.network import Address
from repro.sql import ast_nodes as sql_ast

#: GLUE group -> SCMS section command.
_SECTION = {
    "Processor": "CPU",
    "MainMemory": "MEM",
    "OperatingSystem": "NODE",
    "Host": "NODE",
}


def parse_scms_section(text: str) -> dict[str, dict[str, str]]:
    """Parse ``node.key value`` lines into {node: {key: value}}."""
    out: dict[str, dict[str, str]] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("ERROR"):
            continue
        left, _, value = line.partition(" ")
        node, _, key = left.partition(".")
        if node and key:
            out.setdefault(node, {})[key] = value
    return out


def parse_scms_queue(text: str) -> list[dict[str, str]]:
    """Parse ``key=value ...`` job lines."""
    jobs = []
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("ERROR"):
            continue
        fields: dict[str, str] = {}
        for part in line.split():
            key, sep, value = part.partition("=")
            if sep:
                fields[key] = value
        if fields:
            jobs.append(fields)
    return jobs


class ScmsDriver(GridRmDriver):
    """SCMS cluster-management data-source driver."""

    protocol = "scms"
    default_port = SCMS_PORT
    display_name = "JDBC-SCMS"

    def build_mapping(self) -> SchemaMapping:
        common = lambda: [  # noqa: E731
            MappingRule("HostName", "_node"),
            MappingRule("SiteName", "_site"),
            MappingRule("Timestamp", "_time"),
        ]
        return SchemaMapping(
            self.display_name,
            [
                GroupMapping(
                    "Host",
                    common()
                    + [
                        MappingRule(
                            "UniqueId", None, transform=lambda r: f"{r['_node']}#scms"
                        ),
                        MappingRule(
                            "Reachable", "alive", transform=lambda v: v == "1"
                        ),
                        MappingRule("AgentName", None, transform=lambda r: "scms-master"),
                    ],
                ),
                GroupMapping(
                    "Processor",
                    common()
                    + [
                        MappingRule("CPUCount", "ncpu"),
                        MappingRule("ClockSpeedMHz", "mhz", unit="MHz"),
                        MappingRule("LoadAverage1Min", "load1"),
                        MappingRule("LoadAverage5Min", "load5"),
                        MappingRule("LoadAverage15Min", "load15"),
                        MappingRule("CPUUser", "user"),
                        MappingRule("CPUSystem", "sys"),
                        MappingRule("CPUIdle", "idle"),
                        MappingRule(
                            "CPUUtilization",
                            "idle",
                            transform=lambda v: 100.0 - float(v),
                        ),
                    ],
                ),
                GroupMapping(
                    "MainMemory",
                    common()
                    + [
                        MappingRule("RAMSizeMB", "memtotal"),
                        MappingRule("RAMAvailableMB", "memfree"),
                        MappingRule("VirtualSizeMB", "swaptotal"),
                        MappingRule("VirtualAvailableMB", "swapfree"),
                    ],
                ),
                GroupMapping(
                    "OperatingSystem",
                    common()
                    + [
                        MappingRule("Name", "os"),
                        MappingRule("Release", "release"),
                        MappingRule("UptimeSeconds", "uptime"),
                        MappingRule("ProcessCount", "nproc"),
                    ],
                ),
                GroupMapping(
                    "Job",
                    [
                        MappingRule("HostName", "node"),
                        MappingRule("SiteName", "_site"),
                        MappingRule("Timestamp", "_time"),
                        MappingRule("JobId", "jobid"),
                        MappingRule("Queue", "queue"),
                        MappingRule("Owner", "owner"),
                        MappingRule("State", "state"),
                        MappingRule("CPUSeconds", "cpusec"),
                        MappingRule("WallSeconds", "wallsec"),
                        MappingRule("NodeCount", "nodes"),
                    ],
                ),
            ],
        )

    # ------------------------------------------------------------------
    def probe(self, url: JdbcUrl, *, timeout: float = 1.0) -> bool:
        self.stats["probes"] += 1
        port = url.port if url.port is not None else self.default_port
        try:
            response = self.network.request(
                self.gateway_host, Address(url.host, port), "NODES", timeout=timeout
            )
        except PortClosedError:
            return False
        return isinstance(response, str) and not response.startswith("ERROR")

    def fetch_group(
        self,
        connection: GridRmConnection,
        group: str,
        select: sql_ast.Select,
    ) -> list[dict[str, Any]]:
        self.stats["fetches"] += 1
        url = connection.url
        site = (
            self.network.site_of(url.host) if self.network.has_host(url.host) else None
        )
        now = self.network.clock.now()
        if group == "Job":
            jobs = parse_scms_queue(str(connection.request("QUEUE")))
            for j in jobs:
                j["_site"] = site
                j["_time"] = now
            return jobs
        section = _SECTION[group]
        nodes = parse_scms_section(str(connection.request(section)))
        records = []
        for node in sorted(nodes):
            record: dict[str, Any] = dict(nodes[node])
            record["_node"] = node
            record["_site"] = site
            record["_time"] = now
            records.append(record)
        return records
