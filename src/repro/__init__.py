"""GridRM — an extensible resource monitoring system.

A full Python reproduction of *GridRM: An Extensible Resource Monitoring
System* (Baker & Smith, CLUSTER 2003): the two-layer GMA-based monitoring
framework whose Local layer normalises heterogeneous agents (SNMP,
Ganglia, NWS, NetLogger, SCMS, SQL) onto the GLUE naming schema behind a
JDBC-style pluggable driver interface.

Quickstart::

    from repro import build_testbed, QueryMode

    network, (site,) = build_testbed(n_hosts=4, agents=("snmp", "ganglia"))
    network.clock.advance(60)                      # let agents measure
    gw = site.gateway
    result = gw.query(site.url_for("snmp"), "SELECT * FROM Processor")
    print(result.dicts())

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
experiment-by-experiment reproduction record.
"""

from repro.core.gateway import Gateway, DataSource
from repro.core.policy import GatewayPolicy, FailureAction
from repro.core.request_manager import QueryMode, QueryResult
from repro.core.security import Principal, AccessRule, ANONYMOUS
from repro.core.events import Event
from repro.dbapi.url import JdbcUrl
from repro.dbapi.exceptions import SQLException
from repro.gma.directory import GMADirectory
from repro.gma.global_layer import GlobalLayer
from repro.glue.schema import STANDARD_SCHEMA
from repro.simnet.clock import VirtualClock
from repro.simnet.network import Network, Address
from repro.testbed import Site, build_site, build_testbed
from repro.web.console import Console
from repro.web.discovery import discover_sources

__version__ = "1.0.0"

__all__ = [
    "Gateway",
    "DataSource",
    "GatewayPolicy",
    "FailureAction",
    "QueryMode",
    "QueryResult",
    "Principal",
    "AccessRule",
    "ANONYMOUS",
    "Event",
    "JdbcUrl",
    "SQLException",
    "GMADirectory",
    "GlobalLayer",
    "STANDARD_SCHEMA",
    "VirtualClock",
    "Network",
    "Address",
    "Site",
    "build_site",
    "build_testbed",
    "Console",
    "discover_sources",
    "__version__",
]
