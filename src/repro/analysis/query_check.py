"""Compile-time GLUE query validation.

Checks a parsed SELECT (:mod:`repro.sql.ast_nodes`) against a
:class:`~repro.glue.schema.GlueSchema` *before* any driver is selected or
any agent round-trip is spent — the R-GMA insight that a relational query
over a fixed schema can be proven doomed at submission time:

* **unknown group** (``GRM201``) — a FROM relation no GLUE group defines;
* **unknown attribute** (``GRM202``) — a column reference no named group
  (nor projection alias, nor caller-supplied extra field) defines;
* **type-incompatible predicate** (``GRM203``) — a comparison between a
  typed GLUE attribute and a literal of an incomparable type
  (``Vendor > 5``, ``CPUCount = 'lots'``).  The type table is
  :data:`repro.glue.validation.TYPE_CHECKS`, shared with the row
  validator, collapsed to comparability classes: the numeric types
  (INTEGER / REAL / TIMESTAMP) compare with each other freely.

NULL literals always pass (``f = NULL`` is legal, merely never true —
the executor's SQL ternary logic owns that semantics, not the checker).
"""

from __future__ import annotations

from typing import Iterable, Mapping

from repro.analysis.findings import Finding, Severity
from repro.glue.schema import GlueSchema
from repro.glue.validation import TYPE_CHECKS
from repro.sql import ast_nodes as sql_ast

#: Binary operators whose operands must be comparable.
_COMPARISONS = frozenset({"=", "==", "<>", "!=", "<", "<=", ">", ">=", "LIKE"})

#: GLUE type -> comparability class representative in TYPE_CHECKS.
_COMPARE_AS = {
    "TEXT": "TEXT",
    "INTEGER": "REAL",  # numeric types compare with each other freely
    "REAL": "REAL",
    "TIMESTAMP": "REAL",
    "BOOLEAN": "BOOLEAN",
}


def literal_compatible(field_type: str, value: object) -> bool:
    """Whether a literal value is comparable with a GLUE field type.

    NULL (None) is always compatible — comparisons against it are legal
    SQL that simply never matches (three-valued logic).
    """
    if value is None:
        return True
    check = TYPE_CHECKS.get(_COMPARE_AS.get(field_type, field_type))
    if check is None:
        return True
    return check(value)


def validate_select(
    select: sql_ast.Select,
    schema: GlueSchema,
    *,
    extra_fields: Iterable[str] = (),
    path: str = "<query>",
) -> list[Finding]:
    """All compile-time findings for one SELECT against one schema."""
    findings: list[Finding] = []

    #: lowercase attribute name -> GLUE type (None when untyped: extra
    #: fields and projection aliases).
    known: dict[str, "str | None"] = {}
    unknown_groups = []
    for table in select.tables:
        if not schema.has_group(table):
            unknown_groups.append(table)
            findings.append(
                Finding(
                    rule_id="GRM201",
                    severity=Severity.ERROR,
                    message=(
                        f"unknown GLUE group {table!r} "
                        f"(schema {schema.version} defines: "
                        f"{', '.join(schema.group_names())})"
                    ),
                    path=path,
                    symbol=table,
                )
            )
            continue
        for fdef in schema.group(table).fields:
            known.setdefault(fdef.name.lower(), fdef.type)
    for name in extra_fields:
        known.setdefault(name.lower(), None)
    for item in select.items:
        if item.alias:
            known.setdefault(item.alias.lower(), None)

    if unknown_groups:
        # Attribute/type findings against a half-known field set would be
        # noise; the group error already dooms the query.
        return findings

    # -- unknown attributes --------------------------------------------
    seen: set[str] = set()
    for expr in _all_expressions(select):
        for column in _columns(expr):
            name = column.name.lower()
            if name in known or name in seen:
                continue
            seen.add(name)
            findings.append(
                Finding(
                    rule_id="GRM202",
                    severity=Severity.ERROR,
                    message=(
                        f"unknown attribute {column.qualified!r} — no group "
                        f"in FROM ({', '.join(select.tables)}) defines it"
                    ),
                    path=path,
                    symbol=column.name,
                )
            )

    # -- type-incompatible predicates ----------------------------------
    for expr in _all_expressions(select):
        findings.extend(_check_predicates(expr, known, path))
    return findings


def validate_sql(
    sql: str,
    schema: GlueSchema,
    *,
    extra_fields: Iterable[str] = (),
    path: str = "<query>",
) -> list[Finding]:
    """Parse-and-validate convenience; syntax errors become findings."""
    from repro.sql.errors import SqlError
    from repro.sql.parser import parse_select

    try:
        select = parse_select(sql)
    except SqlError as exc:
        return [
            Finding(
                rule_id="GRM200",
                severity=Severity.ERROR,
                message=f"syntax error: {exc}",
                path=path,
                symbol="syntax",
            )
        ]
    return validate_select(select, schema, extra_fields=extra_fields, path=path)


# ----------------------------------------------------------------------
def _all_expressions(select: sql_ast.Select) -> "list[sql_ast.Expr]":
    out: list[sql_ast.Expr] = [item.expr for item in select.items]
    if select.where is not None:
        out.append(select.where)
    out.extend(select.group_by)
    if select.having is not None:
        out.append(select.having)
    out.extend(o.expr for o in select.order_by)
    return out


def _columns(expr: sql_ast.Expr) -> "list[sql_ast.Column]":
    out: list[sql_ast.Column] = []

    def walk(e: sql_ast.Expr) -> None:
        if isinstance(e, sql_ast.Column):
            out.append(e)
        elif isinstance(e, sql_ast.BinOp):
            walk(e.left)
            walk(e.right)
        elif isinstance(e, sql_ast.UnaryOp):
            walk(e.operand)
        elif isinstance(e, sql_ast.InList):
            walk(e.expr)
            for item in e.items:
                walk(item)
        elif isinstance(e, sql_ast.Between):
            walk(e.expr)
            walk(e.low)
            walk(e.high)
        elif isinstance(e, sql_ast.IsNull):
            walk(e.expr)
        elif isinstance(e, sql_ast.FuncCall):
            for a in e.args:
                walk(a)

    walk(expr)
    return out


def _field_type(
    expr: sql_ast.Expr, known: Mapping[str, "str | None"]
) -> "str | None":
    if isinstance(expr, sql_ast.Column):
        return known.get(expr.name.lower())
    return None


def _mismatch(
    column: sql_ast.Column,
    field_type: str,
    literal: sql_ast.Literal,
    op: str,
    path: str,
) -> Finding:
    return Finding(
        rule_id="GRM203",
        severity=Severity.ERROR,
        message=(
            f"predicate {column.name} {op} {literal.value!r} compares "
            f"{field_type} attribute with "
            f"{type(literal.value).__name__} literal"
        ),
        path=path,
        symbol=f"{column.name}:{op}",
    )


def _check_predicates(
    expr: sql_ast.Expr, known: Mapping[str, "str | None"], path: str
) -> "list[Finding]":
    findings: list[Finding] = []

    def check_pair(
        a: sql_ast.Expr, b: sql_ast.Expr, op: str
    ) -> None:
        column, literal = None, None
        if isinstance(a, sql_ast.Column) and isinstance(b, sql_ast.Literal):
            column, literal = a, b
        elif isinstance(b, sql_ast.Column) and isinstance(a, sql_ast.Literal):
            column, literal = b, a
        if column is None or literal is None:
            return
        field_type = known.get(column.name.lower())
        if field_type is None:
            return
        if not literal_compatible(field_type, literal.value):
            findings.append(_mismatch(column, field_type, literal, op, path))

    def walk(e: sql_ast.Expr) -> None:
        if isinstance(e, sql_ast.BinOp):
            if e.op.upper() in _COMPARISONS or e.op in _COMPARISONS:
                check_pair(e.left, e.right, e.op)
            walk(e.left)
            walk(e.right)
        elif isinstance(e, sql_ast.UnaryOp):
            walk(e.operand)
        elif isinstance(e, sql_ast.InList):
            for item in e.items:
                check_pair(e.expr, item, "IN")
                walk(item)
            walk(e.expr)
        elif isinstance(e, sql_ast.Between):
            check_pair(e.expr, e.low, "BETWEEN")
            check_pair(e.expr, e.high, "BETWEEN")
            walk(e.expr)
            walk(e.low)
            walk(e.high)
        elif isinstance(e, sql_ast.IsNull):
            walk(e.expr)
        elif isinstance(e, sql_ast.FuncCall):
            for a in e.args:
                walk(a)

    walk(expr)
    return findings
