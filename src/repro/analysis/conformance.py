"""Driver conformance checking against the DDK contract.

Two complementary views of the same contract (paper §3.2.1):

* :func:`check_module` / :func:`check_source` — **AST inspection** of a
  driver module: signature shapes, exception families escaping entry
  points, wall-clock and raw-socket discipline.  Works on any source
  text, including plug-ins that are not importable in this process.
* :func:`check_driver` — **introspection** of a live driver object as
  registered with a gateway: required members overridden, runtime
  signatures compatible, protocol declared — then the AST pass over the
  class's defining module for the source-level rules.

Both produce the shared :class:`~repro.analysis.findings.Finding` model,
so a gateway can refuse (or just report) non-conformant plug-ins before
any query reaches them, instead of failing at fetch time.
"""

from __future__ import annotations

import ast
import inspect
from typing import Any, Iterable

from repro.analysis.findings import Finding, Severity
from repro.analysis.rules import (
    LintRule,
    ModuleContext,
    all_rules,
    expected_signature,
)

#: Members every concrete driver must override (the two native-protocol
#: hooks plus the GLUE implementation; everything else is inherited).
REQUIRED_OVERRIDES = ("probe", "fetch_group", "build_mapping")


def parse_module(source: str, path: str = "<driver>") -> ModuleContext:
    """Parse source text into the context the rules consume.

    Raises :class:`SyntaxError` for unparseable text — callers decide
    whether that is itself a finding (see :func:`check_source`).
    """
    return ModuleContext(path=path, source=source, tree=ast.parse(source))


def check_source(
    source: str,
    path: str = "<driver>",
    *,
    rules: "Iterable[LintRule] | None" = None,
) -> list[Finding]:
    """Run the registered rules over one module's source text."""
    try:
        module = parse_module(source, path)
    except SyntaxError as exc:
        return [
            Finding(
                rule_id="GRM100",
                severity=Severity.ERROR,
                message=f"cannot parse: {exc.msg}",
                path=path,
                line=exc.lineno or 0,
                symbol="syntax",
            )
        ]
    selected = list(rules) if rules is not None else all_rules()
    findings: list[Finding] = []
    for rule in selected:
        findings.extend(rule.check(module))
    return sorted(findings, key=lambda f: (f.line, f.rule_id, f.message))


#: Per-module memo for :func:`check_module`: a gateway conformance-checks
#: its whole driver set at start-up, and test suites build many gateways
#: over the same six shipped modules.
_MODULE_CACHE: dict[str, list[Finding]] = {}


def check_module(module: Any) -> list[Finding]:
    """AST-check an imported module object (memoised per module name)."""
    name = getattr(module, "__name__", repr(module))
    cached = _MODULE_CACHE.get(name)
    if cached is not None:
        return list(cached)
    try:
        source = inspect.getsource(module)
        path = inspect.getsourcefile(module) or name
    except (OSError, TypeError):
        # Built in REPL / exec'd source: nothing to inspect statically.
        _MODULE_CACHE[name] = []
        return []
    findings = check_source(source, path)
    _MODULE_CACHE[name] = findings
    return list(findings)


def clear_module_cache() -> None:
    """Drop the per-module memo (tests redefine fixture modules)."""
    _MODULE_CACHE.clear()


# ----------------------------------------------------------------------
# Introspection over live driver objects
# ----------------------------------------------------------------------
def _signature_finding(driver_cls: type, method_name: str) -> "Finding | None":
    required = expected_signature(method_name)
    if required is None:
        return None
    method = getattr(driver_cls, method_name, None)
    if method is None or not callable(method):
        return None
    try:
        sig = inspect.signature(method)
    except (TypeError, ValueError):
        return None
    positional = [
        p.name
        for p in sig.parameters.values()
        if p.kind
        in (
            inspect.Parameter.POSITIONAL_ONLY,
            inspect.Parameter.POSITIONAL_OR_KEYWORD,
        )
    ]
    # Unbound functions carry self; bound methods / C callables may not.
    if positional and positional[0] == "self":
        positional = positional[1:]
    has_default = [
        p.name
        for p in sig.parameters.values()
        if p.default is not inspect.Parameter.empty
    ]
    got = tuple(positional)
    required_part = tuple(n for n in got if n not in has_default)
    ok = (
        got[: len(required)] == required
        and len(required_part) <= len(required)
        and not any(
            p.kind is inspect.Parameter.VAR_POSITIONAL
            for p in sig.parameters.values()
        )
    )
    if ok:
        return None
    return Finding(
        rule_id="GRM104",
        severity=Severity.ERROR,
        message=(
            f"{driver_cls.__name__}.{method_name}{sig} does not match the "
            f"DDK signature {method_name}({', '.join(('self',) + required)})"
        ),
        path=getattr(driver_cls, "__module__", ""),
        symbol=f"{driver_cls.__name__}.{method_name}",
    )


def check_driver_class(driver_cls: type) -> list[Finding]:
    """Introspect one driver class against the DDK contract."""
    # Imported lazily: analysis must stay importable without the driver
    # stack (e.g. when linting source trees that do not import).
    from repro.drivers.base import GridRmDriver

    findings: list[Finding] = []
    symbol = driver_cls.__name__
    module_path = getattr(driver_cls, "__module__", "")
    if not issubclass(driver_cls, GridRmDriver):
        # Foreign Driver implementations honour a looser contract; only
        # the DDK base class carries the probe/fetch_group recipe.
        return findings
    for member in REQUIRED_OVERRIDES:
        if getattr(driver_cls, member, None) is getattr(GridRmDriver, member):
            findings.append(
                Finding(
                    rule_id="GRM106",
                    severity=Severity.ERROR,
                    message=f"{symbol} does not override required member "
                    f"{member}()",
                    path=module_path,
                    symbol=f"{symbol}.{member}",
                )
            )
    if not getattr(driver_cls, "protocol", ""):
        findings.append(
            Finding(
                rule_id="GRM107",
                severity=Severity.ERROR,
                message=f"{symbol} declares no jdbc subprotocol",
                path=module_path,
                symbol=f"{symbol}.protocol",
            )
        )
    for method_name in ("probe", "fetch_group", "build_mapping"):
        f = _signature_finding(driver_cls, method_name)
        if f is not None:
            findings.append(f)
    return findings


def check_driver(driver: Any) -> list[Finding]:
    """Full conformance check of a live driver: introspection plus the
    AST rules over its defining module.

    AST findings are filtered to the driver's own class (a module
    defining several drivers reports each driver's problems separately);
    module-level findings (imports, helpers) are kept for all.
    """
    from repro.drivers.base import GridRmDriver

    driver_cls = type(driver)
    findings = check_driver_class(driver_cls)
    module = inspect.getmodule(driver_cls)
    if module is not None:
        sibling_drivers = {
            name
            for name, obj in vars(module).items()
            if isinstance(obj, type)
            and issubclass(obj, GridRmDriver)
            and name != driver_cls.__name__
        }
        for f in check_module(module):
            owner = f.symbol.partition(".")[0]
            if owner in sibling_drivers:
                continue
            findings.append(f)
    # De-duplicate: the AST signature rule and the introspection check
    # can both flag the same method.
    seen: set[tuple[str, str]] = set()
    unique: list[Finding] = []
    for f in findings:
        key = (f.rule_id, f.symbol)
        if key in seen:
            continue
        seen.add(key)
        unique.append(f)
    return unique
