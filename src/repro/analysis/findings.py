"""Shared finding / severity / report model for all analysis passes.

Every pass in :mod:`repro.analysis` — the driver conformance checker, the
compile-time GLUE query validator and the lint-rule registry — emits the
same :class:`Finding` shape, so one renderer (console tree view, CLI,
servlet) and one suppression mechanism (baseline files) serve all three.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import Iterable, Iterator


class Severity(enum.Enum):
    """How bad a finding is; orders INFO < WARNING < ERROR."""

    INFO = "info"
    WARNING = "warning"
    ERROR = "error"

    @property
    def rank(self) -> int:
        return ("info", "warning", "error").index(self.value)

    def __lt__(self, other: "Severity") -> bool:
        if not isinstance(other, Severity):
            return NotImplemented
        return self.rank < other.rank


@dataclass(frozen=True)
class Finding:
    """One problem reported by an analysis pass.

    Attributes:
        rule_id: stable identifier ("GRM101"); the unit of suppression.
        severity: :class:`Severity` of the problem.
        message: human-readable one-liner.
        path: file (or pseudo-path like ``<query>``) the finding is in.
        line: 1-based line number; 0 when not applicable.
        symbol: the class/function/attribute the finding anchors to —
            used in baseline fingerprints so findings survive unrelated
            line-number drift.
    """

    rule_id: str
    severity: Severity
    message: str
    path: str = ""
    line: int = 0
    symbol: str = ""

    @property
    def fingerprint(self) -> str:
        """Stable identity for baseline suppression (no line numbers)."""
        return f"{self.rule_id}:{self.path}:{self.symbol or '-'}"

    def format(self) -> str:
        where = self.path
        if self.line:
            where += f":{self.line}"
        return f"[{self.severity.value}] {self.rule_id} {where}: {self.message}"


@dataclass
class AnalysisReport:
    """The outcome of one analysis run over any number of inputs."""

    findings: list[Finding] = field(default_factory=list)
    files_scanned: int = 0
    suppressed: int = 0

    def __iter__(self) -> Iterator[Finding]:
        return iter(self.findings)

    def __len__(self) -> int:
        return len(self.findings)

    def extend(self, findings: Iterable[Finding]) -> None:
        self.findings.extend(findings)

    def sorted(self) -> list[Finding]:
        return sorted(
            self.findings, key=lambda f: (f.path, f.line, f.rule_id, f.message)
        )

    @property
    def errors(self) -> list[Finding]:
        return [f for f in self.findings if f.severity is Severity.ERROR]

    def rule_ids(self) -> list[str]:
        return sorted({f.rule_id for f in self.findings})

    def apply_baseline(self, fingerprints: Iterable[str]) -> "AnalysisReport":
        """A copy of this report with baselined findings removed.

        ``fingerprints`` holds :attr:`Finding.fingerprint` strings from a
        baseline file; matching findings are counted in ``suppressed``
        rather than reported, so a legacy codebase can adopt a rule
        without fixing historical violations first.
        """
        known = set(fingerprints)
        kept = [f for f in self.findings if f.fingerprint not in known]
        return replace(
            self,
            findings=kept,
            suppressed=self.suppressed + (len(self.findings) - len(kept)),
        )
