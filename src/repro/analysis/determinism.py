"""Determinism sanitizer: the GRM50x static rule family.

GridRM's whole benchmark methodology (the MDS/R-GMA/Hawkeye comparison
of Zhang, Freschl & Schopf) rests on *replayable* simulation: the chaos
replays (PR 4) and crashtest signatures (PR 6) are byte-identical only
while every input to the simulation is a pure function of the seed and
the virtual clock.  One stray wall-clock read, one unseeded ``random``
draw or one set-ordered merge silently breaks replay identity — and the
breakage shows up as an unreproducible benchmark, not as a test failure.

These rules make the determinism contract a *checked* property:

* **GRM501** — wall-clock sources beyond GRM101's canonical set
  (``time.monotonic_ns``, ``time.process_time``, ``time.localtime`` /
  ``gmtime`` / ``ctime`` / ``asctime``, ``os.times``, ``date.today``);
* **GRM502** — module-level ``random`` use (the shared global generator
  is seeded from OS entropy) and unseeded ``random.Random()``;
* **GRM503** — iteration over ``set`` / ``frozenset`` expressions
  feeding ordered outputs (merges, renders, wire encoding) without a
  ``sorted(...)`` wrapper;
* **GRM504** — ``id()`` / ``hash()``-dependent ordering: ``id(...)``
  calls, and ``id`` / ``hash`` used as a sort key;
* **GRM505** — entropy sources: ``os.urandom``, ``uuid.uuid1`` /
  ``uuid4``, the ``secrets`` module, ``random.SystemRandom``.

Deliberate escapes are annotated in place::

    stamp = time.time()  # grm: allow-wallclock

The tag may also sit on a comment-only line directly above.  Each rule
has its own tag (``allow-wallclock``, ``allow-random``,
``allow-set-order``, ``allow-id-order``, ``allow-entropy``) so the
residual allowlist documents exactly which hazard was accepted and why.

Note on ``dict``: iteration over dicts (including ``.keys()`` /
``.values()`` / ``.items()``) is insertion-ordered in Python >= 3.7 and
therefore deterministic whenever insertion order is — so it is *not*
flagged here.  The hazard the family guards is genuinely unordered
collections; a dict populated from a set iteration is caught at the set.

The runtime half of the sanitizer — the virtual-lane race detector
reporting GRM55x findings — lives in :mod:`repro.analysis.races`.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.findings import Finding
from repro.analysis.rules import (
    LintRule,
    ModuleContext,
    Severity,
    register_rule,
)

#: Wall-clock reads GRM101 does not already cover.  GRM501 extends the
#: virtual-clock discipline to the long tail of stdlib clock accessors;
#: both rules honour the same ``allow-wallclock`` escape.
_EXTENDED_WALL_CLOCK = {
    "time": {
        "monotonic_ns",
        "process_time",
        "process_time_ns",
        "thread_time",
        "thread_time_ns",
        "localtime",
        "gmtime",
        "ctime",
        "asctime",
    },
    "os": {"times"},
    "date": {"today"},
}

#: ``random`` module members that are *not* the module-level generator:
#: constructing an explicitly seeded instance is the sanctioned idiom.
_RANDOM_FACTORY = "Random"

#: Entropy sources: reads of OS randomness that can never replay.
_ENTROPY_CALLS = {
    "os": {"urandom", "getrandom"},
    "uuid": {"uuid1", "uuid4"},
    "random": {"SystemRandom"},
}

#: Aggregating sinks for which iteration order genuinely does not
#: matter: consuming a set through these is deterministic.
_ORDER_INSENSITIVE_SINKS = frozenset(
    {
        "sorted",
        "len",
        "sum",
        "min",
        "max",
        "any",
        "all",
        "set",
        "frozenset",
    }
)

#: Sort-shaped calls whose ``key=`` argument orders the output.
_SORT_CALLS = frozenset({"sorted", "sort", "min", "max"})


def _owner_name(func: ast.expr) -> str:
    """The textual owner of an attribute access (``time`` in
    ``time.monotonic_ns``; ``date`` in ``datetime.date.today``)."""
    if isinstance(func, ast.Attribute):
        owner = func.value
        if isinstance(owner, ast.Name):
            return owner.id
        if isinstance(owner, ast.Attribute):
            return owner.attr
    return ""


@register_rule
class ExtendedWallClockRule(LintRule):
    """Replay identity: the stdlib's long tail of clock accessors."""

    rule_id = "GRM501"
    severity = Severity.ERROR
    title = "extended wall-clock read (breaks replay identity)"

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not (isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute)):
                continue
            if module.allowed(node, "wallclock"):
                continue
            owner = _owner_name(node.func)
            bad = _EXTENDED_WALL_CLOCK.get(owner)
            if bad and node.func.attr in bad:
                yield self.finding(
                    module,
                    node,
                    f"{owner}.{node.func.attr}() reads the wall clock; all "
                    "timing must come from the virtual clock "
                    "(# grm: allow-wallclock to escape)",
                    symbol=f"{owner}.{node.func.attr}",
                )


@register_rule
class UnseededRandomRule(LintRule):
    """Replay identity: no module-level or unseeded random generators.

    The module-level functions (``random.random()``, ``random.choice``,
    ``random.seed`` ...) all share one hidden global generator seeded
    from OS entropy at import; ``random.Random()`` with no arguments
    seeds the same way.  The sanctioned idiom is an explicitly seeded
    ``random.Random(seed)`` owned by the component that draws from it.
    """

    rule_id = "GRM502"
    severity = Severity.ERROR
    title = "module-level or unseeded random (pass an explicit seed)"

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        random_names = self._random_aliases(module)
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ImportFrom) and node.module == "random":
                bad = sorted(
                    a.name
                    for a in node.names
                    if a.name not in (_RANDOM_FACTORY, "SystemRandom")
                )
                if bad and not module.allowed(node, "random"):
                    yield self.finding(
                        module,
                        node,
                        "imports module-level random function(s) "
                        f"{', '.join(bad)}; use a seeded random.Random "
                        "instance (# grm: allow-random to escape)",
                        symbol=f"import-random-{'-'.join(bad)}",
                    )
                continue
            if not isinstance(node, ast.Call):
                continue
            if module.allowed(node, "random"):
                continue
            func = node.func
            if isinstance(func, ast.Attribute) and _owner_name(func) in random_names:
                if func.attr == "SystemRandom":
                    continue  # entropy: GRM505's finding, not ours
                if func.attr == _RANDOM_FACTORY:
                    if not node.args and not node.keywords:
                        yield self.finding(
                            module,
                            node,
                            "random.Random() without a seed draws its seed "
                            "from OS entropy; pass an explicit seed",
                            symbol="random.Random",
                        )
                    continue
                yield self.finding(
                    module,
                    node,
                    f"random.{func.attr}() uses the shared module-level "
                    "generator; draw from a seeded random.Random instead "
                    "(# grm: allow-random to escape)",
                    symbol=f"random.{func.attr}",
                )
            elif (
                isinstance(func, ast.Name)
                and func.id == _RANDOM_FACTORY
                and _RANDOM_FACTORY in self._from_imports(module)
                and not node.args
                and not node.keywords
            ):
                yield self.finding(
                    module,
                    node,
                    "Random() without a seed draws its seed from OS "
                    "entropy; pass an explicit seed",
                    symbol="random.Random",
                )

    @staticmethod
    def _random_aliases(module: ModuleContext) -> set[str]:
        """Names the ``random`` module is bound to (import aliases)."""
        names = {"random"}
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "random" and alias.asname:
                        names.add(alias.asname)
        return names

    @staticmethod
    def _from_imports(module: ModuleContext) -> set[str]:
        out: set[str] = set()
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ImportFrom) and node.module == "random":
                out.update(a.asname or a.name for a in node.names)
        return out


class _SetTracker(ast.NodeVisitor):
    """Shallow, conservative set-ness inference over one scope.

    A name counts as set-typed only while *every* assignment to it in
    the enclosing function body is a syntactic set expression — the
    moment anything else is assigned, the name is forgotten.  This keeps
    the rule quiet on genuinely ambiguous code at the cost of missing
    sets that arrive through calls; the dynamic lane detector covers the
    rest at run time.
    """

    def __init__(self) -> None:
        self.set_names: set[str] = set()
        self.poisoned: set[str] = set()

    def visit_Assign(self, node: ast.Assign) -> None:
        is_set = _is_set_expr(node.value, self.set_names)
        for target in node.targets:
            if isinstance(target, ast.Name):
                if is_set and target.id not in self.poisoned:
                    self.set_names.add(target.id)
                else:
                    self.set_names.discard(target.id)
                    self.poisoned.add(target.id)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if isinstance(node.target, ast.Name):
            annotated_set = isinstance(
                node.annotation, (ast.Name, ast.Subscript)
            ) and _annotation_is_set(node.annotation)
            value_set = node.value is not None and _is_set_expr(
                node.value, self.set_names
            )
            if (annotated_set or value_set) and node.target.id not in self.poisoned:
                self.set_names.add(node.target.id)
            else:
                self.set_names.discard(node.target.id)
                self.poisoned.add(node.target.id)
        self.generic_visit(node)


def _annotation_is_set(node: ast.expr) -> bool:
    if isinstance(node, ast.Name):
        return node.id in ("set", "frozenset")
    if isinstance(node, ast.Subscript) and isinstance(node.value, ast.Name):
        return node.value.id in ("set", "frozenset")
    return False


def _is_set_expr(node: ast.expr, set_names: set[str]) -> bool:
    """Syntactic set-ness: literals, comprehensions, constructors, set
    algebra over sets, and names already known to hold sets."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in ("set", "frozenset")
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
    ):
        return _is_set_expr(node.left, set_names) or _is_set_expr(
            node.right, set_names
        )
    if isinstance(node, ast.Name):
        return node.id in set_names
    return False


def _walk_scope(node: ast.AST) -> Iterator[ast.AST]:
    """Walk ``node`` without descending into nested function bodies —
    those are visited as scopes of their own, with their own tracker."""
    yield node
    for child in ast.iter_child_nodes(node):
        if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        yield from _walk_scope(child)


@register_rule
class SetIterationOrderRule(LintRule):
    """Replay identity: unordered iteration must not feed ordered output.

    Set iteration order is a function of element hashes and insertion
    history — with ``PYTHONHASHSEED`` randomisation it changes *between
    processes*, so any merge, render or wire encoding built by iterating
    a set is different on every run.  Wrap the iteration in ``sorted()``
    (or keep the data in a list/dict, which preserve order).
    """

    rule_id = "GRM503"
    severity = Severity.ERROR
    title = "unordered set iteration feeding ordered output (use sorted())"

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        scopes: list[ast.AST] = [module.tree]
        scopes.extend(
            n
            for n in ast.walk(module.tree)
            if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))
        )
        for scope in scopes:
            yield from self._check_scope(module, scope)

    def _check_scope(self, module: ModuleContext, scope: ast.AST) -> Iterator[Finding]:
        tracker = _SetTracker()
        body = scope.body if hasattr(scope, "body") else []
        # Comprehensions consumed directly by an order-insensitive sink
        # (``sorted(x for x in some_set)``) are fine; _walk_scope yields
        # the enclosing Call before its children, so bless them first.
        blessed: set[ast.AST] = set()
        # Statement-ordered walk: track assignments, then test uses; a
        # single pass in source order approximates def-before-use.
        for stmt in body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue  # visited as a scope of its own
            for node in _walk_scope(stmt):
                if isinstance(node, (ast.Assign, ast.AnnAssign)):
                    tracker.visit(node)
                if isinstance(node, ast.Call):
                    callee = ""
                    if isinstance(node.func, ast.Name):
                        callee = node.func.id
                    elif isinstance(node.func, ast.Attribute):
                        callee = node.func.attr
                    if callee in _ORDER_INSENSITIVE_SINKS:
                        blessed.update(
                            arg
                            for arg in node.args
                            if isinstance(
                                arg,
                                (ast.ListComp, ast.GeneratorExp, ast.SetComp),
                            )
                        )
                yield from self._check_node(
                    module, node, tracker.set_names, blessed
                )

    def _check_node(
        self,
        module: ModuleContext,
        node: ast.AST,
        set_names: set[str],
        blessed: set[ast.AST],
    ) -> Iterator[Finding]:
        # for x in <set>: ...
        if isinstance(node, ast.For) and _is_set_expr(node.iter, set_names):
            if not module.allowed(node, "set-order"):
                yield self._order_finding(module, node.iter, "for-loop")
            return
        # Comprehension generators drawing from a set.
        if isinstance(node, (ast.ListComp, ast.GeneratorExp, ast.DictComp)):
            if node in blessed:
                return
            for gen in node.generators:
                if _is_set_expr(gen.iter, set_names) and not module.allowed(
                    node, "set-order"
                ):
                    yield self._order_finding(module, gen.iter, "comprehension")
            return
        # Order-sensitive sinks: list(<set>), tuple(<set>), sep.join(<set>).
        if isinstance(node, ast.Call):
            func = node.func
            callee = ""
            if isinstance(func, ast.Name):
                callee = func.id
            elif isinstance(func, ast.Attribute):
                callee = func.attr
            if callee in ("list", "tuple", "join", "extend") and node.args:
                arg = node.args[0]
                if _is_set_expr(arg, set_names) and not module.allowed(
                    node, "set-order"
                ):
                    yield self._order_finding(module, arg, f"{callee}()")
            # <set>.pop() returns an arbitrary element.
            if (
                callee == "pop"
                and isinstance(func, ast.Attribute)
                and _is_set_expr(func.value, set_names)
                and not node.args
                and not module.allowed(node, "set-order")
            ):
                yield self.finding(
                    module,
                    node,
                    "set.pop() removes an arbitrary (hash-ordered) element; "
                    "pick deterministically (# grm: allow-set-order to escape)",
                    symbol="set.pop",
                )

    def _order_finding(
        self, module: ModuleContext, iter_node: ast.expr, context: str
    ) -> Finding:
        return self.finding(
            module,
            iter_node,
            f"{context} iterates a set in hash order; wrap in sorted() so "
            "downstream merges/renders replay identically "
            "(# grm: allow-set-order to escape)",
            symbol=f"set-iteration-{context}",
        )


@register_rule
class IdentityOrderRule(LintRule):
    """Replay identity: no ordering by memory address or string hash.

    ``id()`` is a CPython heap address — different on every run — and
    ``hash(str)`` is randomised per process by ``PYTHONHASHSEED``.
    Either one used as (or inside) a sort key makes the output order an
    accident of the allocator.
    """

    rule_id = "GRM504"
    severity = Severity.ERROR
    title = "id()/hash()-dependent ordering (order by a stable key)"

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            if module.allowed(node, "id-order"):
                continue
            func = node.func
            # Plain id(...) anywhere: its value is a per-run address.
            if isinstance(func, ast.Name) and func.id == "id" and node.args:
                yield self.finding(
                    module,
                    node,
                    "id() is a per-run memory address; derive identity from "
                    "stable data (# grm: allow-id-order to escape)",
                    symbol="id",
                )
                continue
            callee = ""
            if isinstance(func, ast.Name):
                callee = func.id
            elif isinstance(func, ast.Attribute):
                callee = func.attr
            if callee not in _SORT_CALLS:
                continue
            for kw in node.keywords:
                if kw.arg != "key":
                    continue
                bad = self._unstable_key(kw.value)
                if bad:
                    yield self.finding(
                        module,
                        node,
                        f"{callee}(key={bad}) orders by a per-run value; "
                        "use a stable key (# grm: allow-id-order to escape)",
                        symbol=f"{callee}-key-{bad}",
                    )

    @staticmethod
    def _unstable_key(key: ast.expr) -> str:
        if isinstance(key, ast.Name) and key.id in ("id", "hash"):
            return key.id
        if isinstance(key, ast.Lambda):
            for inner in ast.walk(key.body):
                if (
                    isinstance(inner, ast.Call)
                    and isinstance(inner.func, ast.Name)
                    and inner.func.id in ("id", "hash")
                ):
                    return inner.func.id
        return ""


@register_rule
class EntropySourceRule(LintRule):
    """Replay identity: no OS entropy in the simulation substrate."""

    rule_id = "GRM505"
    severity = Severity.ERROR
    title = "entropy source (os.urandom/uuid4/secrets cannot replay)"

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if (
                        alias.name == "secrets"
                        or alias.name.startswith("secrets.")
                    ) and not module.allowed(node, "entropy"):
                        yield self.finding(
                            module,
                            node,
                            "imports the secrets module; OS entropy can "
                            "never replay (# grm: allow-entropy to escape)",
                            symbol="import-secrets",
                        )
                continue
            if isinstance(node, ast.ImportFrom):
                bad_from = {
                    "os": {"urandom", "getrandom"},
                    "uuid": {"uuid1", "uuid4"},
                    "random": {"SystemRandom"},
                }.get(node.module or "")
                if bad_from:
                    names = sorted(
                        a.name for a in node.names if a.name in bad_from
                    )
                    if names and not module.allowed(node, "entropy"):
                        yield self.finding(
                            module,
                            node,
                            f"imports entropy source(s) {', '.join(names)} "
                            f"from {node.module} "
                            "(# grm: allow-entropy to escape)",
                            symbol=f"import-{node.module}-{'-'.join(names)}",
                        )
                if (node.module or "") == "secrets" and not module.allowed(
                    node, "entropy"
                ):
                    yield self.finding(
                        module,
                        node,
                        "imports from the secrets module; OS entropy can "
                        "never replay (# grm: allow-entropy to escape)",
                        symbol="import-secrets",
                    )
                continue
            if not (
                isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute)
            ):
                continue
            if module.allowed(node, "entropy"):
                continue
            owner = _owner_name(node.func)
            bad = _ENTROPY_CALLS.get(owner)
            if bad and node.func.attr in bad:
                yield self.finding(
                    module,
                    node,
                    f"{owner}.{node.func.attr}() draws OS entropy and can "
                    "never replay; derive values from the seed "
                    "(# grm: allow-entropy to escape)",
                    symbol=f"{owner}.{node.func.attr}",
                )


#: The family's ids, in rule order — used by the CLI's racecheck gate
#: and the registry coverage tests.
DETERMINISM_RULE_IDS = ("GRM501", "GRM502", "GRM503", "GRM504", "GRM505")
