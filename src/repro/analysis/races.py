"""Virtual-lane race detector: the GRM55x dynamic finding family.

The simulator is single-threaded, so nothing here is about data races in
the pthread sense.  The hazard is *model-level*: two branches of a
:class:`~repro.simnet.clock.ConcurrentScope` are virtually simultaneous
(neither happens-before the other until the scope joins), yet they
execute sequentially in whatever order the code launched them — so when
two unordered branches touch the same mutable state, the outcome encodes
the launch order.  That is exactly the class of bug that silently breaks
replay identity when someone reorders a loop, and it is invisible to the
static GRM50x rules because the sharing happens through perfectly
deterministic-looking attribute access.

**Happens-before over lanes.**  Every executing branch has a *lane
vector* — ``clock.lane`` — one ``(scope_id, branch_index)`` frame per
level of scope nesting, outermost first (empty tuple = sequential
context).  Two accesses are **unordered** iff at the first frame where
their lanes differ the scope ids are equal but the branch indices are
not: sibling branches of one scope.  Every other relation (equal lanes,
prefix lanes, different scopes at the first difference) is program
order, because scope ids are allocated globally and a scope must join
before sequential execution resumes.

**Disciplines.**  Not all sharing is a bug — the fan-out layer's
single-flight coalescing, for example, is *deliberate* cross-branch
communication and is not instrumented at all.  Registered state carries
an access discipline:

* ``EXCLUSIVE`` — any unordered pair involving a write is a finding
  (write/write → **GRM551**, read/write → **GRM552**);
* ``COMMUTATIVE`` — unordered writes are fine (counter adds, histogram
  records, history appends commute), but an unordered read still
  observes a launch-order-dependent partial state → **GRM552**;
* ``VALUE`` — unordered writes are fine when they write the same value
  (idempotent puts, compared by caller-provided digest), a differing
  digest → **GRM551**; reads are never flagged.

Hooks are a single ambient check — ``if races.ACTIVE is not None`` — so
the instrumented hot paths (every counter add) pay one attribute load
when detection is off.  Activate with::

    detector = RaceDetector.standard(clock)
    with races.activate(detector):
        ...  # run the scenario
    findings = detector.report()

The static half of the sanitizer lives in
:mod:`repro.analysis.determinism`; the lockstep dual-run divergence
harness that complements this detector is :mod:`repro.racecheck`.
"""

from __future__ import annotations

import enum
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterator, Optional

from repro.analysis.findings import AnalysisReport, Finding, Severity

if TYPE_CHECKING:
    from repro.simnet.clock import VirtualClock

#: A lane vector: one (scope_id, branch_index) frame per nesting level.
Lane = tuple[tuple[int, int], ...]

#: Dynamic finding ids reported by this module, with one-line docs —
#: kept alongside the static registry by the rule-coverage tests.
RACE_RULE_DOCS = {
    "GRM551": "unordered-branch write/write on shared state",
    "GRM552": "unordered-branch read/write on shared state",
}

RACE_RULE_IDS = tuple(sorted(RACE_RULE_DOCS))


class Discipline(enum.Enum):
    """How much cross-branch sharing a piece of state tolerates."""

    EXCLUSIVE = "exclusive"
    COMMUTATIVE = "commutative"
    VALUE = "value"


def unordered(a: Lane, b: Lane) -> bool:
    """True iff the two lane vectors are virtually simultaneous.

    Sibling branches of one scope — equal scope id, different branch
    index at the first differing frame.  Equal lanes are the same
    branch; a strict prefix is an enclosing context; different scope
    ids mean one scope joined before the other opened.  All of those
    are program order.
    """
    for frame_a, frame_b in zip(a, b):
        if frame_a != frame_b:
            return frame_a[0] == frame_b[0] and frame_a[1] != frame_b[1]
    return False


@dataclass
class _Access:
    """One remembered touch of a state cell."""

    lane: Lane
    kind: str  # "r" or "w"
    digest: Optional[str]
    site: str
    at: float


class RaceDetector:
    """Tracks reads/writes to registered shared state across lanes.

    One detector per scenario run.  State groups are registered with a
    :class:`Discipline`; accesses arrive through :meth:`note` (usually
    via the module-level ambient hook).  Per ``(state, key)`` cell the
    detector keeps a bounded window of accesses since the last
    sequential touch — a sequential access happens-after everything
    recorded before it, so it resets the cell.
    """

    def __init__(self, clock: "VirtualClock", *, max_cell_history: int = 64) -> None:
        self._clock = clock
        self._disciplines: dict[str, Discipline] = {}
        self._cells: dict[tuple[str, str], deque[_Access]] = {}
        self._findings: list[Finding] = []
        self._seen: set[str] = set()
        self._max_cell_history = max_cell_history
        self.accesses_noted = 0

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def register(self, state: str, discipline: Discipline) -> None:
        """Declare a shared-state group and its access discipline."""
        self._disciplines[state] = discipline

    @classmethod
    def standard(cls, clock: "VirtualClock") -> "RaceDetector":
        """A detector preloaded with the gateway's shared-state map.

        The discipline assignments document the system's concurrency
        contract: counters/histograms/history appends commute, cache
        puts are idempotent by value, gauges and health transitions are
        last-write-wins and must not race.
        """
        det = cls(clock)
        det.register("metrics.counter", Discipline.COMMUTATIVE)
        det.register("metrics.histogram", Discipline.COMMUTATIVE)
        det.register("metrics.gauge", Discipline.EXCLUSIVE)
        det.register("metrics.gauge.delta", Discipline.COMMUTATIVE)
        det.register("cache", Discipline.VALUE)
        # Plan-cache puts are idempotent by construction: one normalised
        # SQL key always compiles to the same plan.
        det.register("plans", Discipline.VALUE)
        det.register("history", Discipline.COMMUTATIVE)
        det.register("health", Discipline.EXCLUSIVE)
        # Adaptive-concurrency limiters: epoch folds (count/sum/min)
        # commute; the recomputed limit is value-disciplined — two
        # unordered rolls only conflict when they land on different
        # limits (a genuine order dependence).
        det.register("limiter.window", Discipline.COMMUTATIVE)
        det.register("limiter", Discipline.VALUE)
        # Streaming plane: subscription lifecycle (register / renew /
        # pause / resume / sweep) is control-plane state and must never
        # be touched from unordered branches; per-subscription pushes
        # from sibling fan-out branches commute (each batch carries its
        # own source_url + published_at provenance).
        det.register("stream.subs", Discipline.EXCLUSIVE)
        det.register("stream.push", Discipline.COMMUTATIVE)
        return det

    # ------------------------------------------------------------------
    # The hook
    # ------------------------------------------------------------------
    def note(
        self,
        state: str,
        key: str,
        kind: str,
        *,
        digest: Optional[str] = None,
        site: str = "",
    ) -> None:
        """Record one access to ``state[key]`` (kind ``"r"`` or ``"w"``)."""
        self.accesses_noted += 1
        lane = self._clock.lane
        cell_key = (state, key)
        cell = self._cells.get(cell_key)
        if lane == ():
            # Sequential context: happens-after every prior access (any
            # enclosing scope has joined), so the history resets.  Note
            # the approximation: code running *between* two branches of
            # a still-open scope is also lane-empty and resets the cell;
            # such interstitial bookkeeping is rare and scope-local.
            if cell is not None:
                cell.clear()
            return
        if cell is None:
            cell = self._cells[cell_key] = deque(maxlen=self._max_cell_history)
        access = _Access(
            lane=lane, kind=kind, digest=digest, site=site, at=self._clock.now()
        )
        discipline = self._disciplines.get(state, Discipline.EXCLUSIVE)
        for prior in cell:
            if prior.kind == "r" and kind == "r":
                continue
            if not unordered(prior.lane, lane):
                continue
            self._judge(discipline, state, key, prior, access)
        cell.append(access)

    def _judge(
        self,
        discipline: Discipline,
        state: str,
        key: str,
        prior: _Access,
        access: _Access,
    ) -> None:
        both_writes = prior.kind == "w" and access.kind == "w"
        if discipline is Discipline.COMMUTATIVE and both_writes:
            return
        if discipline is Discipline.VALUE:
            if not both_writes:
                return
            if prior.digest == access.digest:
                return
        if both_writes:
            rule_id, label = "GRM551", "write/write"
        else:
            rule_id, label = "GRM552", "read/write"
        fingerprint = f"{rule_id}:{state}:{key}"
        if fingerprint in self._seen:
            return
        self._seen.add(fingerprint)
        sites = " vs ".join(s for s in (prior.site, access.site) if s) or key
        self._findings.append(
            Finding(
                rule_id=rule_id,
                severity=Severity.ERROR,
                message=(
                    f"{label} from unordered branches on {state}[{key}] "
                    f"(lanes {_fmt_lane(prior.lane)} vs {_fmt_lane(access.lane)}"
                    f" at t={access.at:g}): outcome depends on branch launch "
                    f"order [{sites}]"
                ),
                path=f"state://{state}",
                line=0,
                symbol=key,
            )
        )

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------
    @property
    def findings(self) -> list[Finding]:
        return list(self._findings)

    def report(self) -> AnalysisReport:
        """The races seen so far as a standard analysis report."""
        report = AnalysisReport()
        report.extend(self._findings)
        report.findings = report.sorted()
        return report

    def reset_window(self) -> None:
        """Forget access history (keep findings) — e.g. between rounds."""
        self._cells.clear()


def _fmt_lane(lane: Lane) -> str:
    return "/".join(f"s{sid}b{idx}" for sid, idx in lane) or "seq"


# ----------------------------------------------------------------------
# Ambient hook
# ----------------------------------------------------------------------
#: The active detector, or None.  Instrumented hot paths guard on this
#: being non-None before calling :func:`note`, so disabled detection
#: costs one attribute load per access.
ACTIVE: Optional[RaceDetector] = None


@contextmanager
def activate(detector: RaceDetector) -> Iterator[RaceDetector]:
    """Install ``detector`` as the ambient detector for the block."""
    global ACTIVE
    prev = ACTIVE
    ACTIVE = detector
    try:
        yield detector
    finally:
        ACTIVE = prev


def note(
    state: str,
    key: str,
    kind: str,
    *,
    digest: Optional[str] = None,
    site: str = "",
) -> None:
    """Forward one access to the ambient detector, if any."""
    det = ACTIVE
    if det is not None:
        det.note(state, key, kind, digest=digest, site=site)
