"""Static analysis for the GridRM reproduction.

Three passes over one shared finding/severity/reporting model
(:mod:`repro.analysis.findings`):

* **driver conformance** (:mod:`repro.analysis.conformance`) — AST
  inspection + introspection of driver plug-ins against the DDK contract
  (paper §3.2.1): required ``probe``/``fetch_group`` signatures, only
  SQLException-family exceptions escaping entry points, virtual-clock
  and simnet discipline;
* **compile-time GLUE query validation**
  (:mod:`repro.analysis.query_check`) — parsed SELECTs checked against
  the GLUE naming schema (§3.2.3) so unknown groups/attributes and
  type-incompatible predicates are rejected before any driver dispatch;
* **project-invariant lint** (:mod:`repro.analysis.rules` +
  :mod:`repro.analysis.linter`) — a pluggable rule registry with
  baseline suppression, exposed as ``python -m repro lint`` and the
  gateway ``analyze`` API;
* **determinism sanitizer** (:mod:`repro.analysis.determinism` — the
  GRM50x static rule family guarding replay identity — and
  :mod:`repro.analysis.races` — the virtual-lane race detector
  reporting GRM55x findings from unordered ``ConcurrentScope``
  branches touching shared mutable state).
"""

# Imported for the side effect of registering their lint rules.
from repro.analysis import determinism as determinism  # noqa: F401
from repro.analysis import races as races  # noqa: F401
from repro.analysis.races import RaceDetector

from repro.analysis.findings import AnalysisReport, Finding, Severity
from repro.analysis.conformance import (
    check_driver,
    check_driver_class,
    check_module,
    check_source,
    clear_module_cache,
)
from repro.analysis.linter import (
    lint_paths,
    load_baseline,
    render_flat,
    render_tree,
    write_baseline,
)
from repro.analysis.query_check import (
    literal_compatible,
    validate_select,
    validate_sql,
)
from repro.analysis.rules import (
    LintRule,
    all_rules,
    register_rule,
    rule_table,
    rules_by_id,
)

__all__ = [
    "AnalysisReport",
    "Finding",
    "Severity",
    "LintRule",
    "RaceDetector",
    "all_rules",
    "check_driver",
    "check_driver_class",
    "check_module",
    "check_source",
    "clear_module_cache",
    "lint_paths",
    "literal_compatible",
    "load_baseline",
    "register_rule",
    "render_flat",
    "render_tree",
    "rule_table",
    "rules_by_id",
    "validate_select",
    "validate_sql",
    "write_baseline",
]
