"""Lint driver: walk source paths, run the rule registry, render.

Used by the ``python -m repro lint`` CLI subcommand, the gateway's
``analyze`` API and the management console.  Baseline files let a
codebase adopt a new rule without first fixing every historical
violation: ``--write-baseline`` records the current findings'
fingerprints, and later runs suppress exactly those.
"""

from __future__ import annotations

import json
import os
from typing import Iterable, Sequence

from repro.analysis.findings import AnalysisReport, Finding, Severity
from repro.analysis.rules import LintRule, all_rules
from repro.analysis.conformance import check_source

#: Severity icons, matching the console tree view's bracket style.
_ICONS = {
    Severity.ERROR: "[xx]",
    Severity.WARNING: "[!!]",
    Severity.INFO: "[..]",
}

#: Marker line identifying a baseline file.
BASELINE_HEADER = "# repro-lint baseline v1"


def iter_python_files(paths: Sequence[str]) -> list[str]:
    """All ``.py`` files under ``paths`` (files kept as-is), sorted."""
    out: set[str] = set()
    for path in paths:
        if os.path.isfile(path):
            out.add(path)
            continue
        for dirpath, dirnames, filenames in os.walk(path):
            dirnames[:] = [d for d in dirnames if d not in ("__pycache__",)]
            for name in filenames:
                if name.endswith(".py"):
                    out.add(os.path.join(dirpath, name))
    return sorted(out)


def lint_paths(
    paths: Sequence[str],
    *,
    rules: "Iterable[LintRule] | None" = None,
    baseline: "Iterable[str] | None" = None,
) -> AnalysisReport:
    """Lint every Python file under ``paths`` with the given rules."""
    selected = list(rules) if rules is not None else all_rules()
    report = AnalysisReport()
    for file_path in iter_python_files(paths):
        report.files_scanned += 1
        try:
            with open(file_path, "r", encoding="utf-8") as handle:
                source = handle.read()
        except (OSError, UnicodeDecodeError) as exc:
            report.findings.append(
                Finding(
                    rule_id="GRM100",
                    severity=Severity.ERROR,
                    message=f"cannot read: {exc}",
                    path=file_path,
                    symbol="io",
                )
            )
            continue
        report.extend(check_source(source, file_path, rules=selected))
    report.findings = report.sorted()
    if baseline is not None:
        report = report.apply_baseline(baseline)
    return report


# ----------------------------------------------------------------------
# Baseline files
# ----------------------------------------------------------------------
def load_baseline(path: str) -> set[str]:
    """Fingerprints from a baseline file; missing file -> empty set."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            lines = handle.read().splitlines()
    except OSError:
        return set()
    return {
        line.strip()
        for line in lines
        if line.strip() and not line.startswith("#")
    }


def write_baseline(path: str, report: AnalysisReport) -> int:
    """Record the report's findings as the suppression baseline."""
    fingerprints = sorted({f.fingerprint for f in report.findings})
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(BASELINE_HEADER + "\n")
        handle.write(
            "# One fingerprint per line (rule:path:symbol); remove lines as\n"
            "# violations are fixed.  Regenerate: repro lint --write-baseline\n"
        )
        for fp in fingerprints:
            handle.write(fp + "\n")
    return len(fingerprints)


# ----------------------------------------------------------------------
# Rendering
# ----------------------------------------------------------------------
def render_flat(report: AnalysisReport) -> str:
    """One finding per line, grep-friendly."""
    lines = [f.format() for f in report.sorted()]
    lines.append(summary_line(report))
    return "\n".join(lines)


def render_tree(report: AnalysisReport, *, title: str = "Static analysis") -> str:
    """Findings grouped per file, in the console tree-view idiom."""
    lines = [f"{title}: {summary_line(report)}"]
    by_path: dict[str, list[Finding]] = {}
    for f in report.sorted():
        by_path.setdefault(f.path, []).append(f)
    for path, findings in by_path.items():
        lines.append(f"+- {path}")
        for f in findings:
            where = f"L{f.line}" if f.line else (f.symbol or "-")
            lines.append(
                f"|    {_ICONS[f.severity]} {f.rule_id} {where}: {f.message}"
            )
    if not by_path:
        lines.append("+- (clean)")
    return "\n".join(lines)


def render_json(report: AnalysisReport) -> str:
    """Machine-readable rendering for CI annotation.

    Stable by construction: findings in the report's canonical sort
    order, object keys in a fixed order, no timestamps or absolute
    paths beyond what the findings themselves carry.  Two runs over the
    same tree produce byte-identical output.
    """
    payload = {
        "version": 1,
        "files_scanned": report.files_scanned,
        "suppressed": report.suppressed,
        "errors": len(report.errors),
        "findings": [
            {
                "rule_id": f.rule_id,
                "severity": f.severity.value,
                "path": f.path,
                "line": f.line,
                "symbol": f.symbol,
                "message": f.message,
                "fingerprint": f.fingerprint,
            }
            for f in report.sorted()
        ],
    }
    return json.dumps(payload, indent=2, sort_keys=False)


def summary_line(report: AnalysisReport) -> str:
    n_err = len(report.errors)
    n_other = len(report.findings) - n_err
    parts = [
        f"{len(report.findings)} finding(s)"
        + (f" ({n_err} error, {n_other} other)" if report.findings else ""),
        f"{report.files_scanned} file(s) scanned",
    ]
    if report.suppressed:
        parts.append(f"{report.suppressed} baselined")
    return ", ".join(parts)
