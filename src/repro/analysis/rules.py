"""Pluggable lint-rule registry and the built-in project-invariant rules.

A rule is a class with a stable ``rule_id``, a default :class:`Severity`
and a ``check(module)`` generator yielding :class:`Finding` objects.
Rules register themselves with :func:`register_rule`; the linter, the
gateway's ``analyze`` API and the CLI all draw from the same registry, so
a third-party driver package can ship extra rules by importing this
module and decorating its own classes.

Rule-id ranges:

* ``GRM1xx`` — project invariants checked over any Python source
  (virtual-clock discipline, simnet discipline, exception discipline)
  and DDK driver-contract checks (signatures, exception families);
* ``GRM2xx`` — compile-time GLUE query validation
  (:mod:`repro.analysis.query_check`);
* ``GRM3xx`` — gateway start-up findings
  (:mod:`repro.analysis.conformance`);
* ``GRM4xx`` — storage recovery findings (quarantined segments, torn
  WAL tails — :mod:`repro.storage.recovery`);
* ``GRM50x`` — determinism sanitizer
  (:mod:`repro.analysis.determinism`): replay-identity hazards beyond
  GRM101's wall-clock set (unseeded random, unordered set iteration,
  id()/hash() ordering, entropy sources);
* ``GRM55x`` — virtual-lane race findings
  (:mod:`repro.analysis.races`): unordered-branch access conflicts and
  dual-run divergence, reported by the runtime detector rather than an
  AST pass.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from typing import Iterator, Type

from repro.analysis.findings import Finding, Severity

#: Driver entry points whose escaping exceptions must stay in the
#: SQLException family (paper §3.2.1: a fully implemented driver throws
#: SQLExceptions; the driver manager's failure policies catch nothing
#: else).
DRIVER_ENTRY_POINTS = frozenset(
    {"probe", "fetch_group", "connect", "accepts_url", "execute_query"}
)

#: Exception names a driver entry point may raise: the SQLException
#: family (``SQL*``), the simnet transport errors the DDK base class
#: translates itself, and NotImplementedError for abstract members.
ALLOWED_DRIVER_RAISES = frozenset(
    {
        "NetworkError",
        "TimeoutError_",
        "HostUnreachableError",
        "PortClosedError",
        "NotImplementedError",
    }
)

#: ``(module, attribute)`` call patterns that read or block on the wall
#: clock.  All timing must flow through ``repro.simnet.clock`` so that
#: experiments stay deterministic.
_WALL_CLOCK_CALLS = {
    "time": {"time", "sleep", "monotonic", "perf_counter", "time_ns"},
    "datetime": {"now", "utcnow", "today"},
}
_WALL_CLOCK_IMPORTS = {
    ("time", "time"),
    ("time", "sleep"),
    ("time", "monotonic"),
    ("time", "perf_counter"),
}


#: ``# grm: allow-<tag>`` trailing (or immediately preceding, on a
#: comment-only line) a flagged statement suppresses the matching rule.
#: Tags are per-rule (``allow-wallclock``, ``allow-random``, ...) so an
#: escape documents exactly which hazard was judged acceptable.
_ALLOW_COMMENT = re.compile(r"#\s*grm:\s*allow-([a-z][a-z0-9-]*)")


@dataclass
class ModuleContext:
    """One parsed source file handed to every rule."""

    path: str
    source: str
    tree: ast.Module
    #: Lazily built 1-based line -> allow tags map (see :meth:`allowed`).
    _allow_lines: "dict[int, set[str]] | None" = field(
        default=None, repr=False, compare=False
    )

    def allowed(self, node: ast.AST, tag: str) -> bool:
        """True when ``node``'s line carries ``# grm: allow-<tag>``.

        A tag on the line itself or on a standalone comment line directly
        above it both count, so escapes survive black-style wrapping.
        """
        if self._allow_lines is None:
            lines: dict[int, set[str]] = {}
            for lineno, text in enumerate(self.source.splitlines(), start=1):
                tags = set(_ALLOW_COMMENT.findall(text))
                if tags:
                    lines[lineno] = tags
            self._allow_lines = lines
        lineno = getattr(node, "lineno", 0)
        if not lineno:
            return False
        for candidate in (lineno, lineno - 1):
            tags = self._allow_lines.get(candidate)
            if tags and tag in tags:
                # A preceding line only counts if it is comment-only.
                if candidate == lineno or self._comment_only(candidate):
                    return True
        return False

    def _comment_only(self, lineno: int) -> bool:
        lines = self.source.splitlines()
        if not 1 <= lineno <= len(lines):
            return False
        return lines[lineno - 1].lstrip().startswith("#")

    def driver_classes(self) -> dict[str, ast.ClassDef]:
        """Classes in this module that (transitively, within the module)
        subclass ``GridRmDriver``."""
        classes = {
            node.name: node
            for node in self.tree.body
            if isinstance(node, ast.ClassDef)
        }
        driver_names: set[str] = set()
        changed = True
        while changed:
            changed = False
            for name, node in classes.items():
                if name in driver_names:
                    continue
                for base in node.bases:
                    base_name = _base_name(base)
                    if base_name == "GridRmDriver" or base_name in driver_names:
                        driver_names.add(name)
                        changed = True
                        break
        return {n: c for n, c in classes.items() if n in driver_names}


def _base_name(node: ast.expr) -> str:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return ""


class LintRule:
    """Base class for lint rules; subclasses set the class attributes and
    implement :meth:`check`."""

    rule_id = ""
    severity = Severity.ERROR
    title = ""

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(
        self, module: ModuleContext, node: ast.AST, message: str, *, symbol: str = ""
    ) -> Finding:
        return Finding(
            rule_id=self.rule_id,
            severity=self.severity,
            message=message,
            path=module.path,
            line=getattr(node, "lineno", 0),
            symbol=symbol,
        )


#: rule_id -> rule class.  One shared registry for the whole process.
_REGISTRY: dict[str, Type[LintRule]] = {}


def register_rule(cls: Type[LintRule]) -> Type[LintRule]:
    """Class decorator adding a rule to the registry (id must be unique)."""
    if not cls.rule_id:
        raise ValueError(f"{cls.__name__} has no rule_id")
    existing = _REGISTRY.get(cls.rule_id)
    if existing is not None and existing is not cls:
        raise ValueError(
            f"rule id {cls.rule_id!r} already registered by {existing.__name__}"
        )
    _REGISTRY[cls.rule_id] = cls
    return cls


def all_rules() -> list[LintRule]:
    """Fresh instances of every registered rule, ordered by id."""
    return [_REGISTRY[rid]() for rid in sorted(_REGISTRY)]


def rules_by_id(ids: "list[str] | None" = None) -> list[LintRule]:
    """Instances for ``ids`` (all rules when None); unknown ids raise."""
    if ids is None:
        return all_rules()
    missing = [i for i in ids if i not in _REGISTRY]
    if missing:
        raise KeyError(f"unknown rule id(s): {', '.join(sorted(missing))}")
    return [_REGISTRY[i]() for i in sorted(ids)]


def rule_table() -> list[tuple[str, str, str]]:
    """(id, severity, title) rows for docs and the CLI's --list-rules."""
    return [
        (rid, _REGISTRY[rid].severity.value, _REGISTRY[rid].title)
        for rid in sorted(_REGISTRY)
    ]


# ----------------------------------------------------------------------
# Project-invariant rules (any source file)
# ----------------------------------------------------------------------
@register_rule
class WallClockRule(LintRule):
    """Virtual-clock discipline: all timing flows through simnet's clock."""

    rule_id = "GRM101"
    severity = Severity.ERROR
    title = "wall-clock call (use repro.simnet.clock, not time/datetime)"

    # The ``# grm: allow-wallclock`` escape (shared with the determinism
    # family's GRM501) silences this rule on annotated lines.
    def check(self, module: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if module.allowed(node, "wallclock"):
                continue
            if isinstance(node, ast.ImportFrom) and node.module == "time":
                names = {a.name for a in node.names}
                bad = sorted(
                    n for (m, n) in _WALL_CLOCK_IMPORTS if m == "time" and n in names
                )
                if bad:
                    yield self.finding(
                        module,
                        node,
                        f"imports wall-clock function(s) {', '.join(bad)} "
                        "from time",
                        symbol=f"import-time-{'-'.join(bad)}",
                    )
            elif isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
                func = node.func
                owner = func.value
                owner_name = ""
                if isinstance(owner, ast.Name):
                    owner_name = owner.id
                elif isinstance(owner, ast.Attribute):
                    owner_name = owner.attr
                bad_attrs = _WALL_CLOCK_CALLS.get(owner_name)
                if bad_attrs and func.attr in bad_attrs:
                    yield self.finding(
                        module,
                        node,
                        f"{owner_name}.{func.attr}() breaks the virtual clock; "
                        "use the simnet clock instead",
                        symbol=f"{owner_name}.{func.attr}",
                    )


@register_rule
class RawSocketRule(LintRule):
    """Simnet discipline: no real network I/O bypassing the simulation."""

    rule_id = "GRM102"
    severity = Severity.ERROR
    title = "raw socket use (all I/O must go through repro.simnet)"

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "socket" or alias.name.startswith("socket."):
                        yield self.finding(
                            module,
                            node,
                            "imports the socket module; drivers must use "
                            "connection.request() over the simulated network",
                            symbol="import-socket",
                        )
            elif isinstance(node, ast.ImportFrom):
                if node.module == "socket" or (node.module or "").startswith(
                    "socket."
                ):
                    yield self.finding(
                        module,
                        node,
                        "imports from the socket module; drivers must use "
                        "connection.request() over the simulated network",
                        symbol="import-socket",
                    )


@register_rule
class ExceptionDisciplineRule(LintRule):
    """No bare except / blanket ``except Exception`` in library code.

    Cleanup-and-reraise handlers (whose last statement is a bare
    ``raise``) are exempt: they narrow nothing and swallow nothing.
    """

    rule_id = "GRM103"
    severity = Severity.ERROR
    title = "bare or blanket except (catch concrete exception types)"

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            last = node.body[-1] if node.body else None
            if isinstance(last, ast.Raise) and last.exc is None:
                continue
            for caught in self._caught_names(node):
                yield self.finding(
                    module,
                    node,
                    f"handler catches {caught}; name the concrete "
                    "exception types instead",
                    symbol=caught,
                )

    @staticmethod
    def _caught_names(node: ast.ExceptHandler) -> list[str]:
        if node.type is None:
            return ["everything (bare except)"]
        exprs = node.type.elts if isinstance(node.type, ast.Tuple) else [node.type]
        return [
            e.id
            for e in exprs
            if isinstance(e, ast.Name) and e.id in ("Exception", "BaseException")
        ]


# ----------------------------------------------------------------------
# DDK driver-contract rules (GridRmDriver subclasses only)
# ----------------------------------------------------------------------
#: method name -> names of the required positional parameters after self.
_REQUIRED_SIGNATURES = {
    "probe": ("url",),
    "fetch_group": ("connection", "group", "select"),
    "build_mapping": (),
}


def expected_signature(method: str) -> "tuple[str, ...] | None":
    """Required positional parameters (after self) of a DDK method."""
    return _REQUIRED_SIGNATURES.get(method)


@register_rule
class DriverSignatureRule(LintRule):
    """DDK contract: ``probe(url)`` / ``fetch_group(connection, group,
    select)`` / ``build_mapping()`` positional shapes."""

    rule_id = "GRM104"
    severity = Severity.ERROR
    title = "driver method does not match the DDK signature"

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        for cls_name, cls in module.driver_classes().items():
            for node in cls.body:
                if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue
                required = _REQUIRED_SIGNATURES.get(node.name)
                if required is None:
                    continue
                problem = self._signature_problem(node, required)
                if problem:
                    yield self.finding(
                        module,
                        node,
                        f"{cls_name}.{node.name} {problem}; the DDK requires "
                        f"{node.name}({', '.join(('self',) + required)})",
                        symbol=f"{cls_name}.{node.name}",
                    )

    @staticmethod
    def _signature_problem(
        node: "ast.FunctionDef | ast.AsyncFunctionDef", required: tuple[str, ...]
    ) -> str:
        args = node.args
        positional = [a.arg for a in args.posonlyargs + args.args]
        if not positional or positional[0] != "self":
            return "is missing self"
        got = tuple(positional[1:])
        # Trailing positional parameters with defaults are optional
        # extensions and tolerated; the required prefix must match.
        n_required = len(got) - len(args.defaults)
        if got[: len(required)] != required:
            return f"takes positional parameters {got or '()'}"
        if n_required > len(required):
            return (
                f"adds required positional parameter(s) "
                f"{', '.join(got[len(required):n_required])}"
            )
        if args.vararg is not None:
            return "uses *args"
        return ""


@register_rule
class DriverExceptionLeakRule(LintRule):
    """DDK contract: only the SQLException family (plus the transport
    errors the base class translates) escapes driver entry points."""

    rule_id = "GRM105"
    severity = Severity.ERROR
    title = "driver entry point raises outside the SQLException family"

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        for cls_name, cls in module.driver_classes().items():
            for node in cls.body:
                if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue
                if node.name not in DRIVER_ENTRY_POINTS:
                    continue
                for raised in ast.walk(node):
                    if not isinstance(raised, ast.Raise):
                        continue
                    name = self._raised_name(raised)
                    if name is None:  # bare re-raise
                        continue
                    if name.startswith("SQL") or name in ALLOWED_DRIVER_RAISES:
                        continue
                    yield self.finding(
                        module,
                        raised,
                        f"{cls_name}.{node.name} raises {name}; driver entry "
                        "points must raise SQLException subtypes "
                        "(repro.dbapi.exceptions)",
                        symbol=f"{cls_name}.{node.name}:{name}",
                    )

    @staticmethod
    def _raised_name(node: ast.Raise) -> "str | None":
        exc = node.exc
        if exc is None:
            return None
        if isinstance(exc, ast.Call):
            exc = exc.func
        if isinstance(exc, ast.Name):
            return exc.id
        if isinstance(exc, ast.Attribute):
            return exc.attr
        return "<dynamic>"
