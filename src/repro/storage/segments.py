"""Sealed, immutable, time-partitioned history segments.

At checkpoint the engine seals each GLUE group's memtable into one
segment file: a single CRC-framed pickled blob (see the codec note in
:mod:`repro.storage.wal`) holding the rows plus the ``RecordedAt`` span
they cover.  Segments are immutable after sealing —
retention drops *whole* segments (ring overflow, ``trim_older_than``
age, or the ``history_retention_age`` policy), never rewrites them,
which keeps both the crash story and the recovery story trivial: a
segment either decodes byte-perfect or it is quarantined.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

from repro.storage.wal import (
    TAIL_CLEAN,
    decode_payload,
    encode_record,
    read_frames,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.storage.simdisk import SimDisk


class SegmentDecodeError(Exception):
    """A segment file failed its CRC or structural checks."""


def segment_path(group: str, seq: int) -> str:
    return f"seg/{group}/{seq:08d}.seg"


@dataclass
class Segment:
    """One sealed run of history rows for a single GLUE group."""

    group: str
    seq: int
    rows: list[dict[str, Any]]
    #: RecordedAt span of the rows (None when every row lacks a timestamp).
    min_at: float | None
    max_at: float | None

    @property
    def path(self) -> str:
        return segment_path(self.group, self.seq)

    @property
    def row_count(self) -> int:
        return len(self.rows)

    def manifest_entry(self) -> dict[str, Any]:
        """The manifest's pointer to this segment (contents live on disk)."""
        return {
            "group": self.group,
            "seq": self.seq,
            "rows": len(self.rows),
            "min_at": self.min_at,
            "max_at": self.max_at,
        }


def seal_segment(
    disk: "SimDisk", group: str, seq: int, rows: list[dict[str, Any]]
) -> Segment:
    """Write ``rows`` as segment ``seq`` of ``group``; fsync before returning.

    The caller (checkpoint) must not reference the segment from a
    manifest until this returns — the fsync-then-point ordering is what
    makes a crash mid-checkpoint leave only harmless orphan files.
    """
    times = [r["RecordedAt"] for r in rows if r.get("RecordedAt") is not None]
    seg = Segment(
        group=group,
        seq=seq,
        rows=[dict(r) for r in rows],
        min_at=min(times) if times else None,
        max_at=max(times) if times else None,
    )
    framed = encode_record(
        {
            "group": seg.group,
            "seq": seg.seq,
            "min_at": seg.min_at,
            "max_at": seg.max_at,
            "rows": seg.rows,
        }
    )
    disk.create(seg.path)
    disk.append(seg.path, framed)
    disk.fsync(seg.path)
    return seg


def load_segment(disk: "SimDisk", path: str) -> Segment:
    """Decode one sealed segment, raising :class:`SegmentDecodeError`.

    Recovery catches the error and quarantines the file instead of
    refusing to start — degraded serving beats no serving (the same
    philosophy as serving stale cache results on source failure).
    """
    payloads, tail, detail = read_frames(disk.read(path))
    if tail != TAIL_CLEAN or len(payloads) != 1:
        raise SegmentDecodeError(
            f"{path}: bad frame ({detail or f'{len(payloads)} frames, tail {tail}'})"
        )
    doc = decode_payload(payloads[0])
    if doc is None:
        raise SegmentDecodeError(f"{path}: undecodable payload")
    if not isinstance(doc.get("rows"), list):
        raise SegmentDecodeError(f"{path}: payload is not a segment document")
    try:
        return Segment(
            group=str(doc["group"]),
            seq=int(doc["seq"]),
            rows=[dict(r) for r in doc["rows"]],
            min_at=doc.get("min_at"),
            max_at=doc.get("max_at"),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise SegmentDecodeError(f"{path}: malformed segment fields: {exc}") from exc
