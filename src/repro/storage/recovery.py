"""Crash recovery: last checkpoint + committed WAL suffix.

On start-up the engine calls :func:`recover_state`, which rebuilds the
durable picture of history from disk:

1. follow ``CURRENT`` to the newest readable manifest (an unreadable one
   is skipped with a GRM403 finding — the GC window means an older
   manifest may still be present and consistent; a fresh disk yields an
   empty state);
2. load every segment the manifest names; a segment that fails its CRC
   or structural checks is *quarantined* — renamed aside, reported as a
   GRM401 degraded-serving finding — never served and never fatal;
3. replay the manifest's WAL generation from the front, applying row and
   trim records to an in-memory memtable, and stop at the first torn or
   corrupt frame (GRM402); everything from the bad frame on is dropped.

The result is exactly the acknowledged prefix: rows the engine fsynced
(directly or via a sealed segment) survive, un-fsynced tails die with
the crash, and corrupt bytes are contained rather than served.  The
engine finishes start-up with a fresh checkpoint, so quarantined
segments leave the manifest and replayed rows regain a sealed home.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro.analysis.findings import Finding, Severity
from repro.storage.checkpoint import (
    ManifestError,
    current_manifest,
    read_manifest,
)
from repro.storage.segments import Segment, SegmentDecodeError, load_segment, segment_path
from repro.storage.wal import TAIL_CLEAN, TAIL_TORN, WriteAheadLog, wal_path

if TYPE_CHECKING:  # pragma: no cover
    from repro.storage.simdisk import SimDisk

#: Where quarantined segment files are moved (flattened path).
QUARANTINE_PREFIX = "quarantine/"

RULE_SEGMENT_QUARANTINED = "GRM401"
RULE_WAL_TAIL_TRUNCATED = "GRM402"
RULE_MANIFEST_SKIPPED = "GRM403"


@dataclass
class RecoveryReport:
    """What one recovery pass found (surfaced via gateway start-up)."""

    manifest: str = ""
    wal_gen: int = 1
    segments_loaded: int = 0
    segment_rows: int = 0
    segments_quarantined: int = 0
    rows_quarantined: int = 0
    wal_records_replayed: int = 0
    wal_tail: str = TAIL_CLEAN
    wal_tail_detail: str = ""
    manifests_skipped: int = 0
    #: Virtual seconds recovery spent reading/replaying (disk latency).
    elapsed: float = 0.0
    findings: list[Finding] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        """True when nothing was quarantined, truncated or skipped."""
        return not self.findings

    def as_dict(self) -> dict[str, Any]:
        return {
            "manifest": self.manifest,
            "wal_gen": self.wal_gen,
            "segments_loaded": self.segments_loaded,
            "segment_rows": self.segment_rows,
            "segments_quarantined": self.segments_quarantined,
            "rows_quarantined": self.rows_quarantined,
            "wal_records_replayed": self.wal_records_replayed,
            "wal_tail": self.wal_tail,
            "wal_tail_detail": self.wal_tail_detail,
            "manifests_skipped": self.manifests_skipped,
            "elapsed": self.elapsed,
            "findings": [f.format() for f in self.findings],
        }

    def format(self) -> str:
        lines = [
            f"recovery: manifest={self.manifest or '(fresh)'} wal_gen={self.wal_gen}",
            f"  segments loaded={self.segments_loaded} ({self.segment_rows} rows), "
            f"quarantined={self.segments_quarantined} ({self.rows_quarantined} rows)",
            f"  wal replayed={self.wal_records_replayed} records, tail={self.wal_tail}"
            + (f" ({self.wal_tail_detail})" if self.wal_tail_detail else ""),
        ]
        for finding in self.findings:
            lines.append("  " + finding.format())
        return "\n".join(lines)


@dataclass
class RecoveredState:
    """The durable state handed to :class:`~repro.storage.engine.HistoryEngine`."""

    segments: dict[str, list[Segment]] = field(default_factory=dict)
    #: group -> [(lsn, row)] replayed from the WAL, append order.
    memtable: dict[str, list[tuple[int, dict[str, Any]]]] = field(default_factory=dict)
    trim_cutoff: float | None = None
    next_lsn: int = 1
    next_seg_seq: int = 1
    wal_gen: int = 1
    report: RecoveryReport = field(default_factory=RecoveryReport)


def _pick_manifest(disk: "SimDisk", report: RecoveryReport) -> dict[str, Any] | None:
    """Newest readable manifest: CURRENT's choice, else fall back by gen."""
    tried: set[str] = set()
    candidates: list[str] = []
    pointed = current_manifest(disk)
    if pointed:
        candidates.append(pointed)
    # Fall back to any other manifest on disk, newest generation first —
    # covers a corrupt CURRENT target caught inside the pre-GC window.
    candidates.extend(sorted(disk.list("MANIFEST-"), reverse=True))
    for path in candidates:
        if path in tried:
            continue
        tried.add(path)
        try:
            doc = read_manifest(disk, path)
        except ManifestError as exc:
            report.manifests_skipped += 1
            report.findings.append(
                Finding(
                    rule_id=RULE_MANIFEST_SKIPPED,
                    severity=Severity.WARNING,
                    message=f"skipped unreadable manifest: {exc}",
                    path=path,
                    symbol="manifest",
                )
            )
            continue
        report.manifest = path
        return doc
    return None


def _load_segments(
    disk: "SimDisk", doc: dict[str, Any], state: RecoveredState
) -> None:
    report = state.report
    for entry in doc.get("segments", []):
        group = str(entry.get("group", ""))
        seq = int(entry.get("seq", 0))
        path = segment_path(group, seq)
        try:
            seg = load_segment(disk, path)
        except FileNotFoundError:
            exc_msg = "segment file missing"
            seg = None
        except SegmentDecodeError as exc:
            exc_msg = str(exc)
            seg = None
        if seg is None:
            rows_lost = int(entry.get("rows", 0))
            report.segments_quarantined += 1
            report.rows_quarantined += rows_lost
            if disk.exists(path):
                disk.rename(path, QUARANTINE_PREFIX + path.replace("/", "_"))
            report.findings.append(
                Finding(
                    rule_id=RULE_SEGMENT_QUARANTINED,
                    severity=Severity.WARNING,
                    message=(
                        f"quarantined corrupt segment ({rows_lost} rows degraded): "
                        f"{exc_msg}"
                    ),
                    path=path,
                    symbol=group,
                )
            )
            continue
        state.segments.setdefault(seg.group, []).append(seg)
        state.next_seg_seq = max(state.next_seg_seq, seg.seq + 1)
        report.segments_loaded += 1
        report.segment_rows += seg.row_count
    for segs in state.segments.values():
        segs.sort(key=lambda s: s.seq)


def _replay_wal(disk: "SimDisk", state: RecoveredState) -> None:
    report = state.report
    path = wal_path(state.wal_gen)
    records, tail, detail = WriteAheadLog.read_records(disk, path)
    report.wal_tail = tail
    report.wal_tail_detail = detail
    for record in records:
        lsn = record.get("lsn")
        if isinstance(lsn, int):
            state.next_lsn = max(state.next_lsn, lsn + 1)
        kind = record.get("kind")
        if kind == "rows":
            group = str(record.get("group", ""))
            rows = record.get("rows")
            if group and isinstance(rows, list):
                entries = state.memtable.setdefault(group, [])
                for row in rows:
                    if isinstance(row, dict):
                        entries.append((lsn if isinstance(lsn, int) else 0, row))
                report.wal_records_replayed += 1
        elif kind == "row":
            group = str(record.get("group", ""))
            row = record.get("row")
            if group and isinstance(row, dict):
                state.memtable.setdefault(group, []).append(
                    (lsn if isinstance(lsn, int) else 0, row)
                )
                report.wal_records_replayed += 1
        elif kind == "trim":
            cutoff = record.get("cutoff")
            if isinstance(cutoff, (int, float)) and not isinstance(cutoff, bool):
                cutoff = float(cutoff)
                if state.trim_cutoff is None or cutoff > state.trim_cutoff:
                    state.trim_cutoff = cutoff
                for entries in state.memtable.values():
                    entries[:] = [
                        (lsn_, row)
                        for lsn_, row in entries
                        if row.get("RecordedAt") is None
                        or row["RecordedAt"] >= cutoff
                    ]
                report.wal_records_replayed += 1
        # Unknown kinds are skipped: forward compatibility over refusal.
    if tail != TAIL_CLEAN:
        report.findings.append(
            Finding(
                rule_id=RULE_WAL_TAIL_TRUNCATED,
                severity=Severity.INFO if tail == TAIL_TORN else Severity.WARNING,
                message=f"wal tail truncated ({tail}): {detail}; "
                f"replayed {report.wal_records_replayed} committed records",
                path=path,
                symbol="wal",
            )
        )


def recover_state(disk: "SimDisk") -> RecoveredState:
    """Rebuild durable history state from ``disk`` (never raises on damage)."""
    state = RecoveredState()
    report = state.report
    doc = _pick_manifest(disk, report)
    if doc is not None:
        state.wal_gen = max(1, int(doc.get("wal_gen", 1)))
        state.next_lsn = max(1, int(doc.get("next_lsn", 1)))
        state.next_seg_seq = max(1, int(doc.get("next_seg_seq", 1)))
        cutoff = doc.get("trim_cutoff")
        if isinstance(cutoff, (int, float)) and not isinstance(cutoff, bool):
            state.trim_cutoff = float(cutoff)
        _load_segments(disk, doc, state)
    report.wal_gen = state.wal_gen
    _replay_wal(disk, state)
    return state
