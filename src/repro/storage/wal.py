"""Checksummed, record-oriented write-ahead log with group commit.

Every history row the gateway acknowledges is first framed and appended
here.  The frame format — shared by segments and manifests via
:func:`frame`/:func:`read_frames` — is::

    <length:uint32 LE> <crc32:uint32 LE> <payload: length bytes>

WAL and segment payloads are *pickled* record dicts (fixed protocol, so
seeded replays stay byte-identical); the manifest keeps human-readable
JSON.  Pickle is the deliberate choice for the hot path: the log is only
ever read back by the process family that wrote it, every frame passes
its CRC before a single byte is unpickled, the rows are plain scalar
dicts that round-trip exactly — and pickling is several times faster per
row than JSON, which is what keeps the durable record path inside its
2x-overhead budget (see ``BENCH_durability.json``).

Recovery walks frames from the front and stops at the first one that is
*torn* (truncated header or payload — the expected shape after a crash
mid-append) or *corrupt* (CRC mismatch — bit rot or a misdirected
write).  Everything before the bad frame is trusted; nothing at or after
it is ever served.

Group commit: ``append`` buffers frames on the :class:`SimDisk` and only
``fsync``\\ s every ``sync_interval`` records (policy knob
``history_fsync_interval``).  A record is *acknowledged* — counted on,
reported durable, guaranteed to survive a crash — only once its LSN is
``<= synced_lsn``.  The crashtest harness holds the system to exactly
that boundary.
"""

from __future__ import annotations

import pickle
import struct
import zlib
from typing import TYPE_CHECKING, Any, Mapping

if TYPE_CHECKING:  # pragma: no cover
    from repro.obs.metrics import MetricsRegistry
    from repro.storage.simdisk import SimDisk

#: ``<length, crc32>`` little-endian frame header.
FRAME_HEADER = struct.Struct("<II")

#: Tail classifications returned by :func:`read_frames`.
TAIL_CLEAN = "clean"
TAIL_TORN = "torn"
TAIL_CORRUPT = "corrupt"


def frame(payload: bytes) -> bytes:
    """Wrap ``payload`` in a length+CRC frame."""
    return FRAME_HEADER.pack(len(payload), zlib.crc32(payload)) + payload


#: Pinned pickle protocol: replay identity requires stable bytes.
PICKLE_PROTOCOL = 4


def encode_record(record: Mapping[str, Any]) -> bytes:
    """Frame one record dict — the WAL's hottest line (once per batch)."""
    payload = pickle.dumps(record, protocol=PICKLE_PROTOCOL)
    return FRAME_HEADER.pack(len(payload), zlib.crc32(payload)) + payload


def decode_payload(payload: bytes) -> dict[str, Any] | None:
    """One CRC-valid frame payload back to its record dict.

    Returns None when the payload does not unpickle to a dict — a frame
    that was *written* corrupt rather than torn; callers treat it like a
    corrupt tail.  Only ever fed CRC-checked payloads.
    """
    try:
        record = pickle.loads(payload)
    except (
        pickle.UnpicklingError,
        EOFError,
        AttributeError,
        ImportError,
        IndexError,
        KeyError,
        ValueError,
        TypeError,
    ):
        return None
    return record if isinstance(record, dict) else None


def read_frames(data: bytes) -> tuple[list[bytes], str, str]:
    """Split ``data`` into frame payloads, classifying the tail.

    Returns ``(payloads, tail, detail)`` where ``tail`` is one of
    :data:`TAIL_CLEAN` (every byte consumed), :data:`TAIL_TORN`
    (truncated final frame) or :data:`TAIL_CORRUPT` (CRC mismatch).
    ``payloads`` holds every frame *before* the bad one.
    """
    payloads: list[bytes] = []
    offset = 0
    total = len(data)
    while offset < total:
        if total - offset < FRAME_HEADER.size:
            return payloads, TAIL_TORN, f"truncated header at byte {offset}"
        length, crc = FRAME_HEADER.unpack_from(data, offset)
        start = offset + FRAME_HEADER.size
        end = start + length
        if end > total:
            return (
                payloads,
                TAIL_TORN,
                f"truncated payload at byte {offset} ({end - total} bytes short)",
            )
        payload = bytes(data[start:end])
        if zlib.crc32(payload) != crc:
            return payloads, TAIL_CORRUPT, f"crc mismatch in frame at byte {offset}"
        payloads.append(payload)
        offset = end
    return payloads, TAIL_CLEAN, ""


def decode_record_frames(payloads: list[bytes]) -> tuple[list[dict[str, Any]], int]:
    """Decode framed payloads, stopping at the first undecodable one.

    Returns ``(records, bad_index)`` with ``bad_index == -1`` when all
    payloads decode.
    """
    records: list[dict[str, Any]] = []
    for i, payload in enumerate(payloads):
        record = decode_payload(payload)
        if record is None:
            return records, i
        records.append(record)
    return records, -1


def wal_path(gen: int) -> str:
    return f"wal/{gen:06d}.wal"


class WriteAheadLog:
    """Append-only framed record log on one :class:`SimDisk` file."""

    def __init__(
        self,
        disk: "SimDisk",
        *,
        gen: int = 1,
        next_lsn: int = 1,
        sync_interval: int = 1,
        registry: "MetricsRegistry | None" = None,
    ) -> None:
        if sync_interval < 1:
            raise ValueError(f"sync_interval must be >= 1: {sync_interval!r}")
        if gen < 1 or next_lsn < 1:
            raise ValueError("gen and next_lsn must be >= 1")
        self.disk = disk
        self.gen = gen
        self.sync_interval = sync_interval
        self.registry = registry
        self.next_lsn = next_lsn
        #: Highest LSN appended (acknowledged or not).
        self.last_lsn = next_lsn - 1
        #: Highest LSN guaranteed durable — the acknowledgement boundary.
        self.synced_lsn = next_lsn - 1
        self._unsynced = 0
        disk.create(self.path)

    @property
    def path(self) -> str:
        return wal_path(self.gen)

    # ------------------------------------------------------------------
    def _count(self, name: str, delta: float = 1.0) -> None:
        if self.registry is not None:
            self.registry.counter(name).add(delta)

    def append(self, record: Mapping[str, Any]) -> int:
        """Append one record, stamping and returning its LSN.

        A plain dict is stamped in place (callers hand over throwaway
        dicts; copying 5k of them per poll round is measurable) — pass
        another Mapping type to keep the argument untouched.

        The record is durable (and may be acknowledged) only once
        ``synced_lsn`` reaches the returned LSN — immediately if the
        group-commit interval elapsed, else at the next ``sync``.
        """
        lsn = self.next_lsn
        stamped = record if type(record) is dict else dict(record)
        stamped["lsn"] = lsn
        data = encode_record(stamped)
        self.disk.append(self.path, data)
        self.next_lsn = lsn + 1
        self.last_lsn = lsn
        self._unsynced += 1
        self._count("wal.appends")
        self._count("wal.bytes", float(len(data)))
        if self._unsynced >= self.sync_interval:
            self.sync()
        return lsn

    def sync(self) -> None:
        """fsync the log, advancing the acknowledgement boundary."""
        if self._unsynced == 0:
            return
        self.disk.fsync(self.path)
        self.synced_lsn = self.last_lsn
        self._unsynced = 0
        self._count("wal.syncs")

    @property
    def unsynced_records(self) -> int:
        return self._unsynced

    def rotate(self) -> str:
        """Start a fresh generation file; returns the old file's path.

        Called by checkpoint *after* sealing the memtable into fsynced
        segments: every record in the old generation is then durable via
        a segment, so the old file can be deleted once the new manifest
        is live.  The acknowledgement boundary therefore jumps to
        ``last_lsn``.
        """
        old_path = self.path
        self.gen += 1
        self.synced_lsn = self.last_lsn
        self._unsynced = 0
        self.disk.create(self.path)
        self._count("wal.rotations")
        return old_path

    # ------------------------------------------------------------------
    @staticmethod
    def read_records(disk: "SimDisk", path: str) -> tuple[list[dict[str, Any]], str, str]:
        """Read every trustworthy record from a WAL file.

        Returns ``(records, tail, detail)`` — ``tail`` as in
        :func:`read_frames`, with undecodable frames folded into
        :data:`TAIL_CORRUPT`.  Missing file reads as empty and clean.
        """
        if not disk.exists(path):
            return [], TAIL_CLEAN, ""
        payloads, tail, detail = read_frames(disk.read(path))
        records, bad = decode_record_frames(payloads)
        if bad != -1:
            return records, TAIL_CORRUPT, f"frame {bad} is not a record dict"
        return records, tail, detail
