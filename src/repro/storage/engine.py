"""The durable history engine: WAL + memtable + sealed segments.

:class:`HistoryEngine` sits underneath
:class:`~repro.core.history.HistoryStore` and owns everything that
touches the :class:`~repro.storage.simdisk.SimDisk`:

* ``append_row`` — frame the row into the WAL (group commit per the
  policy's fsync interval) and keep it in a per-group memtable;
* ``append_trim`` — durably record a ``trim_older_than`` cutoff (synced
  immediately, and persisted in every later manifest so a checkpoint
  cannot resurrect trimmed rows);
* ``checkpoint`` — seal memtables into immutable segments, truncate the
  WAL, apply segment-granular retention, commit via the manifest
  protocol and garbage-collect;
* construction — run :func:`~repro.storage.recovery.recover_state`, then
  finish with a checkpoint so replayed rows regain a sealed home and
  quarantined segments leave the manifest (recovery is self-healing).

The acknowledgement boundary is ``wal.synced_lsn``: ``acked_rows`` is
the exact set of rows the engine promises will survive a crash, and the
crashtest harness holds recovery to it as an equality.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import TYPE_CHECKING, Any, Iterator

from repro.storage.checkpoint import CheckpointResult, write_manifest
from repro.storage.recovery import RecoveryReport, recover_state
from repro.storage.segments import Segment, seal_segment
from repro.storage.wal import WriteAheadLog

if TYPE_CHECKING:  # pragma: no cover
    from repro.obs.metrics import MetricsRegistry
    from repro.obs.trace import Tracer
    from repro.simnet.clock import VirtualClock
    from repro.storage.simdisk import SimDisk


class HistoryEngine:
    """Durable storage for history rows on one simulated disk."""

    def __init__(
        self,
        disk: "SimDisk",
        *,
        clock: "VirtualClock | None" = None,
        sync_interval: int = 8,
        max_rows_per_group: int = 100_000,
        retention_age: float = 0.0,
        registry: "MetricsRegistry | None" = None,
        tracer: "Tracer | None" = None,
    ) -> None:
        if max_rows_per_group < 1:
            raise ValueError(f"max_rows_per_group must be >= 1: {max_rows_per_group!r}")
        if retention_age < 0:
            raise ValueError(f"retention_age must be >= 0: {retention_age!r}")
        self.disk = disk
        self.clock = clock
        self.max_rows_per_group = max_rows_per_group
        self.retention_age = retention_age
        self.registry = registry
        self.tracer = tracer
        self.checkpoints_run = 0
        self.last_checkpoint_at: float | None = None
        self._in_checkpoint = False

        started = clock.now() if clock is not None else 0.0
        with self._span("recovery") as span:
            state = recover_state(disk)
            self.segments: dict[str, list[Segment]] = state.segments
            self._memtable: dict[str, list[tuple[int, dict[str, Any]]]] = state.memtable
            self.trim_cutoff = state.trim_cutoff
            self.next_seg_seq = state.next_seg_seq
            self._manifest_gen = self._parse_manifest_gen(state.report.manifest)
            self.wal = WriteAheadLog(
                disk,
                gen=state.wal_gen,
                next_lsn=state.next_lsn,
                sync_interval=sync_interval,
                registry=registry,
            )
            self.recovery_report: RecoveryReport = state.report
            if span is not None:
                span.annotate(
                    segments=state.report.segments_loaded,
                    replayed=state.report.wal_records_replayed,
                    quarantined=state.report.segments_quarantined,
                    wal_tail=state.report.wal_tail,
                )
        # Self-healing finish: replayed rows get sealed, quarantined
        # segments drop out of the manifest, orphans are collected.
        self.checkpoint()
        self.recovery_report.elapsed = (
            (clock.now() - started) if clock is not None else 0.0
        )
        self._count("recovery.runs")
        self._count("recovery.rows_replayed", float(self.recovery_report.wal_records_replayed))
        self._count(
            "recovery.segments_quarantined",
            float(self.recovery_report.segments_quarantined),
        )
        if self.recovery_report.wal_tail != "clean":
            self._count("recovery.truncated_tails")

    # ------------------------------------------------------------------
    @staticmethod
    def _parse_manifest_gen(path: str) -> int:
        try:
            return int(path.rpartition("-")[2])
        except ValueError:
            return 0

    def _count(self, name: str, delta: float = 1.0) -> None:
        if self.registry is not None and delta:
            self.registry.counter(name).add(delta)

    @contextmanager
    def _span(self, name: str) -> Iterator[Any]:
        if self.tracer is None:
            yield None
            return
        with self.tracer.start_trace(name) as span:
            yield span

    # ------------------------------------------------------------------
    # Writes
    # ------------------------------------------------------------------
    def append_row(self, group: str, row: dict[str, Any]) -> int:
        """WAL-append one history row; returns its LSN."""
        return self.append_rows(group, [row])

    def append_rows(self, group: str, rows: list[dict[str, Any]]) -> int:
        """WAL-append a batch of history rows as ONE framed record.

        The whole batch shares one LSN — it is acknowledged (or lost)
        atomically, which is exactly the granularity a poll result
        arrives at.  Batching is also the throughput lever: one encoded
        envelope, one CRC and one disk append per ``record()`` call
        instead of per row.

        Rows are kept by reference in the memtable (they are the same
        dicts the serving table holds), so the durable and serving
        copies can never drift between checkpoints.
        """
        if not rows:
            return self.wal.last_lsn
        lsn = self.wal.append({"kind": "rows", "group": group, "rows": rows})
        entries = self._memtable.setdefault(group, [])
        for row in rows:
            entries.append((lsn, row))
        return lsn

    def append_trim(self, cutoff: float) -> int:
        """Durably record a retention trim; synced immediately.

        Immediate sync matters: the WAL record vanishes at the next
        checkpoint's truncation, so the cutoff is also persisted in the
        manifest (``trim_cutoff``) — but between now and then, only the
        fsync keeps a crash from resurrecting trimmed rows.
        """
        lsn = self.wal.append({"kind": "trim", "cutoff": cutoff})
        self.wal.sync()
        if self.trim_cutoff is None or cutoff > self.trim_cutoff:
            self.trim_cutoff = cutoff
        for entries in self._memtable.values():
            entries[:] = [
                (lsn_, row)
                for lsn_, row in entries
                if row.get("RecordedAt") is None or row["RecordedAt"] >= cutoff
            ]
        return lsn

    def sync(self) -> None:
        """Flush the group-commit buffer (advance the ack boundary)."""
        self.wal.sync()

    # ------------------------------------------------------------------
    # Checkpoint
    # ------------------------------------------------------------------
    def checkpoint(self) -> CheckpointResult:
        """Seal memtables, truncate the WAL, retain, commit, collect.

        Re-entrant calls no-op: fsync latency advances the virtual clock,
        which can fire a periodic-checkpoint callback *inside* a running
        checkpoint.
        """
        if self._in_checkpoint:
            return CheckpointResult(wal_gen=self.wal.gen)
        self._in_checkpoint = True
        try:
            with self._span("checkpoint") as span:
                result = self._checkpoint_locked()
                if span is not None:
                    span.annotate(
                        rows_sealed=result.rows_sealed,
                        segments_written=result.segments_written,
                        segments_dropped=result.segments_dropped,
                        manifest=result.manifest_path,
                    )
                return result
        finally:
            self._in_checkpoint = False

    def _checkpoint_locked(self) -> CheckpointResult:
        result = CheckpointResult()
        # 1. Seal every non-empty memtable (sorted: deterministic seqs).
        for group in sorted(self._memtable):
            entries = self._memtable[group]
            if not entries:
                continue
            seg = seal_segment(
                self.disk, group, self.next_seg_seq, [row for _, row in entries]
            )
            self.next_seg_seq += 1
            self.segments.setdefault(group, []).append(seg)
            result.segments_written += 1
            result.rows_sealed += len(entries)
            entries.clear()
        # 2. Segment-granular retention: drop whole head segments.
        self._apply_retention(result)
        # 3-4. Rotate the WAL and commit the new manifest.
        old_wal = self.wal.rotate()
        self._manifest_gen += 1
        live = [
            seg.manifest_entry()
            for group in sorted(self.segments)
            for seg in self.segments[group]
        ]
        result.manifest_path = write_manifest(
            self.disk,
            self._manifest_gen,
            {
                "wal_gen": self.wal.gen,
                "next_lsn": self.wal.next_lsn,
                "next_seg_seq": self.next_seg_seq,
                "trim_cutoff": self.trim_cutoff,
                "segments": live,
            },
        )
        result.wal_gen = self.wal.gen
        # 5. Garbage collection — pure cleanup once CURRENT is flipped.
        self.disk.delete(old_wal)
        referenced = {seg.path for segs in self.segments.values() for seg in segs}
        for path in self.disk.list("seg/"):
            if path not in referenced:
                self.disk.delete(path)
        for path in self.disk.list("wal/"):
            if path != self.wal.path:
                self.disk.delete(path)
        for path in self.disk.list("MANIFEST-"):
            if path != result.manifest_path:
                self.disk.delete(path)
        self.checkpoints_run += 1
        if self.clock is not None:
            self.last_checkpoint_at = self.clock.now()
        self._count("checkpoint.runs")
        self._count("checkpoint.rows_sealed", float(result.rows_sealed))
        self._count("checkpoint.segments_dropped", float(result.segments_dropped))
        return result

    def _apply_retention(self, result: CheckpointResult) -> None:
        now = self.clock.now() if self.clock is not None else 0.0
        age_cutoff = now - self.retention_age if self.retention_age > 0 else None
        for group in sorted(self.segments):
            segs = self.segments[group]
            total = sum(s.row_count for s in segs)
            while segs:
                head = segs[0]
                # Rows without RecordedAt are exempt from time retention
                # (mirroring trim_older_than), so a segment holding any
                # is only droppable by ring overflow.
                time_droppable = head.max_at is not None and all(
                    r.get("RecordedAt") is not None for r in head.rows
                )
                old_by_trim = (
                    time_droppable
                    and self.trim_cutoff is not None
                    and head.max_at < self.trim_cutoff
                )
                old_by_age = (
                    time_droppable
                    and age_cutoff is not None
                    and head.max_at < age_cutoff
                )
                ring_excess = total - head.row_count >= self.max_rows_per_group
                if not (old_by_trim or old_by_age or ring_excess):
                    break
                if old_by_age and not (old_by_trim or ring_excess):
                    # Serving tables still hold these rows — the store
                    # must re-sync this group from serving_rows().
                    result.serving_dirty.add(group)
                segs.pop(0)
                total -= head.row_count
                result.segments_dropped += 1
                result.rows_dropped += head.row_count
            if not segs:
                del self.segments[group]

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def _passes_cutoff(self, row: dict[str, Any]) -> bool:
        if self.trim_cutoff is None:
            return True
        at = row.get("RecordedAt")
        return at is None or at >= self.trim_cutoff

    def serving_rows(self, group: str) -> list[dict[str, Any]]:
        """All rows the engine would serve for ``group``, oldest first.

        Sealed segment rows (trim-cutoff filtered) then memtable rows,
        bounded to the newest ``max_rows_per_group`` — the content a
        fresh :class:`HistoryStore` loads after recovery.
        """
        rows = self._collect(group, lsn_bound=None, exclude=frozenset())
        if len(rows) > self.max_rows_per_group:
            rows = rows[-self.max_rows_per_group:]
        return rows

    def acked_rows(
        self, group: str, *, exclude_segments: frozenset[str] = frozenset()
    ) -> list[dict[str, Any]]:
        """The acknowledged prefix: rows guaranteed to survive a crash.

        Memtable rows count only up to ``wal.synced_lsn``; sealed
        segments are durable by construction.  ``exclude_segments`` lets
        the crashtest oracle subtract segments it deliberately corrupted
        (their quarantine is the *expected* outcome, not a loss).
        """
        rows = self._collect(
            group, lsn_bound=self.wal.synced_lsn, exclude=exclude_segments
        )
        if len(rows) > self.max_rows_per_group:
            rows = rows[-self.max_rows_per_group:]
        return rows

    def _collect(
        self, group: str, *, lsn_bound: int | None, exclude: frozenset[str]
    ) -> list[dict[str, Any]]:
        rows: list[dict[str, Any]] = []
        for seg in self.segments.get(group, ()):
            if seg.path in exclude:
                continue
            rows.extend(r for r in seg.rows if self._passes_cutoff(r))
        for lsn, row in self._memtable.get(group, ()):
            if lsn_bound is not None and lsn > lsn_bound:
                break
            rows.append(row)
        return rows

    def groups(self) -> list[str]:
        """Every group with durable or pending rows, sorted."""
        names = set(self.segments)
        names.update(g for g, entries in self._memtable.items() if entries)
        return sorted(names)

    # ------------------------------------------------------------------
    def stats(self) -> dict[str, Any]:
        segment_rows = sum(
            seg.row_count for segs in self.segments.values() for seg in segs
        )
        memtable_rows = sum(len(entries) for entries in self._memtable.values())
        return {
            "enabled": True,
            "wal": {
                "gen": self.wal.gen,
                "next_lsn": self.wal.next_lsn,
                "synced_lsn": self.wal.synced_lsn,
                "unsynced_records": self.wal.unsynced_records,
                "sync_interval": self.wal.sync_interval,
            },
            "segments": {
                "count": sum(len(segs) for segs in self.segments.values()),
                "rows": segment_rows,
                "per_group": {
                    group: {"segments": len(segs), "rows": sum(s.row_count for s in segs)}
                    for group, segs in sorted(self.segments.items())
                },
            },
            "memtable_rows": memtable_rows,
            "trim_cutoff": self.trim_cutoff,
            "checkpoints_run": self.checkpoints_run,
            "last_checkpoint_at": self.last_checkpoint_at,
            "recovery": self.recovery_report.as_dict(),
            "disk": self.disk.stats.as_dict(),
        }
