"""Durable storage substrate for the gateway's historical database.

The paper keeps "historical data ... in the Gateway's internal database";
until this package existed that database was a pure in-memory ring and a
gateway restart lost every sample.  :mod:`repro.storage` adds the
durability substrate underneath :class:`~repro.core.history.HistoryStore`:

* :mod:`repro.storage.simdisk` — a deterministic simulated disk on the
  virtual clock with write/fsync latency and torn-write-on-crash
  semantics;
* :mod:`repro.storage.wal` — a checksummed, record-oriented write-ahead
  log with policy-tunable group commit;
* :mod:`repro.storage.segments` — sealed, immutable, time-partitioned
  history segments (one per GLUE group per checkpoint);
* :mod:`repro.storage.checkpoint` — the manifest/CURRENT checkpoint
  protocol that truncates the WAL and applies segment-granular retention;
* :mod:`repro.storage.recovery` — crash recovery: load the manifest's
  segments (quarantining corrupt ones), replay the committed WAL suffix,
  stop cleanly at torn/corrupt tails;
* :mod:`repro.storage.engine` — :class:`HistoryEngine`, the orchestrator
  the :class:`~repro.core.history.HistoryStore` talks to.

The headline invariant (checked by ``python -m repro crashtest`` on every
seeded crash): the recovered store equals the pre-crash *acknowledged*
prefix — no acked row lost, no torn or corrupt record ever served.
"""

from repro.storage.engine import HistoryEngine
from repro.storage.recovery import RecoveryReport
from repro.storage.simdisk import SimDisk
from repro.storage.wal import WriteAheadLog

__all__ = ["HistoryEngine", "RecoveryReport", "SimDisk", "WriteAheadLog"]
