"""Deterministic simulated disk with torn-write crash semantics.

The durability stack needs a device model that is honest about the two
things real disks do to you: writes cost time, and un-fsynced data does
not survive a crash.  :class:`SimDisk` is that model, on the virtual
clock so experiments stay deterministic:

* ``append``/``replace`` buffer data in a per-file *pending* set and
  charge ``write_latency``;
* ``fsync`` moves pending data into the *synced* (durable) image and
  charges ``fsync_latency``;
* ``crash`` discards everything pending — except, optionally, a
  *strictly partial* prefix of the first pending append per file (a torn
  write), chosen by the caller's seeded RNG.

Simplifications, stated so nobody mistakes them for guarantees:

* file creation, deletion and rename are atomic and immediately durable
  (standing in for write + directory fsync);
* the device never persists or reorders writes that were not fsynced —
  at most a torn fragment of the *first* in-flight append survives a
  crash, later in-flight appends are wholly lost.  This makes "recovered
  state == synced prefix" an exact equality the crashtest harness can
  assert, rather than a lower bound.

``flip_bit`` corrupts one bit of the durable image — the chaos plane's
model of bit rot on a sealed segment.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover
    from repro.simnet.clock import VirtualClock


@dataclass
class DiskStats:
    """Operation counters for one :class:`SimDisk`."""

    writes: int = 0
    bytes_written: int = 0
    fsyncs: int = 0
    reads: int = 0
    bytes_read: int = 0
    deletes: int = 0
    renames: int = 0
    crashes: int = 0
    pending_chunks_lost: int = 0
    torn_bytes_kept: int = 0
    bit_flips: int = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "writes": self.writes,
            "bytes_written": self.bytes_written,
            "fsyncs": self.fsyncs,
            "reads": self.reads,
            "bytes_read": self.bytes_read,
            "deletes": self.deletes,
            "renames": self.renames,
            "crashes": self.crashes,
            "pending_chunks_lost": self.pending_chunks_lost,
            "torn_bytes_kept": self.torn_bytes_kept,
            "bit_flips": self.bit_flips,
        }


@dataclass
class _FileState:
    """One file: durable image + not-yet-fsynced mutations.

    ``synced`` is a bytearray so fsync extends it in place — amortized
    O(chunk), not O(file); the WAL fsyncs the same growing file on every
    group commit, and rebuilding the whole image each time turns an
    append-only log quadratic.
    """

    synced: bytearray = field(default_factory=bytearray)
    #: Appends since the last fsync, in write order.
    pending: list[bytes] = field(default_factory=list)
    #: Full-content replacement since the last fsync (``replace``), if any.
    #: A pending replace supersedes the synced image for reads but is lost
    #: on crash, which is what makes the CURRENT-pointer flip need fsync.
    replaced: Optional[bytes] = None

    def view(self) -> bytes:
        base = self.synced if self.replaced is None else self.replaced
        if not self.pending:
            return bytes(base)
        return bytes(base) + b"".join(self.pending)


class SimDisk:
    """A deterministic block of files with write/fsync latency and crashes."""

    def __init__(
        self,
        *,
        clock: "VirtualClock | None" = None,
        write_latency: float = 0.0,
        fsync_latency: float = 0.0,
        read_latency: float = 0.0,
    ) -> None:
        if min(write_latency, fsync_latency, read_latency) < 0:
            raise ValueError("disk latencies must be >= 0")
        self.clock = clock
        self.write_latency = write_latency
        self.fsync_latency = fsync_latency
        self.read_latency = read_latency
        self.stats = DiskStats()
        self._files: dict[str, _FileState] = {}

    # ------------------------------------------------------------------
    def _charge(self, latency: float) -> None:
        if self.clock is not None and latency > 0:
            self.clock.advance(latency)

    def _state(self, path: str) -> _FileState:
        try:
            return self._files[path]
        except KeyError:
            raise FileNotFoundError(path) from None

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def create(self, path: str) -> None:
        """Ensure ``path`` exists (empty, durable).  Idempotent."""
        if not path:
            raise ValueError("empty path")
        self._files.setdefault(path, _FileState())

    def append(self, path: str, data: bytes) -> None:
        """Buffer ``data`` at the end of ``path`` (durable only after fsync)."""
        state = self._state(path)
        self._charge(self.write_latency)
        state.pending.append(bytes(data))
        self.stats.writes += 1
        self.stats.bytes_written += len(data)

    def replace(self, path: str, data: bytes) -> None:
        """Buffer a full-content rewrite of ``path`` (creating it if absent)."""
        self._files.setdefault(path, _FileState())
        state = self._files[path]
        self._charge(self.write_latency)
        state.replaced = bytes(data)
        state.pending.clear()
        self.stats.writes += 1
        self.stats.bytes_written += len(data)

    def fsync(self, path: str) -> None:
        """Make everything written to ``path`` so far durable."""
        state = self._state(path)
        self._charge(self.fsync_latency)
        if state.replaced is not None:
            state.synced = bytearray(state.replaced)
            state.replaced = None
        for chunk in state.pending:
            state.synced += chunk
        state.pending.clear()
        self.stats.fsyncs += 1

    def delete(self, path: str) -> None:
        """Remove ``path`` (atomic + immediately durable).  Idempotent."""
        if self._files.pop(path, None) is not None:
            self.stats.deletes += 1

    def rename(self, old: str, new: str) -> None:
        """Move ``old`` to ``new`` (atomic + immediately durable)."""
        state = self._state(old)
        del self._files[old]
        self._files[new] = state
        self.stats.renames += 1

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    def exists(self, path: str) -> bool:
        return path in self._files

    def read(self, path: str) -> bytes:
        """Current contents of ``path`` (synced + pending view)."""
        state = self._state(path)
        self._charge(self.read_latency)
        data = state.view()
        self.stats.reads += 1
        self.stats.bytes_read += len(data)
        return data

    def size(self, path: str) -> int:
        return len(self._state(path).view())

    def list(self, prefix: str = "") -> list[str]:
        """Sorted paths starting with ``prefix``."""
        return sorted(p for p in self._files if p.startswith(prefix))

    def total_bytes(self) -> int:
        return sum(len(s.view()) for s in self._files.values())

    # ------------------------------------------------------------------
    # Faults
    # ------------------------------------------------------------------
    def crash(self, rng: random.Random | None = None) -> dict[str, int]:
        """Power loss: drop all un-fsynced data, possibly leaving torn tails.

        For each file with pending appends, a seeded ``rng`` keeps a
        strictly partial prefix (0 to len-1 bytes) of the *first* pending
        append; later pending appends are wholly lost.  Without an
        ``rng`` the cut is clean (no torn bytes).  Pending replaces are
        always lost.  Returns ``{"chunks_lost": n, "torn_bytes": m}``.
        """
        chunks_lost = 0
        torn_bytes = 0
        for state in self._files.values():
            if state.replaced is not None:
                state.replaced = None
                chunks_lost += 1
            if state.pending:
                chunks_lost += len(state.pending)
                first = state.pending[0]
                if rng is not None and len(first) > 1:
                    keep = rng.randrange(0, len(first))
                    if keep:
                        state.synced += first[:keep]
                        torn_bytes += keep
                state.pending.clear()
        self.stats.crashes += 1
        self.stats.pending_chunks_lost += chunks_lost
        self.stats.torn_bytes_kept += torn_bytes
        return {"chunks_lost": chunks_lost, "torn_bytes": torn_bytes}

    def flip_bit(
        self, path: str, *, bit: int | None = None, rng: random.Random | None = None
    ) -> int:
        """Flip one bit of the durable image of ``path`` (bit rot).

        ``bit`` is an absolute bit offset; when None a seeded ``rng``
        picks one uniformly.  Returns the flipped bit offset.  Raises
        ``ValueError`` on an empty file (nothing to corrupt).
        """
        state = self._state(path)
        if not state.synced:
            raise ValueError(f"cannot flip a bit of empty file {path!r}")
        if bit is None:
            if rng is None:
                raise ValueError("flip_bit needs either bit= or rng=")
            bit = rng.randrange(0, len(state.synced) * 8)
        if not 0 <= bit < len(state.synced) * 8:
            raise ValueError(f"bit offset {bit} out of range for {path!r}")
        state.synced[bit // 8] ^= 1 << (bit % 8)
        self.stats.bit_flips += 1
        return bit
