"""Checkpoint manifest protocol (CURRENT → MANIFEST-<gen>).

A checkpoint makes the memtable durable *outside* the WAL so the WAL can
be truncated.  The commit protocol is the classic LevelDB shape:

1. seal every non-empty memtable into segment files and ``fsync`` them;
2. rotate the WAL to a fresh generation file;
3. write ``MANIFEST-<gen>`` — a single CRC-framed JSON document naming
   the new WAL generation, the next LSN/segment sequence, the retention
   cutoff and every live segment — and ``fsync`` it;
4. point the ``CURRENT`` file at the new manifest and ``fsync`` that;
5. garbage-collect the old WAL generation, dropped segments and stale
   manifests.

A crash anywhere before step 4's fsync leaves ``CURRENT`` at the old
manifest, whose WAL generation still holds every record the new
segments were sealed from — recovery replays it and nothing is lost;
the step-1/2 files are orphans the next checkpoint's GC removes.  After
step 4 the new manifest is authoritative and step 5 is pure cleanup.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro.storage.wal import TAIL_CLEAN, frame, read_frames

if TYPE_CHECKING:  # pragma: no cover
    from repro.storage.simdisk import SimDisk

#: The pointer file naming the live manifest.
CURRENT_PATH = "CURRENT"


class ManifestError(Exception):
    """A manifest file failed its CRC or structural checks."""


def manifest_path(gen: int) -> str:
    return f"MANIFEST-{gen:06d}"


@dataclass
class CheckpointResult:
    """What one checkpoint run did (for stats, spans and tests)."""

    segments_written: int = 0
    rows_sealed: int = 0
    segments_dropped: int = 0
    rows_dropped: int = 0
    #: Groups whose serving tables must re-sync because age retention
    #: dropped sealed rows that were still being served.
    serving_dirty: set[str] = field(default_factory=set)
    manifest_path: str = ""
    wal_gen: int = 0

    def as_dict(self) -> dict[str, Any]:
        return {
            "segments_written": self.segments_written,
            "rows_sealed": self.rows_sealed,
            "segments_dropped": self.segments_dropped,
            "rows_dropped": self.rows_dropped,
            "serving_dirty": sorted(self.serving_dirty),
            "manifest_path": self.manifest_path,
            "wal_gen": self.wal_gen,
        }


def write_manifest(disk: "SimDisk", gen: int, document: dict[str, Any]) -> str:
    """Write ``MANIFEST-<gen>`` and flip ``CURRENT`` to it (steps 3-4)."""
    path = manifest_path(gen)
    payload = json.dumps(document, separators=(",", ":")).encode("utf-8")
    disk.replace(path, frame(payload))
    disk.fsync(path)
    disk.replace(CURRENT_PATH, path.encode("utf-8"))
    disk.fsync(CURRENT_PATH)
    return path


def read_manifest(disk: "SimDisk", path: str) -> dict[str, Any]:
    """Decode one manifest, raising :class:`ManifestError` on damage."""
    if not disk.exists(path):
        raise ManifestError(f"{path}: no such manifest")
    payloads, tail, detail = read_frames(disk.read(path))
    if tail != TAIL_CLEAN or len(payloads) != 1:
        raise ManifestError(
            f"{path}: bad frame ({detail or f'{len(payloads)} frames, tail {tail}'})"
        )
    try:
        doc = json.loads(payloads[0].decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as exc:
        raise ManifestError(f"{path}: undecodable payload: {exc}") from exc
    if not isinstance(doc, dict) or not isinstance(doc.get("segments"), list):
        raise ManifestError(f"{path}: payload is not a manifest document")
    return doc


def current_manifest(disk: "SimDisk") -> str | None:
    """The manifest ``CURRENT`` points at, or None on a fresh disk."""
    if not disk.exists(CURRENT_PATH):
        return None
    name = disk.read(CURRENT_PATH).decode("utf-8", errors="replace").strip()
    return name or None
