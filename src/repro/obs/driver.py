"""The self-monitoring driver: the monitor monitors itself.

R-GMA's stance — *everything* is a queryable relation — applied to the
gateway's own telemetry: :class:`GatewayMetricsDriver` is a regular DDK
driver (``grm://`` protocol) whose "agent" is the in-process
:class:`~repro.obs.metrics.MetricsRegistry`.  It goes through the normal
stack — DriverManager selection, connection pool, GLUE mapping,
SQL execution — so

    SELECT Name, Value FROM GatewayMetrics WHERE Name LIKE 'requests.%'

against ``jdbc:grm://localhost/gateway`` behaves exactly like any other
GLUE query, including being cacheable, history-recorded and traceable.
Probing costs zero network traffic: the registry lives in the gateway
process, so the driver answers liveness locally.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro.dbapi.url import JdbcUrl
from repro.drivers.base import GridRmConnection, GridRmDriver
from repro.glue.mapping import GroupMapping, MappingRule, SchemaMapping
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import NO_TRACER
from repro.simnet.network import Network
from repro.sql import ast_nodes as sql_ast

if TYPE_CHECKING:  # pragma: no cover
    from repro.obs.trace import Tracer

#: Nominal port for the in-process metrics endpoint (never dialled).
GRM_PORT = 9100


class GatewayMetricsDriver(GridRmDriver):
    """Serves the gateway's own :class:`MetricsRegistry` as the
    ``GatewayMetrics`` GLUE group."""

    protocol = "grm"
    default_port = GRM_PORT
    display_name = "JDBC-GRM (self-monitor)"

    def __init__(
        self,
        network: Network,
        *,
        gateway_host: str = "gateway",
        registry: "MetricsRegistry | None" = None,
        tracer: "Tracer | None" = None,
        site: str = "",
    ) -> None:
        super().__init__(network, gateway_host=gateway_host)
        self.registry = registry if registry is not None else MetricsRegistry()
        self.tracer = tracer if tracer is not None else NO_TRACER
        self.site = site

    def build_mapping(self) -> SchemaMapping:
        return SchemaMapping(
            self.display_name,
            [
                GroupMapping(
                    "GatewayMetrics",
                    [
                        MappingRule("HostName", "_host"),
                        MappingRule("SiteName", "_site"),
                        MappingRule("Timestamp", "_time"),
                        MappingRule("Name", "name"),
                        MappingRule("Kind", "kind"),
                        MappingRule("Value", "value"),
                        MappingRule("Count", "count"),
                        MappingRule("P50", "p50"),
                        MappingRule("P95", "p95"),
                        MappingRule("P99", "p99"),
                    ],
                ),
            ],
        )

    # ------------------------------------------------------------------
    def probe(self, url: JdbcUrl, *, timeout: float = 1.0) -> bool:
        """Liveness is local: the registry is in-process, so the probe
        answers without any agent round-trip."""
        self.stats["probes"] += 1
        return url.host in ("localhost", self.gateway_host)

    def fetch_group(
        self,
        connection: GridRmConnection,
        group: str,
        select: sql_ast.Select,
    ) -> list[dict[str, Any]]:
        self.stats["fetches"] += 1
        host = self.gateway_host
        site = self.site or (
            self.network.site_of(host) if self.network.has_host(host) else None
        )
        now = self.network.clock.now()
        with self.tracer.span("metrics.scan", instruments=len(self.registry)) as span:
            rows = list(self.registry.as_rows())
            # Fabric-wide ``net.*`` counters live in the network's own
            # registry; fold them in unless they are one and the same.
            if self.network.metrics is not self.registry:
                rows.extend(self.network.metrics.as_rows())
            records = []
            for row in rows:
                record = dict(row)
                record["_host"] = host
                record["_site"] = site
                record["_time"] = now
                records.append(record)
            span["rows"] = len(records)
            self.registry.counter("obs.self_scans").inc()
        return records
