"""Structural invariants over finished traces.

These are the properties a correct query path cannot help but satisfy,
independent of workload or fault schedule — which makes them ideal
chaos-soak assertions: :func:`check_trace` is run by the test harness
(`tests/test_trace_invariants.py`) *and* per-round by
:func:`repro.chaos.run_chaos`, so any future change to the dispatch or
retry machinery that warps a span tree fails loudly in both places.

Checked per trace:

1. **Closure** — every span has an end; nothing leaks open past the
   root's exit.
2. **Ordering** — no span ends before it starts.
3. **Containment** — a child starts no earlier than its parent, and
   ends no later than its parent *unless* it (or an ancestor) is
   ``cancelled``: a hedge loser is abandoned mid-flight, so its branch
   legitimately outlives the parent that stopped waiting for it.
4. **Hedge accounting** — of N ``hedge`` spans under one parent,
   exactly N−1 are cancelled (one winner per race).
5. **Attempt accounting** — a ``source`` span's ``attempts`` attribute
   equals its number of ``attempt``/``hedge``-child attempts.
6. **Deadline blame** — a ``deadline_exceeded`` span names the hop
   that spent the budget in its ``error``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.obs.trace import Span, Trace, Tracer

#: Tolerance for float comparisons of virtual-clock instants.
_EPS = 1e-9


def _in_cancelled_subtree(span: "Span", parents: "dict[int, Span]") -> bool:
    node: "Span | None" = span
    while node is not None:
        if node.status == "cancelled":
            return True
        node = parents.get(node.span_id)
    return False


def check_trace(trace: "Trace") -> list[str]:
    """All invariant violations in one trace (empty list == healthy)."""
    violations: list[str] = []

    def where(span: "Span") -> str:
        return f"{trace.trace_id}/{span.span_id}:{span.name}"

    parents: dict[int, Span] = {}
    for span in trace.spans:
        for child in span.children:
            parents[child.span_id] = span

    for span in trace.spans:
        if span.end is None:
            violations.append(f"{where(span)}: span never closed")
            continue
        if span.end < span.start - _EPS:
            violations.append(
                f"{where(span)}: ends before it starts "
                f"({span.end:.6f} < {span.start:.6f})"
            )
        parent = parents.get(span.span_id)
        if parent is not None:
            if span.start < parent.start - _EPS:
                violations.append(
                    f"{where(span)}: starts before parent {parent.name} "
                    f"({span.start:.6f} < {parent.start:.6f})"
                )
            if (
                parent.end is not None
                and span.end > parent.end + _EPS
                and not _in_cancelled_subtree(span, parents)
            ):
                violations.append(
                    f"{where(span)}: outlives parent {parent.name} "
                    f"({span.end:.6f} > {parent.end:.6f}) without being cancelled"
                )
        if span.status == "deadline_exceeded" and not span.error:
            violations.append(
                f"{where(span)}: deadline exceeded but no spending hop named"
            )

    for span in trace.spans:
        hedges = [c for c in span.children if c.name == "hedge"]
        if hedges:
            cancelled = sum(1 for c in hedges if c.status == "cancelled")
            if cancelled != len(hedges) - 1:
                violations.append(
                    f"{where(span)}: {len(hedges)} hedged attempts but "
                    f"{cancelled} cancelled (want exactly one winner)"
                )
        if span.name == "source" and "attempts" in span.attrs:
            tries = [c for c in span.children if c.name == "attempt"]
            if tries and len(tries) != span.attrs["attempts"]:
                violations.append(
                    f"{where(span)}: {len(tries)} attempt spans but "
                    f"attempts={span.attrs['attempts']}"
                )

    return violations


def check_tracer(tracer: "Tracer") -> list[str]:
    """Violations across every finished trace a tracer holds."""
    violations: list[str] = []
    for trace in tracer.traces():
        violations.extend(check_trace(trace))
    return violations
