"""Observability plane: tracing, metrics, and the self-monitoring driver.

The paper's premise is homogeneous visibility into heterogeneous
resources; this package turns that lens back on the gateway itself:

* :mod:`repro.obs.metrics` — a :class:`MetricsRegistry` of counters,
  gauges and virtual-clock histograms that the managers' ad-hoc ``stats``
  dicts migrate onto (behind :class:`StatsView` so old key names keep
  working);
* :mod:`repro.obs.trace` — a :class:`Tracer` producing one span per hop
  of the query path, threaded along the same route the ``Deadline``
  travels;
* :mod:`repro.obs.invariants` — structural checks over finished traces
  (every span closed, child intervals within parents, hedged losers
  cancelled), shared by the chaos harness and the test suite;
* :mod:`repro.obs.driver` — the ``grm://`` self-monitoring driver that
  publishes the registry as the ``GatewayMetrics`` GLUE group, so
  ``SELECT * FROM GatewayMetrics`` works like any other query.
"""

from repro.obs.invariants import check_trace, check_tracer
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    StatsView,
)
from repro.obs.trace import NO_TRACER, NULL_SPAN, Span, Trace, Tracer

# NOTE: repro.obs.driver (GatewayMetricsDriver) is deliberately NOT
# imported here — it pulls in the DDK stack, which itself depends on
# this package; import it as repro.obs.driver where needed.

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "StatsView",
    "NO_TRACER",
    "NULL_SPAN",
    "Span",
    "Trace",
    "Tracer",
    "check_trace",
    "check_tracer",
]
