"""Hop-by-hop query tracing on the virtual clock.

A :class:`Tracer` rides the same path the ``Deadline`` already travels:
the gateway opens a trace per query, every hop (fan-out, source fetch,
retry attempt, hedge, pool acquire, driver connect, native round-trip,
GMA wire) opens a child span, and the finished trace trees are kept in
a bounded ring for the console ``trace_panel``, the servlet
``GET /trace/<qid>``, and the ``python -m repro trace`` CLI.

Everything is deterministic: trace ids are ``q1, q2, ...`` in start
order, span ids count up per trace, and all timestamps come from the
:class:`~repro.simnet.clock.VirtualClock` — so a seeded scenario
renders a byte-identical trace tree every run (the golden-trace test
holds this to the same discipline as the chaos replay signature).

Concurrency note: branches of a :class:`~repro.simnet.clock.ConcurrentScope`
execute sequentially on a rewound clock, so a simple span stack yields
correct nesting even for fan-outs.  The one wrinkle is hedging — the
dispatcher abandons the losing attempt *after* its branch already ran,
so a loser's span can end later than its parent; such spans are marked
``cancelled`` and the invariant checker exempts them from parent-end
containment.
"""

from __future__ import annotations

from collections import deque
from contextlib import contextmanager
from typing import TYPE_CHECKING, Any, Iterator

if TYPE_CHECKING:  # pragma: no cover
    from repro.simnet.clock import VirtualClock


def _is_deadline_error(exc: BaseException) -> bool:
    # Imported lazily: repro.core imports this module (via the Gateway),
    # so a module-level import here would be circular.  By the time a
    # DeadlineExceededError is in flight, repro.core.errors is loaded.
    try:
        from repro.core.errors import DeadlineExceededError
    except ImportError:  # pragma: no cover
        return False
    return isinstance(exc, DeadlineExceededError)

#: Span statuses, in the order the renderer abbreviates them.
STATUSES = ("ok", "error", "deadline_exceeded", "cancelled")


class Span:
    """One hop of one query: a named, attributed time interval."""

    __slots__ = (
        "span_id",
        "name",
        "parent_id",
        "start",
        "end",
        "status",
        "error",
        "attrs",
        "children",
    )

    def __init__(
        self, span_id: int, name: str, parent_id: "int | None", start: float
    ) -> None:
        self.span_id = span_id
        self.name = name
        self.parent_id = parent_id
        self.start = start
        self.end: float | None = None
        self.status = "ok"
        self.error = ""
        self.attrs: dict[str, Any] = {}
        self.children: list[Span] = []

    @property
    def closed(self) -> bool:
        return self.end is not None

    @property
    def duration(self) -> float:
        return (self.end - self.start) if self.end is not None else 0.0

    def annotate(self, **attrs: Any) -> None:
        self.attrs.update(attrs)

    def __setitem__(self, key: str, value: Any) -> None:
        self.attrs[key] = value

    def cancel(self) -> None:
        """Mark this span an abandoned loser (hedge that lost the race).

        Cancelled spans — and their subtrees — are exempt from the
        parent-end containment invariant.
        """
        self.status = "cancelled"

    def fail(self, error: BaseException | str, *, status: str = "error") -> None:
        self.status = status
        self.error = str(error)

    def __repr__(self) -> str:
        return (
            f"Span({self.span_id}, {self.name!r}, status={self.status!r}, "
            f"start={self.start!r}, end={self.end!r})"
        )


class _NullSpan:
    """No-op span handed out when tracing is off or no trace is open."""

    __slots__ = ()
    span_id = 0
    name = "null"
    parent_id = None
    start = 0.0
    end = 0.0
    status = "ok"
    error = ""
    closed = True
    duration = 0.0

    @property
    def attrs(self) -> dict[str, Any]:
        return {}

    @property
    def children(self) -> "list[Span]":
        return []

    def annotate(self, **attrs: Any) -> None:
        pass

    def __setitem__(self, key: str, value: Any) -> None:
        pass

    def cancel(self) -> None:
        pass

    def fail(self, error: BaseException | str, *, status: str = "error") -> None:
        pass

    def __repr__(self) -> str:
        return "NULL_SPAN"


NULL_SPAN = _NullSpan()


class Trace:
    """One query's finished (or in-flight) span tree."""

    def __init__(self, trace_id: str, name: str) -> None:
        self.trace_id = trace_id
        self.name = name
        self.spans: list[Span] = []
        self.remote_parent: dict[str, Any] | None = None

    @property
    def root(self) -> "Span | None":
        return self.spans[0] if self.spans else None

    @property
    def duration(self) -> float:
        root = self.root
        return root.duration if root is not None else 0.0

    def find_span(self, ref: "int | str") -> "Span | None":
        """A span by id, or the first (document-order) span by name."""
        for span in self.spans:
            if span.span_id == ref or span.name == ref:
                return span
        return None

    def walk(self) -> Iterator[tuple[Span, int]]:
        """Depth-first (span, depth) pairs from the root."""
        root = self.root
        if root is None:
            return
        stack: list[tuple[Span, int]] = [(root, 0)]
        while stack:
            span, depth = stack.pop()
            yield span, depth
            for child in reversed(span.children):
                stack.append((child, depth + 1))

    @staticmethod
    def _fmt_value(value: Any) -> str:
        if isinstance(value, bool) or value is None:
            return str(value)
        if isinstance(value, float):
            return format(value, ".6f")
        return str(value)

    def render(self) -> str:
        """Deterministic ASCII tree; byte-identical for a fixed seed.

        Times are relative to the root span's start and printed with
        fixed precision; attributes are sorted by key.
        """
        root = self.root
        header = f"trace {self.trace_id} · {self.name}"
        if root is None:
            return header + " (empty)\n"
        base = root.start
        lines = [f"{header} · {self.duration:.6f}s"]

        def describe(span: Span) -> str:
            end = span.end if span.end is not None else span.start
            parts = [
                span.name,
                f"[{span.start - base:+.6f}s → {end - base:+.6f}s]",
            ]
            if span.status != "ok":
                parts.append(f"!{span.status}")
            if not span.closed:
                parts.append("!open")
            for key in sorted(span.attrs):
                parts.append(f"{key}={self._fmt_value(span.attrs[key])}")
            if span.error:
                parts.append(f"error={span.error}")
            return " ".join(parts)

        def walk(span: Span, prefix: str) -> None:
            for i, child in enumerate(span.children):
                last = i == len(span.children) - 1
                branch = "└─ " if last else "├─ "
                lines.append(prefix + branch + describe(child))
                walk(child, prefix + ("   " if last else "│  "))

        lines.append(describe(root))
        walk(root, "")
        return "\n".join(lines) + "\n"

    def __repr__(self) -> str:
        return f"Trace({self.trace_id!r}, {self.name!r}, spans={len(self.spans)})"


class _Frame:
    """One active trace plus its open-span stack."""

    __slots__ = ("trace", "stack")

    def __init__(self, trace: Trace) -> None:
        self.trace = trace
        self.stack: list[Span] = []


class Tracer:
    """Mints traces and spans for one gateway.

    A stack of frames supports nested traces: ``query_batch`` members
    and alert polls fired by scheduled callbacks each start their own
    trace while an outer one is still open.
    """

    def __init__(
        self,
        clock: "VirtualClock | None" = None,
        *,
        enabled: bool = True,
        max_traces: int = 256,
    ) -> None:
        self.clock = clock
        self.enabled = enabled
        self.max_traces = max_traces
        self._frames: list[_Frame] = []
        self._finished: deque[Trace] = deque(maxlen=max_traces)
        self._next_trace = 1

    def _now(self) -> float:
        return self.clock.now() if self.clock is not None else 0.0

    @property
    def active(self) -> bool:
        return self.enabled and bool(self._frames)

    def current_span(self) -> "Span | _NullSpan":
        if not self._frames or not self._frames[-1].stack:
            return NULL_SPAN
        return self._frames[-1].stack[-1]

    def current_trace(self) -> "Trace | None":
        return self._frames[-1].trace if self._frames else None

    def context(self) -> "dict[str, Any] | None":
        """Wire-portable span context for the GMA message envelope."""
        if not self._frames or not self._frames[-1].stack:
            return None
        frame = self._frames[-1]
        return {"trace": frame.trace.trace_id, "span": frame.stack[-1].span_id}

    @contextmanager
    def start_trace(
        self,
        name: str,
        *,
        remote_parent: "dict[str, Any] | None" = None,
        **attrs: Any,
    ) -> Iterator["Span | _NullSpan"]:
        """Open a new trace whose root span covers the ``with`` body."""
        if not self.enabled:
            yield NULL_SPAN
            return
        trace = Trace(f"q{self._next_trace}", name)
        self._next_trace += 1
        trace.remote_parent = remote_parent
        frame = _Frame(trace)
        root = Span(1, name, None, self._now())
        root.attrs.update(attrs)
        if remote_parent:
            root.attrs.setdefault("remote_trace", remote_parent.get("trace"))
            root.attrs.setdefault("remote_span", remote_parent.get("span"))
        trace.spans.append(root)
        frame.stack.append(root)
        self._frames.append(frame)
        try:
            yield root
        except Exception as exc:
            if root.status == "ok":
                status = "deadline_exceeded" if _is_deadline_error(exc) else "error"
                root.fail(exc, status=status)
            raise
        finally:
            self._close_frame(frame)

    def _close_frame(self, frame: _Frame) -> None:
        now = self._now()
        # Close any spans left open by a non-local exit, root last.
        while frame.stack:
            span = frame.stack.pop()
            if span.end is None:
                span.end = now
        if self._frames and self._frames[-1] is frame:
            self._frames.pop()
        else:  # pragma: no cover - defensive; frames unwind LIFO
            self._frames = [f for f in self._frames if f is not frame]
        self._finished.append(frame.trace)

    @contextmanager
    def span(self, name: str, **attrs: Any) -> Iterator["Span | _NullSpan"]:
        """Open a child span of the innermost open span."""
        if not self.enabled or not self._frames:
            yield NULL_SPAN
            return
        frame = self._frames[-1]
        parent = frame.stack[-1] if frame.stack else None
        span = Span(
            len(frame.trace.spans) + 1,
            name,
            parent.span_id if parent is not None else None,
            self._now(),
        )
        span.attrs.update(attrs)
        frame.trace.spans.append(span)
        if parent is not None:
            parent.children.append(span)
        frame.stack.append(span)
        try:
            yield span
        except Exception as exc:
            if span.status == "ok":
                status = "deadline_exceeded" if _is_deadline_error(exc) else "error"
                span.fail(exc, status=status)
            raise
        finally:
            if span.end is None:
                span.end = self._now()
            if frame.stack and frame.stack[-1] is span:
                frame.stack.pop()
            elif span in frame.stack:  # pragma: no cover - defensive
                frame.stack.remove(span)

    # -- finished-trace access -------------------------------------------

    def traces(self) -> list[Trace]:
        return list(self._finished)

    def last(self) -> "Trace | None":
        return self._finished[-1] if self._finished else None

    def get(self, trace_id: str) -> "Trace | None":
        for trace in self._finished:
            if trace.trace_id == trace_id:
                return trace
        return None

    def clear(self) -> None:
        self._finished.clear()


#: Shared disabled tracer for components constructed standalone.
NO_TRACER = Tracer(enabled=False)
