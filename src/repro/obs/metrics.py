"""Metrics registry: counters, gauges and virtual-clock histograms.

One :class:`MetricsRegistry` per gateway gathers every manager's
telemetry under dotted names (``requests.queries``, ``pool.reused``,
``dispatch.hedges_fired`` ...).  The managers keep their historical
``stats`` interfaces — dict-shaped for the request/connection/driver
managers, attribute-shaped for dispatch and network — as
:class:`StatsView` compatibility views over registry counters, so
existing tests and console panels read the same keys they always did
while the self-monitoring driver (:mod:`repro.obs.driver`) serves the
very same instruments as the ``GatewayMetrics`` GLUE group.

Histograms are geometric-bucketed (four buckets per doubling), which
buys two properties the test suite leans on:

* **merge associativity** — merging is bucket-wise addition, so
  ``(a | b) | c`` and ``a | (b | c)`` agree exactly on every quantile;
* **bounded quantiles** — a reported quantile is a bucket upper bound
  clamped into ``[min, max]``, so ``min <= p50 <= p95 <= p99 <= max``
  always holds and ``quantile(100) == max`` exactly.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Any, Iterator, MutableMapping

from repro.analysis import races

if TYPE_CHECKING:  # pragma: no cover
    from repro.simnet.clock import VirtualClock

#: Histogram bucket growth factor: four buckets per doubling keeps the
#: worst-case quantile overestimate below 19%.
_GROWTH = 2.0 ** 0.25

_LOG_GROWTH = math.log(_GROWTH)


class Counter:
    """A monotone counter.  ``add`` refuses negative deltas; the only
    way down is an explicit :meth:`reset` (benchmark bookkeeping)."""

    __slots__ = ("name", "_value")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value: float = 0

    @property
    def value(self) -> float:
        return self._value

    def inc(self) -> None:
        self._value += 1
        if races.ACTIVE is not None:
            races.ACTIVE.note("metrics.counter", self.name, "w", site="Counter.inc")

    def add(self, delta: float) -> None:
        if delta < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease: {delta!r}")
        self._value += delta
        if races.ACTIVE is not None:
            races.ACTIVE.note("metrics.counter", self.name, "w", site="Counter.add")

    def reset(self) -> None:
        self._value = 0

    def __repr__(self) -> str:
        return f"Counter({self.name!r}, value={self._value!r})"


class Gauge:
    """A point-in-time value (pool size, breaker count, ...)."""

    __slots__ = ("name", "_value")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value: float = 0

    @property
    def value(self) -> float:
        return self._value

    def set(self, value: float) -> None:
        self._value = value
        if races.ACTIVE is not None:
            races.ACTIVE.note(
                "metrics.gauge", self.name, "w",
                digest=repr(value), site="Gauge.set",
            )

    def add(self, delta: float) -> None:
        self._value += delta
        if races.ACTIVE is not None:
            # Deltas commute (in-flight up/down ticks from sibling
            # branches are fine); only absolute set() is last-write-wins.
            races.ACTIVE.note(
                "metrics.gauge.delta", self.name, "w", site="Gauge.add"
            )

    def __repr__(self) -> str:
        return f"Gauge({self.name!r}, value={self._value!r})"


class Histogram:
    """Geometric-bucketed histogram of non-negative samples.

    Samples land in bucket ``ceil(log(v) / log(growth))`` (zeros in a
    dedicated bucket), so recording is O(1) and merging two histograms
    is exact bucket-wise addition.  Quantiles walk the buckets to the
    requested rank and report that bucket's upper bound, clamped into
    ``[min, max]`` of the observed samples.
    """

    __slots__ = ("name", "_buckets", "_zeros", "count", "total", "min", "max")

    def __init__(self, name: str) -> None:
        self.name = name
        self._buckets: dict[int, int] = {}
        self._zeros = 0
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf

    def record(self, value: float) -> None:
        if value < 0:
            raise ValueError(f"histogram {self.name!r} takes values >= 0: {value!r}")
        self.count += 1
        self.total += value
        if races.ACTIVE is not None:
            races.ACTIVE.note(
                "metrics.histogram", self.name, "w", site="Histogram.record"
            )
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        if value == 0:
            self._zeros += 1
            return
        # Round before ceil so values sitting exactly on a bucket edge
        # (e.g. 2.0 with growth 2**0.25) bucket identically across
        # platforms despite log() rounding.
        index = math.ceil(round(math.log(value) / _LOG_GROWTH, 9))
        self._buckets[index] = self._buckets.get(index, 0) + 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """The ``q``-th percentile estimate (``0 < q <= 100``)."""
        if not 0 < q <= 100:
            raise ValueError(f"quantile out of range (0, 100]: {q!r}")
        if races.ACTIVE is not None:
            races.ACTIVE.note(
                "metrics.histogram", self.name, "r", site="Histogram.quantile"
            )
        if not self.count:
            return 0.0
        rank = max(1, math.ceil(self.count * (q / 100.0)))
        seen = self._zeros
        if seen >= rank:
            return self._clamp(0.0)
        for index in sorted(self._buckets):
            seen += self._buckets[index]
            if seen >= rank:
                return self._clamp(_GROWTH ** index)
        return self.max

    def _clamp(self, value: float) -> float:
        return min(max(value, self.min), self.max)

    @property
    def p50(self) -> float:
        return self.quantile(50)

    @property
    def p95(self) -> float:
        return self.quantile(95)

    @property
    def p99(self) -> float:
        return self.quantile(99)

    def merge(self, other: "Histogram") -> "Histogram":
        """A new histogram holding both sides' samples (exact)."""
        out = Histogram(self.name)
        out._zeros = self._zeros + other._zeros
        out.count = self.count + other.count
        out.total = self.total + other.total
        out.min = min(self.min, other.min)
        out.max = max(self.max, other.max)
        out._buckets = dict(self._buckets)
        for index, n in other._buckets.items():
            out._buckets[index] = out._buckets.get(index, 0) + n
        return out

    def __repr__(self) -> str:
        return f"Histogram({self.name!r}, count={self.count})"


class MetricsRegistry:
    """All of one gateway's instruments, by dotted name."""

    def __init__(self, clock: "VirtualClock | None" = None) -> None:
        self.clock = clock
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}

    def _instrument(self, name: str, cls: type) -> Any:
        metric = self._metrics.get(name)
        if metric is None:
            metric = self._metrics[name] = cls(name)
        elif not isinstance(metric, cls):
            raise TypeError(
                f"metric {name!r} is a {type(metric).__name__}, "
                f"not a {cls.__name__}"
            )
        return metric

    def counter(self, name: str) -> Counter:
        return self._instrument(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._instrument(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._instrument(name, Histogram)

    def get(self, name: str) -> "Counter | Gauge | Histogram | None":
        return self._metrics.get(name)

    def names(self) -> list[str]:
        return sorted(self._metrics)

    def __len__(self) -> int:
        return len(self._metrics)

    def snapshot(self) -> dict[str, Any]:
        """A plain-data view of every instrument (console / servlet)."""
        out: dict[str, Any] = {}
        for name in self.names():
            metric = self._metrics[name]
            if isinstance(metric, Histogram):
                out[name] = {
                    "count": metric.count,
                    "mean": metric.mean,
                    "p50": metric.p50 if metric.count else 0.0,
                    "p95": metric.p95 if metric.count else 0.0,
                    "p99": metric.p99 if metric.count else 0.0,
                }
            else:
                out[name] = metric.value
        return out

    def as_rows(self) -> list[dict[str, Any]]:
        """One record per instrument, shaped for the GatewayMetrics
        GLUE group (the self-monitoring driver's native records)."""
        rows: list[dict[str, Any]] = []
        for name in self.names():
            metric = self._metrics[name]
            if isinstance(metric, Histogram):
                rows.append(
                    {
                        "name": name,
                        "kind": "histogram",
                        "value": metric.mean,
                        "count": metric.count,
                        "p50": metric.p50 if metric.count else 0.0,
                        "p95": metric.p95 if metric.count else 0.0,
                        "p99": metric.p99 if metric.count else 0.0,
                    }
                )
            else:
                rows.append(
                    {
                        "name": name,
                        "kind": "gauge" if isinstance(metric, Gauge) else "counter",
                        "value": metric.value,
                        "count": None,
                        "p50": None,
                        "p95": None,
                        "p99": None,
                    }
                )
        return rows


class StatsView(MutableMapping):
    """Dict-shaped compatibility view over registry counters.

    The managers' historical ``stats`` dicts become views: every key is
    backed by the counter ``<prefix>.<key>`` in the owning gateway's
    registry, so ``stats["queries"] += 1`` and ``dict(stats)`` keep
    working byte-for-byte while ``SELECT * FROM GatewayMetrics`` serves
    the same numbers.  Iteration order is declaration order, matching
    the literal dicts this replaces.
    """

    def __init__(
        self, registry: MetricsRegistry, prefix: str, keys: "tuple[str, ...]" = ()
    ) -> None:
        self._registry = registry
        self._prefix = prefix
        self._keys: list[str] = []
        for key in keys:
            self._counter(key)

    def _counter(self, key: str) -> Counter:
        if key not in self._keys:
            self._keys.append(key)
        return self._registry.counter(f"{self._prefix}.{key}")

    def __getitem__(self, key: str) -> float:
        if key not in self._keys:
            raise KeyError(key)
        return self._registry.counter(f"{self._prefix}.{key}").value

    def __setitem__(self, key: str, value: float) -> None:
        counter = self._counter(key)
        delta = value - counter.value
        if delta < 0:
            raise ValueError(
                f"stat {self._prefix}.{key} is a monotone counter; "
                f"cannot move it from {counter.value!r} to {value!r}"
            )
        counter.add(delta)

    def __delitem__(self, key: str) -> None:
        self._keys.remove(key)

    def __iter__(self) -> Iterator[str]:
        return iter(self._keys)

    def __len__(self) -> int:
        return len(self._keys)

    def __repr__(self) -> str:
        return repr(dict(self))
