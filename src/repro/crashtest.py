"""Seeded kill/recover/verify loops for the durable history store.

``python -m repro crashtest`` (or :func:`run_crashtest` from a test)
builds a site with ``history_durable`` on, records history through real
query rounds, then repeatedly murders the gateway — power-failing the
:class:`~repro.storage.simdisk.SimDisk` (torn writes included), on some
cycles flipping a bit inside a sealed segment first — and rebuilds a
fresh gateway on the same disk.  After every crash the harness checks
the headline durability invariant as an *equality*, not a bound:

* the recovered store holds exactly the pre-crash **acknowledged**
  prefix per GLUE group — no acked row lost, no unacked or torn row
  resurrected;
* a deliberately corrupted segment is quarantined with a surfaced
  GRM401 finding, and start-up still succeeds (degraded serving, never
  a refusal to boot);
* the serving tables agree with the engine row-for-row.

Everything is seeded and on the virtual clock, so two runs with the same
seed produce byte-identical results; the :class:`CrashtestReport`
carries a SHA-256 signature over every cycle to make replay identity
checkable.  All timings reported are *virtual* seconds (the simulated
disk's write/fsync/read latency) — wall-clock measurement lives in the
benchmark suite, not here.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass, field
from typing import Any, Sequence

from repro.core.gateway import Gateway
from repro.core.policy import GatewayPolicy
from repro.core.request_manager import QueryMode
from repro.simnet.clock import VirtualClock
from repro.simnet.faults import FaultPlane
from repro.simnet.network import Network
from repro.storage.recovery import RULE_SEGMENT_QUARANTINED
from repro.storage.simdisk import SimDisk
from repro.testbed import build_site


@dataclass
class CrashtestReport:
    """One crashtest run's outcome."""

    seed: int
    cycles: int
    rounds_per_cycle: int
    fsync_interval: int
    #: Rows held to the acked-prefix equality, summed over all checks.
    rows_verified: int = 0
    rows_recovered: int = 0
    crashes: int = 0
    torn_tails: int = 0
    bit_flips: int = 0
    segments_quarantined: int = 0
    #: Per-cycle recovery summaries (as_dict of each RecoveryReport).
    recoveries: list[dict[str, Any]] = field(default_factory=list)
    #: Invariant violations — the run is green iff this is empty.
    violations: list[str] = field(default_factory=list)
    #: SHA-256 over every cycle's expected/recovered state: replay
    #: identity — same seed => same signature.
    signature: str = ""
    elapsed_virtual: float = 0.0
    faults: dict[str, Any] = field(default_factory=dict)
    #: GRM55x lane-race findings (``race_detect=True`` runs only; must
    #: be empty — recovery paths must not share state across branches).
    race_findings: list[str] = field(default_factory=list)
    #: State accesses the race detector inspected (0 = detection off).
    race_accesses: int = 0

    @property
    def ok(self) -> bool:
        return not self.violations

    def as_dict(self) -> dict[str, Any]:
        return {
            "seed": self.seed,
            "cycles": self.cycles,
            "rounds_per_cycle": self.rounds_per_cycle,
            "fsync_interval": self.fsync_interval,
            "rows_verified": self.rows_verified,
            "rows_recovered": self.rows_recovered,
            "crashes": self.crashes,
            "torn_tails": self.torn_tails,
            "bit_flips": self.bit_flips,
            "segments_quarantined": self.segments_quarantined,
            "recoveries": list(self.recoveries),
            "violations": list(self.violations),
            "signature": self.signature,
            "elapsed_virtual": self.elapsed_virtual,
            "faults": dict(self.faults),
            "race_findings": list(self.race_findings),
            "race_accesses": self.race_accesses,
        }

    def format(self) -> str:
        lines = [
            f"Crashtest: seed={self.seed}, {self.cycles} kill/recover cycles, "
            f"{self.rounds_per_cycle} rounds each, "
            f"fsync every {self.fsync_interval} records",
            f"  crashes: {self.crashes} "
            f"(torn WAL tails: {self.torn_tails}, bit flips: {self.bit_flips})",
            f"  acked prefix verified: {self.rows_verified} rows held equal, "
            f"{self.rows_recovered} rows recovered in total",
            f"  quarantined segments: {self.segments_quarantined}",
            f"  elapsed (virtual): {self.elapsed_virtual:.3f}s",
            f"  replay signature: {self.signature[:16]}…",
        ]
        if self.race_accesses:
            lines.append(
                f"  lane races: {len(self.race_findings)} finding(s) over "
                f"{self.race_accesses} shared-state accesses"
            )
        if self.violations:
            lines.append(f"  VIOLATIONS ({len(self.violations)}):")
            for v in self.violations:
                lines.append(f"    - {v}")
        else:
            lines.append("  invariants: OK (recovered == acknowledged prefix)")
        return "\n".join(lines)


def _snapshot(engine, exclude: frozenset[str]) -> dict[str, list[dict[str, Any]]]:
    """Deep-copy the acked rows per group (the pre-crash oracle)."""
    return {
        group: [dict(r) for r in engine.acked_rows(group, exclude_segments=exclude)]
        for group in engine.groups()
    }


def _diff(expected: list[dict[str, Any]], got: list[dict[str, Any]]) -> str:
    """First divergence between two row lists, for a violation message."""
    if len(expected) != len(got):
        return f"expected {len(expected)} rows, recovered {len(got)}"
    for i, (e, g) in enumerate(zip(expected, got)):
        if e != g:
            keys = sorted(k for k in set(e) | set(g) if e.get(k) != g.get(k))
            return f"row {i} differs on {keys}"
    return ""


def run_crashtest(
    *,
    seed: int = 0,
    cycles: int = 3,
    rounds: int = 5,
    hosts: int = 3,
    agents: Sequence[str] = ("snmp", "ganglia"),
    # One WAL record per record() batch: a 3-host two-agent round writes
    # 4 records (3 snmp + 1 ganglia), so an interval of 3 keeps the
    # crash off the group-commit boundary and torn tails reachable.
    fsync_interval: int = 3,
    checkpoint_every: int = 2,
    period: float = 30.0,
    sql: str = "SELECT * FROM Processor",
    race_detect: bool = False,
) -> CrashtestReport:
    """Run seeded kill/recover/verify cycles; returns the report.

    Each cycle: ``rounds`` query rounds record history (an explicit
    checkpoint every ``checkpoint_every`` rounds seals segments and
    truncates the WAL), odd cycles flip one bit inside a sealed segment,
    then the disk power-fails (torn writes drawn from the fault plane's
    RNG), the gateway is killed, and a successor is built on the same
    disk.  Violations are collected, never raised — the caller (CLI,
    CI's crash-smoke job) decides what a non-empty list means.

    ``race_detect=True`` runs every cycle (query rounds *and* the
    crash/recover machinery) under the virtual-lane race detector; any
    unordered-branch shared-state access lands in
    ``report.race_findings`` as a GRM55x line.
    """
    if cycles < 1 or rounds < 1:
        raise ValueError("cycles and rounds must be >= 1")
    clock = VirtualClock()
    network = Network(clock, seed=seed)
    disk = SimDisk(
        clock=clock, write_latency=0.0002, fsync_latency=0.002, read_latency=0.0005
    )
    policy = GatewayPolicy(
        history_durable=True,
        history_fsync_interval=fsync_interval,
        # Checkpoints are driven explicitly below so every cycle's
        # sealing schedule is a pure function of the arguments.
        history_checkpoint_interval=0.0,
    )
    persistent_store: dict[str, str] = {}
    site = build_site(
        network,
        name="crash",
        n_hosts=hosts,
        agents=tuple(agents),
        seed=seed,
        policy=policy,
        disk=disk,
        persistent_store=persistent_store,
    )
    plane = FaultPlane(network, seed=seed)
    rng = random.Random(seed ^ 0x5EED)
    gw = site.gateway
    urls = list(site.source_urls)
    clock.advance(60.0)

    report = CrashtestReport(
        seed=seed,
        cycles=cycles,
        rounds_per_cycle=rounds,
        fsync_interval=fsync_interval,
    )
    digest = hashlib.sha256()
    started = clock.now()

    detector = None
    if race_detect:
        from repro.analysis import races

        detector = races.RaceDetector.standard(clock)
        gw.race_detector = detector
        ambient = races.activate(detector)
        ambient.__enter__()
    try:
        _run_cycles(
            report,
            digest,
            cycles=cycles,
            rounds=rounds,
            checkpoint_every=checkpoint_every,
            period=period,
            sql=sql,
            clock=clock,
            network=network,
            disk=disk,
            policy=policy,
            persistent_store=persistent_store,
            site=site,
            plane=plane,
            rng=rng,
            gw=gw,
            urls=urls,
            detector=detector,
        )
    finally:
        if race_detect:
            ambient.__exit__(None, None, None)
    if detector is not None:
        report.race_findings = [f.format() for f in detector.findings]
        report.race_accesses = detector.accesses_noted

    report.signature = digest.hexdigest()
    report.elapsed_virtual = clock.now() - started
    report.faults = plane.stats.as_dict()
    return report


def _run_cycles(
    report: CrashtestReport,
    digest: Any,
    *,
    cycles: int,
    rounds: int,
    checkpoint_every: int,
    period: float,
    sql: str,
    clock: VirtualClock,
    network: Network,
    disk: SimDisk,
    policy: GatewayPolicy,
    persistent_store: dict[str, str],
    site: Any,
    plane: FaultPlane,
    rng: random.Random,
    gw: Gateway,
    urls: list[str],
    detector: Any,
) -> None:
    for cycle in range(cycles):
        for r in range(rounds):
            gw.query(urls, sql, mode=QueryMode.REALTIME)
            clock.advance(period)
            # Never checkpoint on the cycle's last round: the crash must
            # land on a live WAL tail (that's the case under test).
            if checkpoint_every and (r + 1) % checkpoint_every == 0 and r + 1 < rounds:
                gw.history.checkpoint()

        engine = gw.history_engine
        assert engine is not None
        # Odd cycles: bit-rot one sealed segment the harness picks (so
        # the oracle knows which rows are *expected* to degrade).
        flipped: frozenset[str] = frozenset()
        if cycle % 2 == 1:
            sealed = disk.list("seg/")
            if sealed:
                victim = sealed[rng.randrange(len(sealed))]
                plane.flip_segment_bit(disk, path=victim)
                flipped = frozenset([victim])
                report.bit_flips += 1

        expected = _snapshot(engine, flipped)
        synced_lsn = engine.wal.synced_lsn

        plane.crash_disk(disk)
        gw.crash()
        report.crashes += 1

        gw = Gateway(
            network,
            site.gateway.host,
            site=site.name,
            policy=policy,
            disk=disk,
            persistent_store=persistent_store,
        )
        if detector is not None:
            gw.race_detector = detector
        new_engine = gw.history_engine
        assert new_engine is not None
        recovery = new_engine.recovery_report
        report.recoveries.append(recovery.as_dict())
        if recovery.wal_tail != "clean":
            report.torn_tails += 1
        report.segments_quarantined += recovery.segments_quarantined

        # --- The headline invariant: recovered == acknowledged prefix.
        recovered: dict[str, list[dict[str, Any]]] = {}
        for group in sorted(set(expected) | set(new_engine.groups())):
            got = new_engine.serving_rows(group)
            recovered[group] = got
            want = expected.get(group, [])
            diff = _diff(want, got)
            if diff:
                report.violations.append(
                    f"cycle {cycle}: group {group}: recovered state != "
                    f"acked prefix (synced_lsn={synced_lsn}): {diff}"
                )
            report.rows_verified += len(want)
            # The serving tables must agree with the engine row-for-row.
            if gw.history.schema.has_group(group):
                serving = gw.history.row_count(group)
                if serving != len(got):
                    report.violations.append(
                        f"cycle {cycle}: group {group}: store serves {serving} "
                        f"rows but engine recovered {len(got)}"
                    )
        report.rows_recovered += gw.history.rows_recovered
        if flipped and recovery.segments_quarantined == 0:
            report.violations.append(
                f"cycle {cycle}: flipped bit in {sorted(flipped)} but recovery "
                "quarantined nothing"
            )
        if flipped and not any(
            f.rule_id == RULE_SEGMENT_QUARANTINED for f in recovery.findings
        ):
            report.violations.append(
                f"cycle {cycle}: quarantine happened without a "
                f"{RULE_SEGMENT_QUARANTINED} finding surfaced"
            )
        if recovery.findings and not gw.startup_findings:
            report.violations.append(
                f"cycle {cycle}: recovery findings missing from "
                "gateway.startup_findings"
            )

        digest.update(
            repr(
                (
                    cycle,
                    synced_lsn,
                    sorted(flipped),
                    {g: rows for g, rows in sorted(expected.items())},
                    {g: rows for g, rows in sorted(recovered.items())},
                    recovery.as_dict(),
                )
            ).encode()
        )
