"""The gateway "servlet" (paper Figure 1: "GridRM Gateway (Servlet)").

The original gateways are deployed as Java servlets: web-reachable
endpoints serving both the JSP management pages and programmatic access.
This module is the equivalent over the simulated network: a tiny
HTTP-style request handler bound to the gateway host that serves

* ``GET /``             — HTML console (tree view + driver panel);
* ``GET /tree``         — plain-text tree view;
* ``GET /drivers``      — driver registration panel;
* ``GET /sources``      — the configured data-source URLs;
* ``GET /query?url=<jdbc-url>&sql=<sql>[&mode=<mode>]`` — run a query,
  answer rows as tab-separated text;
* ``GET /plot?group=G&field=F[&host=H]`` — ASCII history plot;
* ``GET /health``       — per-source circuit-breaker scoreboard;
* ``GET /analyze``      — static-analysis findings (driver conformance,
  unloadable persisted specs, invalid alert SQL);
* ``GET /stats``        — gateway statistics;
* ``GET /metrics``      — the metrics registry, one instrument per line;
* ``GET /trace``        — digest of retained query traces;
* ``GET /trace/<qid>``  — one query's full span tree;
* ``GET /durability``   — WAL / checkpoint / recovery state of the
  durable history engine;
* ``GET /overload``     — admission-control pressure state, shed ledger
  and adaptive concurrency limits.  A request the gateway sheds comes
  back as ``503`` with the retry-after hint;
* ``GET /streams``      — continuous-query hub state: live
  subscriptions, push/replay counters and per-subscription buffers.

Requests and responses are simple strings ("GET /path?query"), which is
all the simulated transport needs while exercising the same parsing,
routing and error-handling logic a real servlet would.
"""

from __future__ import annotations

from typing import Any, TYPE_CHECKING
from urllib.parse import parse_qs, unquote

from repro.core.errors import GridRmError, OverloadError
from repro.core.request_manager import QueryMode
from repro.dbapi.exceptions import SQLException
from repro.simnet.network import Address
from repro.sql.errors import SqlError
from repro.web.console import Console

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.gateway import Gateway

SERVLET_PORT = 8080


def _status(code: int, body: str) -> str:
    reason = {
        200: "OK",
        400: "Bad Request",
        404: "Not Found",
        500: "Error",
        503: "Service Unavailable",
    }[code]
    return f"HTTP/1.0 {code} {reason}\n\n{body}"


class GatewayServlet:
    """HTTP-style front end for one gateway."""

    def __init__(self, gateway: "Gateway", *, port: int = SERVLET_PORT) -> None:
        self.gateway = gateway
        self.console = Console(gateway)
        self.address = Address(gateway.host, port)
        self.requests_served = 0
        gateway.network.listen(self.address, self._handle)

    # ------------------------------------------------------------------
    def _handle(self, payload: Any, src: Address) -> str:
        self.requests_served += 1
        line = str(payload).strip().splitlines()[0] if str(payload).strip() else ""
        parts = line.split()
        if len(parts) < 2 or parts[0].upper() != "GET":
            return _status(400, "only GET <path> is supported")
        target = parts[1]
        path, _, query = target.partition("?")
        params = {k: v[0] for k, v in parse_qs(query, keep_blank_values=True).items()}
        try:
            return self._route(path, params)
        except OverloadError as exc:
            # The admission controller shed this request: 503 with the
            # retry-after hint, the HTTP face of the typed shed.
            return _status(503, f"overloaded: {exc} (retry after {exc.retry_after:.1f}s)")
        except (GridRmError, SQLException, SqlError) as exc:
            return _status(500, f"{type(exc).__name__}: {exc}")

    def _route(self, path: str, params: dict[str, str]) -> str:
        if path in ("/", "/index.html"):
            return _status(200, self.console.html())
        if path == "/tree":
            return _status(200, self.console.tree_view())
        if path == "/drivers":
            return _status(200, self.console.driver_panel())
        if path == "/sources":
            lines = [str(s.url) for s in self.gateway.sources()]
            return _status(200, "\n".join(lines))
        if path == "/stats":
            import pprint

            return _status(200, pprint.pformat(self.gateway.stats()))
        if path == "/alerts":
            return _status(200, self.console.alerts_panel())
        if path == "/health":
            return _status(200, self.console.health_panel())
        if path == "/analyze":
            return _status(200, self.console.analysis_panel())
        if path == "/metrics":
            return _status(200, self.console.metrics_panel())
        if path == "/trace":
            return _status(200, self.console.trace_panel())
        if path == "/durability":
            return _status(200, self.console.durability_panel())
        if path == "/overload":
            return _status(200, self.console.overload_panel())
        if path == "/streams":
            return _status(200, self.console.streams_panel())
        if path.startswith("/trace/"):
            trace_id = path[len("/trace/"):]
            if self.gateway.tracer.get(trace_id) is None:
                return _status(404, f"no such trace: {trace_id}")
            return _status(200, self.console.trace_panel(trace_id))
        if path == "/report":
            return self._report()
        if path == "/query":
            return self._query(params)
        if path == "/plot":
            return self._plot(params)
        return _status(404, f"no such path: {path}")

    def _query(self, params: dict[str, str]) -> str:
        url = unquote(params.get("url", ""))
        sql = unquote(params.get("sql", ""))
        if not url or not sql:
            return _status(400, "query needs url= and sql=")
        mode_text = params.get("mode", "realtime")
        try:
            mode = QueryMode(mode_text)
        except ValueError:
            return _status(400, f"unknown mode {mode_text!r}")
        result = self.gateway.query([url], sql, mode=mode)
        lines = ["\t".join(result.columns)]
        for row in result.rows:
            lines.append("\t".join("" if v is None else str(v) for v in row))
        lines.append(
            f"# sources ok={result.ok_sources} failed={result.failed_sources} "
            f"elapsed={result.elapsed:.4f}s mode={result.mode.value}"
        )
        for s in result.statuses:
            if not s.ok:
                lines.append(f"# failed {s.url}: {s.error}")
        return _status(200, "\n".join(lines))

    def _report(self) -> str:
        from repro.web.reports import capacity_report, utilisation_report

        lines = ["Site capacity:"]
        lines.append("  " + capacity_report(self.gateway).format())
        lines.append("Host utilisation (recorded history):")
        entries = utilisation_report(self.gateway)
        if not entries:
            lines.append("  (no Processor history recorded yet)")
        for entry in entries:
            lines.append("  " + entry.format())
        return _status(200, "\n".join(lines))

    def _plot(self, params: dict[str, str]) -> str:
        group = params.get("group", "")
        field = params.get("field", "")
        if not group or not field:
            return _status(400, "plot needs group= and field=")
        body = self.console.plot(
            group,
            field,
            host=params.get("host") or None,
            source_url=unquote(params["source"]) if "source" in params else None,
        )
        return _status(200, body)


def http_get(network, from_host: str, servlet: Address, target: str) -> tuple[int, str]:
    """Client helper: GET ``target`` and split the status/body."""
    raw = str(network.request(from_host, servlet, f"GET {target}"))
    head, _, body = raw.partition("\n\n")
    try:
        code = int(head.split()[1])
    except (IndexError, ValueError):
        code = 500
    return code, body
