"""The management console (paper Figures 6-9, rendered as text/HTML).

Reproduces the JSP views' behaviour, including the crucial caching
semantics of Figure 9: "The JSP tree view ... is populated with cached
data from queries issued within the local gateway. ... To obtain
real-time data either the user must explicitly poll a given resource or
refresh their tree view after other users have initiated a poll."

* :meth:`Console.tree_view` — the source tree with status icons, built
  *only* from cache, events and recorded poll status (no agent traffic).
* :meth:`Console.poll` — an explicit user poll of one source (real
  time, repopulating the cache for everyone else).
* :meth:`Console.refresh` — re-read of the tree (cached data only).
* :meth:`Console.driver_panel` — the Figure 8 registration panel.
* :meth:`Console.plot` — ASCII plot of a recorded historical series
  ("Click icon to plot historical/current values").
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.health import BreakerState
from repro.core.request_manager import QueryMode, QueryResult
from repro.sql.errors import SqlError

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.gateway import Gateway

#: Status icons, text renderings of Figure 9's legend.
ICON_FRESH = "[ok]"     # recent successful poll, cached data available
ICON_STALE = "[..]"     # polled long ago; cache may have expired
ICON_FAILED = "[xx]"    # last poll failed (comms failure / security)
ICON_NEVER = "[??]"     # never polled
ICON_EVENT = "[!!]"     # event received in the last n minutes
ICON_QUARANTINED = "[--]"  # circuit breaker OPEN: source not being polled
ICON_PROBING = "[~~]"   # circuit breaker HALF_OPEN: probing for recovery


class Console:
    """Stateless renderer over one gateway."""

    def __init__(self, gateway: "Gateway", *, event_window: float = 300.0) -> None:
        self.gateway = gateway
        self.event_window = event_window

    # ------------------------------------------------------------------
    # Tree view (Figures 6 and 9)
    # ------------------------------------------------------------------
    def _icon(self, source) -> str:
        now = self.gateway.network.clock.now()
        breaker = self.gateway.health.state(str(source.url))
        if breaker is BreakerState.OPEN:
            return ICON_QUARANTINED
        if breaker is BreakerState.HALF_OPEN:
            return ICON_PROBING
        recent_event = any(
            e.source_host == source.url.host
            and now - e.time <= self.event_window
            for e in self.gateway.events.recent
        )
        if recent_event:
            return ICON_EVENT
        if source.last_polled is None:
            return ICON_NEVER
        if source.last_ok is False:
            return ICON_FAILED
        if now - source.last_polled <= self.gateway.cache.ttl:
            return ICON_FRESH
        return ICON_STALE

    def tree_view(self) -> str:
        """Render the data-source tree from cached state only."""
        gw = self.gateway
        now = gw.network.clock.now()
        lines = [f"GridRM Gateway {gw.host} (site {gw.site})  t={now:.1f}s"]
        for source in gw.sources():
            icon = self._icon(source)
            age = (
                f"polled {now - source.last_polled:.1f}s ago"
                if source.last_polled is not None
                else "never polled"
            )
            lines.append(f"+- {icon} {source.url}  ({age})")
            for entry in gw.cache.entries_for(str(source.url)):
                try:
                    from repro.sql.parser import parse_select

                    group = parse_select(entry.sql).table
                except SqlError:
                    group = "?"
                lines.append(
                    f"|    cached: {group} rows={len(entry.rows)} "
                    f"age={entry.age(now):.1f}s"
                )
            health = gw.health.health(str(source.url))
            if health.state is BreakerState.OPEN:
                lines.append(
                    f"|    breaker: OPEN until t={health.open_until:.1f}s "
                    f"(trips={health.trips})"
                )
            elif health.state is BreakerState.HALF_OPEN:
                lines.append("|    breaker: HALF_OPEN (probing)")
            if source.last_ok is False and source.last_error:
                lines.append(f"|    error: {source.last_error[:70]}")
        if not gw.sources():
            lines.append("+- (no data sources configured)")
        return "\n".join(lines)

    def refresh(self) -> str:
        """The user's refresh button: cached data only, no polling."""
        return self.tree_view()

    def poll(self, url: str, sql: str = "SELECT * FROM Host") -> QueryResult:
        """An explicit user poll of one source (real-time, fills cache)."""
        return self.gateway.query([url], sql, mode=QueryMode.REALTIME)

    def poll_all(self, sql: str = "SELECT * FROM Host") -> list[QueryResult]:
        """Poll every enabled source (the 'poll site' action).

        Dispatched as one concurrent batch: the whole site poll costs
        the slowest source's round-trip in virtual time, not the sum.
        A source that fails outright still yields a QueryResult whose
        statuses carry the error (per-source failures never raise).
        """
        from repro.core.gateway import BatchQuery

        batch = [
            BatchQuery(urls=[str(s.url)], sql=sql, mode=QueryMode.REALTIME)
            for s in self.gateway.sources()
            if s.enabled
        ]
        results = self.gateway.query_batch(batch)
        out: list[QueryResult] = []
        for result in results:
            if isinstance(result, Exception):
                raise result
            out.append(result)
        return out

    # ------------------------------------------------------------------
    # Driver panel (Figure 8)
    # ------------------------------------------------------------------
    def driver_panel(self) -> str:
        gw = self.gateway
        lines = ["Registered data source drivers:"]
        for driver in gw.registry.drivers():
            protocol = getattr(driver, "protocol", "?")
            lines.append(f"  - {driver.name()} v{driver.version()} (jdbc:{protocol}:)")
        prefs = gw.driver_manager._preferences
        if prefs:
            lines.append("Static driver preferences:")
            for key, pref in sorted(prefs.items()):
                lines.append(f"  - {key}: {' > '.join(pref.driver_names)}")
        lines.append(
            f"Failure policy: {gw.policy.failure_action.value} "
            f"(retries={gw.policy.failure_retries})"
        )
        return "\n".join(lines)

    # ------------------------------------------------------------------
    # Alerts view
    # ------------------------------------------------------------------
    def alerts_panel(self) -> str:
        """Installed alert rules, their firing state, and recent events."""
        gw = self.gateway
        monitor = gw.alerts
        lines = ["Alert rules:"]
        firing = set(monitor.firing())
        if not monitor.rules():
            lines.append("  (none installed)")
        for rule in monitor.rules():
            hosts = sorted(h for (name, h) in firing if name == rule.name)
            state = f"FIRING on {', '.join(hosts)}" if hosts else "quiet"
            lines.append(
                f"  - {rule.name}: every {rule.period:g}s, "
                f"severity={rule.severity}  [{state}]"
            )
        stats = monitor.stats
        lines.append(
            f"Polls: {stats['polls']}, violations: {stats['violations']}, "
            f"events: {stats['events_emitted']}, suppressed: {stats['suppressed']}"
        )
        recent = [e for e in self.gateway.events.recent if e.name.startswith("alert.")]
        if recent:
            lines.append("Recent alert events:")
            for event in list(recent)[-5:]:
                lines.append(
                    f"  t={event.time:8.1f}s  {event.source_host:14s} "
                    f"{event.name}  ({event.severity})"
                )
        return "\n".join(lines)

    # ------------------------------------------------------------------
    # Health scoreboard
    # ------------------------------------------------------------------
    def health_panel(self) -> str:
        """Per-source circuit-breaker scoreboard (up/degraded/quarantined)."""
        gw = self.gateway
        health = gw.health
        now = gw.network.clock.now()
        summary = health.summary()
        lines = [
            f"Source health @ t={now:.1f}s  "
            f"(breaker {'enabled' if gw.policy.breaker_enabled else 'DISABLED'}, "
            f"threshold={gw.policy.breaker_failure_threshold}, "
            f"backoff={gw.policy.breaker_base_backoff:g}s.."
            f"{gw.policy.breaker_max_backoff:g}s)"
        ]
        board = health.scoreboard()
        if not board:
            lines.append("  (no sources observed yet)")
        label = {
            BreakerState.CLOSED.value: "up",
            BreakerState.HALF_OPEN.value: "degraded",
            BreakerState.OPEN.value: "quarantined",
        }
        for key, entry in board.items():
            state = entry["state"]
            detail = ""
            if state == BreakerState.OPEN.value:
                detail = f" until t={entry['open_until']:.1f}s"
            lines.append(
                f"  - {key}: {label.get(state, state)}{detail}  "
                f"ok={entry['total_successes']} fail={entry['total_failures']} "
                f"trips={entry['trips']}"
            )
        lines.append(
            f"Trips: {summary['trips']}, recoveries: {summary['recoveries']}, "
            f"short-circuits: {summary['short_circuits']}"
        )
        recent = [e for e in gw.events.recent if e.name.startswith("breaker.")]
        if recent:
            lines.append("Recent breaker events:")
            for event in list(recent)[-5:]:
                lines.append(
                    f"  t={event.time:8.1f}s  {event.fields.get('source', '?')}  "
                    f"{event.name}"
                )
        return "\n".join(lines)

    # ------------------------------------------------------------------
    # Dispatch / concurrency view
    # ------------------------------------------------------------------
    def dispatch_panel(self) -> str:
        """Concurrent-dispatch counters: fan-outs, single-flight
        coalescing, per-source cap queueing and cache eviction pressure."""
        gw = self.gateway
        d = gw.dispatcher.stats
        lines = [
            "Concurrent dispatch "
            f"(fan-out {'enabled' if gw.policy.fanout_enabled else 'DISABLED'}, "
            f"single-flight {'enabled' if gw.policy.singleflight_enabled else 'DISABLED'}, "
            f"cap/source={gw.policy.max_concurrent_per_source or 'unlimited'})",
            f"  fan-outs: {d.fanouts} ({d.branches} branches), "
            f"serial runs: {d.serial_runs}",
            f"  flights: {d.flights}, coalesced joins: {d.singleflight_joins}",
            f"  cap waits: {d.cap_waits} "
            f"(total queued {d.cap_wait_time:.2f}s virtual)",
            f"Query cache: {len(gw.cache)}/{gw.cache.max_entries or 'unbounded'} "
            f"entries, {gw.cache.evictions} evicted "
            f"(hit ratio {gw.cache.hit_ratio:.0%})",
        ]
        return "\n".join(lines)

    # ------------------------------------------------------------------
    # Overload / brownout view
    # ------------------------------------------------------------------
    def overload_panel(self) -> str:
        """Admission-control pressure state, shed ledger and adaptive
        concurrency limits (one line when the layer is disabled)."""
        gw = self.gateway
        snap = gw.overload.snapshot()
        if not snap["enabled"]:
            return (
                "Overload protection: DISABLED "
                "(policy.admission_enabled=False)"
            )
        sheds = snap["sheds"]
        limiter = snap["limiter"]
        gw_baseline = (
            "-"
            if limiter["baseline"] is None
            else f"{limiter['baseline'] * 1000:.1f}ms"
        )
        lines = [
            f"Overload protection @ t={gw.network.clock.now():.1f}s  "
            f"(adaptive concurrency "
            f"{'enabled' if gw.policy.adaptive_concurrency else 'DISABLED'})",
            f"  pressure: {snap['state'].upper()} "
            f"since t={snap['since']:.1f}s "
            f"({snap['transitions']} transitions)",
            f"  queue: {snap['queue_depth']}/{snap['queue_capacity']}, "
            f"in flight: {snap['inflight']}/{snap['limit']} "
            f"(headroom {snap['headroom']})",
            f"  admitted: {snap['admitted']} ({snap['queued']} queued), "
            f"doomed on dequeue: {snap['doomed']}, "
            f"brownout served: {snap['brownout_served']}",
            f"  sheds: {sheds['total']} "
            f"(critical={sheds['critical']}, "
            f"interactive={sheds['interactive']}, batch={sheds['batch']})",
            f"  gateway limiter: limit={limiter['limit']}, "
            f"baseline={gw_baseline}, "
            f"pending samples={limiter['pending_samples']}",
        ]
        per_source = gw.dispatcher.limiter_snapshot()
        if per_source:
            lines.append("Per-source adaptive limits:")
            for key, s in per_source.items():
                baseline = (
                    "-" if s["baseline"] is None else f"{s['baseline'] * 1000:.1f}ms"
                )
                lines.append(
                    f"  - {key}: limit={s['limit']}, baseline={baseline}"
                )
        return "\n".join(lines)

    # ------------------------------------------------------------------
    # Streaming / continuous-query view
    # ------------------------------------------------------------------
    def streams_panel(self) -> str:
        """Continuous-query hub state: live subscriptions, push/replay
        counters and per-subscription buffers (one line when the
        streaming plane is disabled)."""
        gw = self.gateway
        if gw.streams is None:
            return (
                "Continuous queries: DISABLED "
                "(policy.streaming_enabled=False)"
            )
        snap = gw.streams.snapshot()
        lines = [
            f"Continuous queries @ t={gw.network.clock.now():.1f}s  "
            f"(sweep every {gw.policy.stream_sweep_period:g}s, "
            f"default lease {gw.policy.stream_default_lease:g}s, "
            f"cap {gw.policy.stream_max_subscriptions})",
            f"  subscriptions: {snap['subscriptions']} live, "
            f"{snap['tombstones']} in tombstone grace, "
            f"{snap['registered']} registered since start "
            f"({snap['expired']} expired, {snap['resurrected']} resurrected, "
            f"{snap['shed']} shed)",
            f"  pushes: {snap['pushes']} batches / {snap['tuples']} tuples, "
            f"replayed {snap['replayed']} on attach",
            f"  backpressure: {snap['dropped']} dropped, "
            f"{snap['suppressed']} suppressed in brownout",
            f"  groups seen: {', '.join(snap['groups']) or '(none)'}",
        ]
        buffers = gw.streams.buffer_stats()
        if buffers:
            lines.append("Live subscriptions:")
            for cq_id, b in sorted(buffers.items()):
                state = "PAUSED" if b["paused"] else "live"
                lines.append(
                    f"  - cq{cq_id} [{state}] {b['flavour']}/"
                    f"{b['query_class'] or 'interactive'} on {b['group']}: "
                    f"{b['delivered']} batches ({b['tuples']} tuples) "
                    f"delivered, buffer {b['buffered']}/{b['max_buffer']} "
                    f"({b['overflow']}, {b['dropped']} dropped)  "
                    f"{b['sql'][:48]}"
                )
        return "\n".join(lines)

    # ------------------------------------------------------------------
    # Chaos / resilience view
    # ------------------------------------------------------------------
    def chaos_panel(self) -> str:
        """Deadline, retry and hedging counters, plus the fault plane's
        live schedule when one is installed on the gateway's network."""
        gw = self.gateway
        now = gw.network.clock.now()
        r = gw.request_manager.stats
        d = gw.dispatcher.stats
        lines = [
            f"Resilience @ t={now:.1f}s  "
            f"(deadline default={gw.policy.default_deadline:g}s, "
            f"retries/source={gw.policy.retry_attempts}, "
            f"budget/query={gw.policy.retry_budget}, "
            f"hedging {'enabled' if gw.policy.hedge_enabled else 'DISABLED'}"
            + (
                f" @ p{gw.policy.hedge_percentile:g}"
                if gw.policy.hedge_enabled
                else ""
            )
            + ")",
            f"  deadlines exceeded: {r['deadline_exceeded']}",
            f"  retries: {r['retries']} (gave up {r['retry_giveups']})",
            f"  hedges: fired {d.hedges_fired}, won {d.hedges_won}, "
            f"cancelled {d.hedges_cancelled}, "
            f"saved {d.hedge_time_saved:.2f}s virtual",
        ]
        delays = []
        for source in gw.sources():
            delay = gw.dispatcher.hedge_delay(str(source.url))
            if delay is not None:
                delays.append(f"  - {source.url}: hedge after {delay * 1000:.1f}ms")
        if delays:
            lines.append("Per-source hedge delays:")
            lines.extend(delays)
        plane = gw.network.fault_plane
        if plane is None:
            lines.append("Fault plane: not installed")
            return "\n".join(lines)
        s = plane.stats
        lines.append(
            f"Fault plane (seed={plane.seed}): "
            f"spikes={s.spikes_injected} (+{s.spike_seconds:.1f}s), "
            f"refusals={s.refusals}, corruptions={s.corruptions}, "
            f"flaps={s.flaps}, partitions={s.partitions}/heals={s.heals}"
        )
        active = plane.active_faults()
        lines.append(f"Active fault windows ({len(active)}):")
        for description in active:
            lines.append(f"  - {description}")
        if not active:
            lines.append("  (none)")
        return "\n".join(lines)

    # ------------------------------------------------------------------
    # Durability view
    # ------------------------------------------------------------------
    def durability_panel(self) -> str:
        """WAL / checkpoint / recovery state of the durable history
        engine, or a one-liner when ``history_durable`` is off."""
        gw = self.gateway
        engine = gw.history_engine
        if engine is None:
            return "Durable history: DISABLED (policy.history_durable=False)"
        s = engine.stats()
        wal, seg, disk = s["wal"], s["segments"], s["disk"]
        lines = [
            f"Durable history (fsync every {wal['sync_interval']} records, "
            f"ring {engine.max_rows_per_group} rows/group"
            + (
                f", retention {engine.retention_age:g}s"
                if engine.retention_age
                else ""
            )
            + ")",
            f"  WAL: gen {wal['gen']}, next_lsn {wal['next_lsn']}, "
            f"synced {wal['synced_lsn']} "
            f"({wal['unsynced_records']} records unsynced)",
            f"  segments: {seg['count']} sealed holding {seg['rows']} rows; "
            f"memtable {s['memtable_rows']} rows; "
            f"trim cutoff {s['trim_cutoff'] if s['trim_cutoff'] is not None else '(none)'}",
            f"  checkpoints: {s['checkpoints_run']} run "
            + (
                f"(last at t={s['last_checkpoint_at']:g}s)"
                if s["last_checkpoint_at"] is not None
                else "(none yet)"
            ),
            f"  disk: {disk['writes']} writes ({disk['bytes_written']} B), "
            f"{disk['fsyncs']} fsyncs, {disk['crashes']} crashes survived",
        ]
        for group in sorted(seg["per_group"]):
            per = seg["per_group"][group]
            lines.append(
                f"    - {group}: {per['segments']} segments, {per['rows']} rows"
            )
        report = gw.recovery_report
        if report is not None:
            lines.append("Last recovery:")
            for line in report.format().splitlines():
                lines.append(f"  {line}")
        return "\n".join(lines)

    # ------------------------------------------------------------------
    # Trace / metrics views
    # ------------------------------------------------------------------
    def trace_panel(self, trace_id: str | None = None) -> str:
        """One query's span tree, or a digest of the recent traces.

        Without an id: one line per retained trace (newest last) so the
        operator can pick one.  With an id: the full rendered tree, as
        produced by :meth:`repro.obs.trace.Trace.render`.
        """
        tracer = self.gateway.tracer
        if trace_id is not None:
            trace = tracer.get(trace_id)
            if trace is None:
                return f"trace {trace_id!r}: not found (retention {tracer.max_traces})"
            return trace.render().rstrip("\n")
        traces = tracer.traces()
        lines = [
            f"Query traces ({len(traces)} retained, "
            f"tracing {'enabled' if tracer.enabled else 'DISABLED'}):"
        ]
        if not traces:
            lines.append("  (none recorded)")
        for trace in traces:
            root = trace.root
            status = root.status if root is not None else "?"
            spans = len(trace.spans)
            sql = root.attrs.get("sql", "") if root is not None else ""
            lines.append(
                f"  - {trace.trace_id}: {trace.name} "
                f"{trace.duration:.6f}s spans={spans} status={status}"
                + (f"  {sql[:48]}" if sql else "")
            )
        return "\n".join(lines)

    def metrics_panel(self) -> str:
        """Every registry instrument, one line each (the text analogue
        of ``SELECT * FROM GatewayMetrics``)."""
        gw = self.gateway
        lines = [f"Gateway metrics ({len(gw.metrics)} instruments):"]
        for row in gw.metrics.as_rows():
            if row["kind"] == "histogram":
                lines.append(
                    f"  {row['name']} (histogram): n={row['count']} "
                    f"mean={row['value']:.6f} p50={row['p50']:.6f} "
                    f"p95={row['p95']:.6f} p99={row['p99']:.6f}"
                )
            else:
                lines.append(f"  {row['name']} ({row['kind']}): {row['value']:g}")
        return "\n".join(lines)

    # ------------------------------------------------------------------
    # Static analysis view
    # ------------------------------------------------------------------
    def analysis_panel(self) -> str:
        """Findings from the gateway's static-analysis pass: driver
        conformance, unloadable persisted specs, invalid alert SQL."""
        from repro.analysis.linter import render_tree

        report = self.gateway.analyze()
        return render_tree(
            report, title=f"Static analysis ({self.gateway.host})"
        )

    # ------------------------------------------------------------------
    # Historical plot (Figure 9's click-to-plot)
    # ------------------------------------------------------------------
    def plot(
        self,
        group: str,
        field: str,
        *,
        host: str | None = None,
        source_url: str | None = None,
        width: int = 60,
        height: int = 10,
    ) -> str:
        """ASCII chart of a field's recorded history."""
        series = self.gateway.history.series(
            group, field, host=host, source_url=source_url
        )
        points = [(t, v) for t, v in series if isinstance(v, (int, float))]
        title = f"{group}.{field}" + (f" @ {host}" if host else "")
        if len(points) < 2:
            return f"{title}: not enough recorded data ({len(points)} points)"
        values = [v for _, v in points]
        lo, hi = min(values), max(values)
        span = (hi - lo) or 1.0
        # Downsample to the plot width.
        step = max(1, len(points) // width)
        sampled = points[::step][:width]
        grid = [[" "] * len(sampled) for _ in range(height)]
        for x, (_, v) in enumerate(sampled):
            y = int((v - lo) / span * (height - 1))
            grid[height - 1 - y][x] = "*"
        lines = [f"{title}  [{lo:.2f} .. {hi:.2f}]  n={len(points)}"]
        lines += ["|" + "".join(row) for row in grid]
        lines.append("+" + "-" * len(sampled))
        lines.append(
            f" t: {points[0][0]:.0f}s .. {points[-1][0]:.0f}s (virtual)"
        )
        return "\n".join(lines)

    # ------------------------------------------------------------------
    def html(self) -> str:
        """A minimal HTML rendering of the tree view (the JSP analogue)."""
        tree = self.tree_view().replace("&", "&amp;").replace("<", "&lt;")
        return (
            "<html><head><title>GridRM Gateway "
            f"{self.gateway.host}</title></head>"
            f"<body><h1>GridRM: Grid Resource Monitoring</h1>"
            f"<pre>{tree}</pre>"
            f"<h2>Drivers</h2><pre>{self.driver_panel()}</pre>"
            "</body></html>"
        )
