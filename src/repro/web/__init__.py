"""Management interface (paper §4, Figures 6-9).

The paper manages GridRM through JSP pages: a data-source tree view with
status icons, a driver registration panel, and click-to-plot historical
charts.  This package renders the same views as text/HTML from live
gateway state, and implements the network-scan data-source discovery the
paper describes ("Data sources are discovered by scanning a network, or
they can be configured selectively").
"""

from repro.web.discovery import discover_sources, DiscoveredSource
from repro.web.console import Console
from repro.web.servlet import GatewayServlet, http_get, SERVLET_PORT
from repro.web.reports import (
    AvailabilityTracker,
    capacity_report,
    utilisation_report,
)

__all__ = [
    "discover_sources",
    "DiscoveredSource",
    "Console",
    "GatewayServlet",
    "http_get",
    "SERVLET_PORT",
    "AvailabilityTracker",
    "capacity_report",
    "utilisation_report",
]
