"""Data-source discovery by network scan (paper §4).

For every candidate host, each registered driver probes with its own
native protocol; a host that answers any probe becomes a discovered data
source addressed by that driver's JDBC subprotocol.  This is the same
mechanism the dynamic driver selection uses, applied breadth-first.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, TYPE_CHECKING

from repro.dbapi.url import JdbcUrl
from repro.drivers.base import GridRmDriver
from repro.simnet.errors import NetworkError

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.gateway import Gateway


@dataclass(frozen=True)
class DiscoveredSource:
    """One (host, protocol) hit from a scan."""

    url: str
    host: str
    protocol: str
    driver_name: str


def discover_sources(
    gateway: "Gateway",
    hosts: Iterable[str] | None = None,
    *,
    add: bool = True,
    probe_timeout: float = 0.25,
) -> list[DiscoveredSource]:
    """Scan hosts for data sources via every registered GridRM driver.

    Args:
        gateway: whose drivers, network and source list to use.
        hosts: candidate hosts; defaults to every host in the gateway's
            own site (a "specific range of addresses" in paper terms).
        add: register hits as gateway data sources.
        probe_timeout: per-probe deadline — scans should fail fast.
    """
    network = gateway.network
    if hosts is None:
        hosts = [
            h for h in network.hosts(site=gateway.site) if h != gateway.host
        ]
    found: list[DiscoveredSource] = []
    for host in hosts:
        for driver in gateway.registry.drivers():
            if not isinstance(driver, GridRmDriver):
                continue
            url = JdbcUrl(protocol=driver.protocol, host=host, path="discovered")
            try:
                alive = driver.probe(url, timeout=probe_timeout)
            except NetworkError:
                # Host down or partitioned: no point probing other ports.
                break
            if alive:
                hit = DiscoveredSource(
                    url=str(url),
                    host=host,
                    protocol=driver.protocol,
                    driver_name=driver.name(),
                )
                found.append(hit)
                if add:
                    gateway.add_source(url)
    return found
