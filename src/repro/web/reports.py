"""Site reports over recorded history.

The paper's introduction motivates the homogeneous view with high-level
tools — "intelligent system monitoring, scheduling, load-balancing".
This module is the monitoring-report consumer: it reads only the
gateway's HistoryStore (never the agents), so reports are free of
resource intrusion, and produces the tables an era site operator put on
the group web page:

* :func:`utilisation_report` — per-host load/CPU statistics over a window;
* :func:`capacity_report` — site totals (CPUs, memory, disk) from the
  latest sample per host;
* :func:`availability_report` — per-source reachability from poll history.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.gateway import Gateway


@dataclass
class HostUtilisation:
    """One host's load statistics over the report window."""

    host: str
    samples: int
    load_min: float
    load_avg: float
    load_max: float
    util_avg: Optional[float] = None

    def format(self) -> str:
        util = f"{self.util_avg:5.1f}%" if self.util_avg is not None else "    ?"
        return (
            f"{self.host:18s} n={self.samples:<4d} "
            f"load {self.load_min:5.2f}/{self.load_avg:5.2f}/{self.load_max:5.2f} "
            f"cpu {util}"
        )


def utilisation_report(
    gateway: "Gateway", *, since: float | None = None
) -> list[HostUtilisation]:
    """Per-host min/avg/max 1-minute load (plus mean CPU utilisation)
    from recorded Processor history."""
    history = gateway.history
    hosts: dict[str, list[float]] = {}
    utils: dict[str, list[float]] = {}
    if "Processor" not in history.db.tables:
        return []
    for row in history.db.table("Processor").rows:
        t = row.get("RecordedAt")
        if since is not None and (t is None or t < since):
            continue
        host = row.get("HostName")
        load = row.get("LoadAverage1Min")
        if host is None or not isinstance(load, (int, float)):
            continue
        hosts.setdefault(host, []).append(float(load))
        util = row.get("CPUUtilization")
        if isinstance(util, (int, float)):
            utils.setdefault(host, []).append(float(util))
    out = []
    for host in sorted(hosts):
        loads = hosts[host]
        host_utils = utils.get(host)
        out.append(
            HostUtilisation(
                host=host,
                samples=len(loads),
                load_min=min(loads),
                load_avg=sum(loads) / len(loads),
                load_max=max(loads),
                util_avg=sum(host_utils) / len(host_utils) if host_utils else None,
            )
        )
    return out


@dataclass
class CapacitySummary:
    """Whole-site hardware totals from the latest sample per host."""

    hosts: int
    total_cpus: int
    total_ram_mb: float
    free_ram_mb: float
    total_disk_mb: float
    free_disk_mb: float

    def format(self) -> str:
        return (
            f"hosts={self.hosts} cpus={self.total_cpus} "
            f"ram={self.free_ram_mb:.0f}/{self.total_ram_mb:.0f} MB free "
            f"disk={self.free_disk_mb:.0f}/{self.total_disk_mb:.0f} MB free"
        )


def _latest_per_host(rows: list[dict], value_keys: list[str]) -> dict[str, dict]:
    latest: dict[str, dict] = {}
    for row in rows:
        host = row.get("HostName")
        t = row.get("RecordedAt")
        if host is None or t is None:
            continue
        if host not in latest or t >= latest[host]["RecordedAt"]:
            latest[host] = row
    return latest


def capacity_report(gateway: "Gateway") -> CapacitySummary:
    """Aggregate the newest recorded sample of each host."""
    history = gateway.history
    proc = (
        _latest_per_host(history.db.table("Processor").rows, ["CPUCount"])
        if "Processor" in history.db.tables
        else {}
    )
    mem = (
        _latest_per_host(history.db.table("MainMemory").rows, ["RAMSizeMB"])
        if "MainMemory" in history.db.tables
        else {}
    )
    total_disk = free_disk = 0.0
    if "FileSystem" in history.db.tables:
        # FileSystem rows are one per mount; key on (host, Name).
        newest: dict[tuple, dict] = {}
        for row in history.db.table("FileSystem").rows:
            key = (row.get("HostName"), row.get("Name"))
            t = row.get("RecordedAt")
            if None in key or t is None:
                continue
            if key not in newest or t >= newest[key]["RecordedAt"]:
                newest[key] = row
        for row in newest.values():
            if isinstance(row.get("SizeMB"), (int, float)):
                total_disk += row["SizeMB"]
            if isinstance(row.get("AvailableSpaceMB"), (int, float)):
                free_disk += row["AvailableSpaceMB"]
    hosts = set(proc) | set(mem)
    return CapacitySummary(
        hosts=len(hosts),
        total_cpus=sum(
            int(r["CPUCount"]) for r in proc.values()
            if isinstance(r.get("CPUCount"), int)
        ),
        total_ram_mb=sum(
            float(r["RAMSizeMB"]) for r in mem.values()
            if isinstance(r.get("RAMSizeMB"), (int, float))
        ),
        free_ram_mb=sum(
            float(r["RAMAvailableMB"]) for r in mem.values()
            if isinstance(r.get("RAMAvailableMB"), (int, float))
        ),
        total_disk_mb=total_disk,
        free_disk_mb=free_disk,
    )


@dataclass
class SourceAvailability:
    """One data source's polled reachability."""

    url: str
    polls: int
    ok: int

    @property
    def ratio(self) -> float:
        return self.ok / self.polls if self.polls else 0.0

    def format(self) -> str:
        return f"{self.url:45s} {self.ok}/{self.polls} ({self.ratio:6.1%})"


class AvailabilityTracker:
    """Counts per-source poll outcomes as queries flow through a gateway.

    Attach once; it wraps the gateway's query result handling by
    observing SourceStatus entries (install registers a listener on the
    RequestManager via monkey-free composition: the gateway exposes the
    statuses of every query through its per-source DataSource record, so
    the tracker polls those records on a schedule instead of intercepting
    calls).
    """

    def __init__(self, gateway: "Gateway", *, sample_period: float = 30.0) -> None:
        self.gateway = gateway
        self._counts: dict[str, list[int]] = {}  # url -> [ok, polls]
        self._last_seen: dict[str, float] = {}
        gateway.network.clock.call_every(sample_period, self.sample)

    def sample(self) -> None:
        """Record each source's latest poll outcome (at most once per poll)."""
        for source in self.gateway.sources():
            if source.last_polled is None:
                continue
            url = str(source.url)
            if self._last_seen.get(url) == source.last_polled:
                continue
            self._last_seen[url] = source.last_polled
            counts = self._counts.setdefault(url, [0, 0])
            counts[1] += 1
            if source.last_ok:
                counts[0] += 1

    def report(self) -> list[SourceAvailability]:
        return [
            SourceAvailability(url=url, polls=polls, ok=ok)
            for url, (ok, polls) in sorted(self._counts.items())
        ]


def availability_report(tracker: AvailabilityTracker) -> list[SourceAvailability]:
    """Convenience alias matching the other report entry points."""
    return tracker.report()
