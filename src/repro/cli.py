"""Command-line interface: ``python -m repro <command>``.

Spins up a self-contained demo testbed (there is no persistent daemon —
everything is simulated) and exercises it:

* ``demo``      — build a site, poll everything, print the console tree;
* ``query``     — run one SQL query against a chosen agent kind;
* ``tree``      — print the tree view after polling all sources;
* ``discover``  — network-scan discovery from a blank gateway;
* ``health``    — poll all sources and print the breaker scoreboard;
* ``chaos``     — run the standard fault-plane scenario and report tail
  latency, hedging/retry/deadline counters and the replay signature;
* ``stream``    — run the streaming scenario: continuous queries (all
  three producer flavours) under the standard faults plus a consumer
  partition long enough to force lease-lapse re-registration;
* ``crashtest`` — seeded kill/recover/verify loops over the durable
  history store: crash the disk (torn writes, bit rot), rebuild the
  gateway, and hold recovery to the acked-prefix equality;
* ``racecheck`` — determinism sanitizer, dynamic side: run the standard
  chaos scenario twice in lockstep (race detector on, then off), report
  GRM55x lane races, and bisect the first diverging round / trace span /
  WAL frame if replay identity breaks;
* ``trace``     — run a query, print its hop-by-hop span tree, verify the
  trace invariants, and dump the metrics registry;
* ``schema``    — print the GLUE schema (``--xml`` for the XML rendering);
* ``lint``      — run the static driver-contract / project-invariant
  rules over source paths (see docs/DRIVER_GUIDE.md);
* ``experiments`` — list the DESIGN.md experiment index and how to run it.
"""

from __future__ import annotations

import argparse
import sys

from repro.core.request_manager import QueryMode
from repro.testbed import AGENT_KINDS, build_testbed
from repro.web.console import Console


def _build(args):
    agents = tuple(args.agents.split(",")) if args.agents else ("snmp", "ganglia")
    unknown = set(agents) - set(AGENT_KINDS)
    if unknown:
        raise SystemExit(f"unknown agent kind(s): {sorted(unknown)}")
    network, (site,) = build_testbed(
        n_hosts=args.hosts, agents=agents, seed=args.seed
    )
    network.clock.advance(args.warmup)
    return network, site


def _add_common(p):
    p.add_argument("--hosts", type=int, default=4, help="hosts per site")
    p.add_argument(
        "--agents",
        default="snmp,ganglia",
        help=f"comma-separated agent kinds from {','.join(AGENT_KINDS)}",
    )
    p.add_argument("--seed", type=int, default=0, help="testbed seed")
    p.add_argument(
        "--warmup", type=float, default=60.0, help="virtual warm-up seconds"
    )


def cmd_demo(args) -> int:
    network, site = _build(args)
    console = Console(site.gateway)
    console.poll_all("SELECT * FROM Processor")
    print(console.tree_view())
    print()
    print(console.driver_panel())
    return 0


def cmd_query(args) -> int:
    network, site = _build(args)
    url = args.url or site.url_for(args.kind)
    mode = QueryMode(args.mode)
    result = site.gateway.query(url, args.sql, mode=mode)
    print("\t".join(result.columns))
    for row in result.rows:
        print("\t".join("" if v is None else str(v) for v in row))
    print(
        f"# {result.ok_sources} ok, {result.failed_sources} failed, "
        f"{result.elapsed * 1000:.2f} virtual ms",
        file=sys.stderr,
    )
    for s in result.statuses:
        if not s.ok:
            print(f"# failed {s.url}: {s.error}", file=sys.stderr)
    return 0 if result.ok_sources else 1


def cmd_tree(args) -> int:
    network, site = _build(args)
    console = Console(site.gateway)
    console.poll_all()
    print(console.tree_view())
    return 0


def cmd_discover(args) -> int:
    from repro.core.gateway import Gateway
    from repro.web.discovery import discover_sources

    network, site = _build(args)
    blank = Gateway(network, "scanner-gw", site=site.name)
    hits = discover_sources(blank, add=False)
    for hit in hits:
        print(f"{hit.url}\t({hit.driver_name})")
    print(f"# {len(hits)} source(s) found", file=sys.stderr)
    return 0


def cmd_health(args) -> int:
    network, site = _build(args)
    console = Console(site.gateway)
    for host in args.fail:
        try:
            site.fail_host(host)
        except KeyError:
            known = ", ".join(site.host_names())
            print(f"error: --fail {host}: no such host (have: {known})", file=sys.stderr)
            return 2
    rounds = max(1, args.rounds)
    for _ in range(rounds):
        console.poll_all()
        network.clock.advance(args.warmup or 30.0)
    print(console.health_panel())
    return 0


def cmd_chaos(args) -> int:
    from repro.chaos import run_chaos

    report = run_chaos(
        seed=args.seed,
        rounds=args.rounds,
        hosts=args.hosts,
        agents=tuple(args.agents.split(",")) if args.agents else ("snmp", "ganglia"),
        hedging=not args.no_hedge,
        fanout=not args.no_fanout,
        deadline=args.deadline,
        period=args.period,
        race_detect=args.race_detect,
    )
    print(report.format())
    if report.race_findings:
        for finding in report.race_findings:
            print(f"# lane race: {finding}", file=sys.stderr)
        return 1
    if report.breaker_violations:
        for violation in report.breaker_violations:
            print(f"# breaker invariant violated: {violation}", file=sys.stderr)
        return 1
    if report.trace_violations:
        for violation in report.trace_violations:
            print(f"# trace invariant violated: {violation}", file=sys.stderr)
        return 1
    if report.pending_futures:
        print(
            f"# {report.pending_futures} network future(s) never resolved",
            file=sys.stderr,
        )
        return 1
    return 0


def cmd_overload(args) -> int:
    from repro.chaos import run_overload

    agents = tuple(args.agents.split(",")) if args.agents else ("snmp",)
    knobs = dict(
        seed=args.seed,
        rounds=args.rounds,
        hosts=args.hosts,
        agents=agents,
        shedding=not args.shed_off,
        spike_load=args.spike_load,
        deadline=args.deadline,
        period=args.period,
        warmup_rounds=args.warmup_rounds,
        slow_host=not args.no_slow_host,
    )
    report = run_overload(**knobs)
    print(report.format())
    failed = False
    if args.race_detect:
        # Dual run: the detector must neither find lane races nor
        # perturb the run — byte-identical signature with detection on.
        detected = run_overload(**knobs, race_detect=True)
        if detected.signature != report.signature:
            print(
                "# race detector perturbed the run: "
                f"{detected.signature[:16]} != {report.signature[:16]}",
                file=sys.stderr,
            )
            failed = True
        for finding in detected.race_findings:
            print(f"# lane race: {finding}", file=sys.stderr)
        failed = failed or bool(detected.race_findings)
        print(
            f"race detector: {detected.race_accesses} accesses checked, "
            f"{len(detected.race_findings)} finding(s), "
            f"signature {'identical' if detected.signature == report.signature else 'DIVERGED'}"
        )
    if report.critical_shed:
        print(
            f"# {report.critical_shed} CRITICAL quer(ies) shed — "
            "critical work must never be dropped",
            file=sys.stderr,
        )
        failed = True
    for violation in report.breaker_violations:
        print(f"# breaker invariant violated: {violation}", file=sys.stderr)
        failed = True
    for violation in report.trace_violations:
        print(f"# trace invariant violated: {violation}", file=sys.stderr)
        failed = True
    if report.pending_futures:
        print(
            f"# {report.pending_futures} network future(s) never resolved",
            file=sys.stderr,
        )
        failed = True
    return 1 if failed else 0


def cmd_stream(args) -> int:
    from repro.chaos import run_stream

    agents = tuple(args.agents.split(",")) if args.agents else ("snmp",)
    knobs = dict(
        seed=args.seed,
        rounds=args.rounds,
        hosts=args.hosts,
        agents=agents,
        subscriptions=args.subscriptions,
        period=args.period,
        warmup_rounds=args.warmup_rounds,
        deadline=args.deadline,
        partition=not args.no_partition,
    )
    report = run_stream(**knobs)
    print(report.format())
    failed = False
    if args.race_detect:
        # Dual run: the detector must neither find lane races nor
        # perturb the run — byte-identical signature with detection on.
        detected = run_stream(**knobs, race_detect=True)
        if detected.signature != report.signature:
            print(
                "# race detector perturbed the run: "
                f"{detected.signature[:16]} != {report.signature[:16]}",
                file=sys.stderr,
            )
            failed = True
        for finding in detected.race_findings:
            print(f"# lane race: {finding}", file=sys.stderr)
        failed = failed or bool(detected.race_findings)
        print(
            f"race detector: {detected.race_accesses} accesses checked, "
            f"{len(detected.race_findings)} finding(s), "
            f"signature {'identical' if detected.signature == report.signature else 'DIVERGED'}"
        )
    if not args.no_partition and report.reregisters == 0:
        print(
            "# consumer partition healed without any re-registration — "
            "lease recovery never ran",
            file=sys.stderr,
        )
        failed = True
    for entry in report.stuck_buffers:
        print(f"# stuck buffer: {entry}", file=sys.stderr)
        failed = True
    for violation in report.trace_violations:
        print(f"# trace invariant violated: {violation}", file=sys.stderr)
        failed = True
    if report.pending_futures:
        print(
            f"# {report.pending_futures} network future(s) never resolved",
            file=sys.stderr,
        )
        failed = True
    return 1 if failed else 0


def cmd_crashtest(args) -> int:
    from repro.crashtest import run_crashtest

    report = run_crashtest(
        seed=args.seed,
        cycles=args.cycles,
        rounds=args.rounds,
        hosts=args.hosts,
        agents=tuple(args.agents.split(",")) if args.agents else ("snmp", "ganglia"),
        fsync_interval=args.fsync_interval,
        checkpoint_every=args.checkpoint_every,
        period=args.period,
        race_detect=args.race_detect,
    )
    print(report.format())
    if report.race_findings:
        for finding in report.race_findings:
            print(f"# lane race: {finding}", file=sys.stderr)
        return 1
    if report.violations:
        for violation in report.violations:
            print(f"# durability invariant violated: {violation}", file=sys.stderr)
        return 1
    return 0


def cmd_racecheck(args) -> int:
    from repro.racecheck import run_racecheck

    agents = tuple(args.agents.split(",")) if args.agents else ("snmp", "ganglia")
    seeds = (
        [int(s) for s in args.seeds.split(",") if s.strip()]
        if args.seeds
        else [args.seed]
    )
    failed = 0
    for i, seed in enumerate(seeds):
        report = run_racecheck(
            seed=seed,
            rounds=args.rounds,
            hosts=args.hosts,
            agents=agents,
            period=args.period,
        )
        if i:
            print()
        print(report.format())
        if not report.ok:
            failed += 1
    if failed:
        print(f"# {failed}/{len(seeds)} seed(s) failed", file=sys.stderr)
        return 1
    return 0


def cmd_trace(args) -> int:
    from repro.obs import check_tracer

    network, site = _build(args)
    gw = site.gateway
    console = Console(gw)
    urls = args.url or [u for u in site.source_urls]
    mode = QueryMode(args.mode)
    result = gw.query(urls, args.sql, mode=mode)
    trace = gw.tracer.get(result.trace_id)
    if trace is None:
        print("error: tracing disabled or trace evicted", file=sys.stderr)
        return 2
    print(trace.render(), end="")
    print()
    print(console.trace_panel())
    violations = check_tracer(gw.tracer)
    if violations:
        for violation in violations:
            print(f"# trace invariant violated: {violation}", file=sys.stderr)
        return 1
    print(f"# trace invariants OK across {len(gw.tracer.traces())} trace(s)")
    if args.metrics:
        print()
        print(console.metrics_panel())
    return 0


def cmd_schema(args) -> int:
    from repro.glue.render import schema_to_xml
    from repro.glue.schema import STANDARD_SCHEMA

    if args.xml:
        print(schema_to_xml(STANDARD_SCHEMA))
        return 0
    for group in STANDARD_SCHEMA:
        print(f"{group.name}  -- {group.description}")
        for f in group.fields:
            unit = f" [{f.unit}]" if f.unit else ""
            print(f"    {f.name}: {f.type}{unit}")
    return 0


def cmd_report(args) -> int:
    from repro.web.reports import capacity_report, utilisation_report

    network, site = _build(args)
    gw = site.gateway
    # Take a few samples so the report has history to chew on.
    urls = [u for u in site.source_urls if u.startswith(("jdbc:snmp", "jdbc:ganglia"))]
    for _ in range(3):
        gw.query(urls, "SELECT * FROM Processor")
        gw.query(urls, "SELECT * FROM MainMemory")
        network.clock.advance(30.0)
    print("Site capacity:")
    print("  " + capacity_report(gw).format())
    print("Host utilisation:")
    for entry in utilisation_report(gw):
        print("  " + entry.format())
    return 0


def cmd_lint(args) -> int:
    from repro.analysis.linter import (
        lint_paths,
        load_baseline,
        render_flat,
        render_json,
        render_tree,
        write_baseline,
    )
    from repro.analysis.rules import rules_by_id

    rules = None
    if args.rules:
        wanted = [r.strip().upper() for r in args.rules.split(",") if r.strip()]
        try:
            rules = rules_by_id(wanted)
        except KeyError as exc:
            raise SystemExit(f"error: {exc.args[0]}") from exc
    baseline = load_baseline(args.baseline) if args.baseline else None
    report = lint_paths(args.paths, rules=rules, baseline=baseline)
    if args.write_baseline:
        n = write_baseline(args.write_baseline, report)
        print(f"# wrote {n} fingerprint(s) to {args.write_baseline}")
        return 0
    render = {"tree": render_tree, "flat": render_flat, "json": render_json}[
        args.format
    ]
    print(render(report))
    return 1 if report.findings else 0


def cmd_experiments(args) -> int:
    print(
        "Experiments E1-E12 reproduce every claim in the paper "
        "(see DESIGN.md section 5 and EXPERIMENTS.md).\n"
        "Run them with:\n\n"
        "    pytest benchmarks/ --benchmark-only\n"
    )
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="GridRM reproduction (Baker & Smith, CLUSTER 2003)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("demo", help="build a site and show the console")
    _add_common(p)
    p.set_defaults(func=cmd_demo)

    p = sub.add_parser("query", help="run a SQL query against an agent")
    _add_common(p)
    p.add_argument("sql", help='e.g. "SELECT * FROM Processor"')
    p.add_argument("--kind", default="snmp", help="agent kind to target")
    p.add_argument("--url", default=None, help="explicit JDBC URL")
    p.add_argument(
        "--mode",
        default="realtime",
        choices=[m.value for m in QueryMode],
    )
    p.set_defaults(func=cmd_query)

    p = sub.add_parser("tree", help="print the data-source tree view")
    _add_common(p)
    p.set_defaults(func=cmd_tree)

    p = sub.add_parser("discover", help="network-scan for data sources")
    _add_common(p)
    p.set_defaults(func=cmd_discover)

    p = sub.add_parser("health", help="print the circuit-breaker scoreboard")
    _add_common(p)
    p.add_argument(
        "--fail",
        action="append",
        default=[],
        metavar="HOST",
        help="take this host down before polling (repeatable)",
    )
    p.add_argument(
        "--rounds", type=int, default=3, help="poll rounds before reporting"
    )
    p.set_defaults(func=cmd_health)

    p = sub.add_parser("chaos", help="run the standard chaos scenario")
    _add_common(p)
    p.add_argument("--rounds", type=int, default=30, help="measured query rounds")
    p.add_argument(
        "--period", type=float, default=30.0, help="virtual seconds between rounds"
    )
    p.add_argument(
        "--deadline",
        type=float,
        default=10.0,
        help="end-to-end query budget in virtual seconds (0 = unlimited)",
    )
    p.add_argument(
        "--no-hedge", action="store_true", help="disable hedged requests"
    )
    p.add_argument(
        "--no-fanout", action="store_true", help="disable concurrent fan-out"
    )
    p.add_argument(
        "--race-detect",
        action="store_true",
        help="run under the virtual-lane race detector (GRM55x findings fail)",
    )
    p.set_defaults(func=cmd_chaos)

    p = sub.add_parser(
        "overload",
        help="run the overload scenario (load spike x slow hosts)",
    )
    _add_common(p)
    p.add_argument("--rounds", type=int, default=12, help="measured burst rounds")
    p.add_argument(
        "--spike-load", type=int, default=32, help="burst size during the spike"
    )
    p.add_argument(
        "--period", type=float, default=10.0, help="virtual seconds between rounds"
    )
    p.add_argument(
        "--deadline",
        type=float,
        default=2.0,
        help="per-query budget in virtual seconds",
    )
    p.add_argument(
        "--warmup-rounds",
        type=int,
        default=4,
        help="unmeasured warm-up rounds (0 = no stale coverage: shed-heavy)",
    )
    p.add_argument(
        "--shed-off",
        action="store_true",
        help="disable admission control / shedding (the collapse arm)",
    )
    p.add_argument(
        "--no-slow-host",
        action="store_true",
        help="skip the slow-host fault (sheds come purely from load)",
    )
    p.add_argument(
        "--race-detect",
        action="store_true",
        help="dual run under the lane-race detector; findings or a "
        "perturbed signature fail",
    )
    p.set_defaults(func=cmd_overload)

    p = sub.add_parser(
        "stream",
        help="run the streaming scenario (continuous queries x faults)",
    )
    _add_common(p)
    p.add_argument("--rounds", type=int, default=12, help="measured poll rounds")
    p.add_argument(
        "--subscriptions",
        type=int,
        default=6,
        help="continuous queries to register (flavour x class mix)",
    )
    p.add_argument(
        "--period", type=float, default=10.0, help="virtual seconds between rounds"
    )
    p.add_argument(
        "--warmup-rounds",
        type=int,
        default=3,
        help="unmeasured warm-up polls before registration (replay fodder)",
    )
    p.add_argument(
        "--deadline",
        type=float,
        default=10.0,
        help="per-query budget in virtual seconds",
    )
    p.add_argument(
        "--no-partition",
        action="store_true",
        help="skip the long consumer partition (no lease-lapse recovery)",
    )
    p.add_argument(
        "--race-detect",
        action="store_true",
        help="dual run under the lane-race detector; findings or a "
        "perturbed signature fail",
    )
    p.set_defaults(func=cmd_stream)

    p = sub.add_parser(
        "crashtest", help="kill/recover/verify loops over durable history"
    )
    _add_common(p)
    p.add_argument(
        "--cycles", type=int, default=3, help="kill/recover cycles to run"
    )
    p.add_argument(
        "--rounds", type=int, default=5, help="query rounds per cycle"
    )
    p.add_argument(
        "--period", type=float, default=30.0, help="virtual seconds between rounds"
    )
    p.add_argument(
        "--fsync-interval",
        type=int,
        default=3,
        help="WAL group-commit interval (records per fsync)",
    )
    p.add_argument(
        "--checkpoint-every",
        type=int,
        default=2,
        help="checkpoint every N rounds (0 = only at recovery)",
    )
    p.add_argument(
        "--race-detect",
        action="store_true",
        help="run under the virtual-lane race detector (GRM55x findings fail)",
    )
    p.set_defaults(func=cmd_crashtest)

    p = sub.add_parser(
        "racecheck",
        help="dual-run divergence check + virtual-lane race detection",
    )
    _add_common(p)
    p.add_argument(
        "--seeds",
        default=None,
        metavar="S1,S2,...",
        help="comma-separated seed list (overrides --seed)",
    )
    p.add_argument(
        "--rounds", type=int, default=15, help="measured query rounds per run"
    )
    p.add_argument(
        "--period", type=float, default=30.0, help="virtual seconds between rounds"
    )
    p.set_defaults(func=cmd_racecheck)

    p = sub.add_parser(
        "trace", help="run a query and print its hop-by-hop trace"
    )
    _add_common(p)
    p.add_argument(
        "sql",
        nargs="?",
        default="SELECT * FROM Processor",
        help='query to trace (default: "SELECT * FROM Processor")',
    )
    p.add_argument(
        "--url",
        action="append",
        default=None,
        metavar="JDBC_URL",
        help="explicit source URL(s) to query (repeatable; default: all)",
    )
    p.add_argument(
        "--mode",
        default="realtime",
        choices=[m.value for m in QueryMode],
    )
    p.add_argument(
        "--metrics",
        action="store_true",
        help="also dump the gateway's metrics registry",
    )
    p.set_defaults(func=cmd_trace)

    p = sub.add_parser("schema", help="print the GLUE schema")
    p.add_argument("--xml", action="store_true", help="XML rendering")
    p.set_defaults(func=cmd_schema)

    p = sub.add_parser("report", help="capacity and utilisation report")
    _add_common(p)
    p.set_defaults(func=cmd_report)

    p = sub.add_parser(
        "lint", help="run the project's static analysis rules over source paths"
    )
    p.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    p.add_argument(
        "--baseline",
        default=None,
        metavar="FILE",
        help="suppress findings whose fingerprints appear in FILE",
    )
    p.add_argument(
        "--write-baseline",
        default=None,
        metavar="FILE",
        help="record current findings as the suppression baseline and exit 0",
    )
    p.add_argument(
        "--rules",
        default=None,
        metavar="IDS",
        help="comma-separated rule ids to run (default: all)",
    )
    p.add_argument(
        "--format",
        default="tree",
        choices=["tree", "flat", "json"],
        help="tree (console idiom), flat (grep-friendly) or json (stable, "
        "machine-readable)",
    )
    p.set_defaults(func=cmd_lint)

    p = sub.add_parser("experiments", help="how to run the experiments")
    p.set_defaults(func=cmd_experiments)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
