"""GMA registration records."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ProducerRecord:
    """A producer's directory entry: who serves which site's data."""

    site: str
    gateway_host: str
    port: int
    groups: tuple[str, ...] = ()
    registered_at: float = 0.0

    def key(self) -> str:
        return f"{self.site}@{self.gateway_host}:{self.port}"


@dataclass(frozen=True)
class ConsumerRecord:
    """A consumer's directory entry (kept for GMA completeness; GridRM's
    request/response interactions do not require consumers to register,
    but event subscriptions across gateways do)."""

    name: str
    host: str
    port: int
    interests: tuple[str, ...] = ()
    registered_at: float = 0.0

    def key(self) -> str:
        return f"{self.name}@{self.host}:{self.port}"
