"""Inter-gateway event subscriptions (paper §3.1.5, GMA publish/subscribe).

"This behaviour allows GridRM to propagate events between Gateways and
groups of diverse data sources."  GMA's third interaction mode (besides
request/response and query) is subscription: a consumer registers
interest with a producer, which then pushes events as they occur.

:class:`EventPublisher` attaches to a gateway: it accepts subscription
requests on a control port and forwards every matching local event —
whether translated from a native trap or synthesised by the alert
monitor — to each subscriber as a one-way datagram carrying the
serialised GridRM event.  :class:`EventSubscriber` is the consumer side:
it subscribes a local callback to a remote gateway's events.

Subscriptions lease-expire: publishers drop subscribers that have not
renewed within the lease, so crashed consumers do not accumulate.
"""

from __future__ import annotations

import itertools
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Optional, TYPE_CHECKING

from repro.core.events import Event
from repro.simnet.errors import NetworkError
from repro.simnet.network import Address, Network

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.gateway import Gateway

PUBLISHER_PORT = 8400

#: Wire form of an event (plain dict so any endpoint can consume it).
def encode_event(event: Event) -> dict[str, Any]:
    return {
        "kind": "gridrm-event",
        "source_host": event.source_host,
        "name": event.name,
        "severity": event.severity,
        "time": event.time,
        "fields": dict(event.fields),
        "native_kind": event.native_kind,
    }


def decode_event(payload: Any) -> Optional[Event]:
    if not isinstance(payload, dict) or payload.get("kind") != "gridrm-event":
        return None
    try:
        return Event(
            source_host=str(payload["source_host"]),
            name=str(payload["name"]),
            severity=str(payload["severity"]),
            time=float(payload["time"]),
            fields=dict(payload.get("fields", {})),
            native_kind=str(payload.get("native_kind", "")),
        )
    except (KeyError, TypeError, ValueError):
        return None


@dataclass
class _Subscription:
    subscriber: Address
    name_prefix: str
    source_host: Optional[str]
    expires_at: float
    delivered: int = 0
    #: Backpressure: while paused, events buffer here (bounded) instead
    #: of being pushed — a continuous query cannot OOM a slow consumer.
    max_buffer: int = 256
    #: What happens when the bounded buffer is full: "drop_oldest"
    #: keeps the newest events, "pause" keeps the orderly prefix and
    #: drops newcomers.  Either way the drop is counted, never silent.
    overflow: str = "drop_oldest"
    paused: bool = False
    dropped: int = 0
    buffer: "deque[dict[str, Any]]" = field(default_factory=deque)


class EventPublisher:
    """Gateway-side event publisher with leased subscriptions.

    Control protocol (request/response on :data:`PUBLISHER_PORT`):

    * ``("subscribe", reply_host, reply_port, name_prefix, source_host,
      lease_s)`` -> ``("ok", subscription_id)``; the extended form adds
      ``(..., max_buffer, overflow)`` to size the backpressure buffer
      (0 = the gateway policy's ``subscription_buffer_limit``) and pick
      the overflow policy (``"drop_oldest"`` | ``"pause"``)
    * ``("renew", subscription_id, lease_s)`` -> ``("ok",)`` | ``("missing",)``;
      a renewal arriving within one sweep period of the sweeper removing
      the subscription resurrects it in place (see :meth:`sweep`)
    * ``("unsubscribe", subscription_id)`` -> ``("ok",)`` | ``("missing",)``
    * ``("pause", subscription_id)`` -> ``("ok",)`` — stop pushing;
      events buffer (bounded) until resume
    * ``("resume", subscription_id)`` -> ``("ok", flushed_count)`` —
      flush the buffer in order and push live again
    """

    DEFAULT_LEASE = 300.0
    SWEEP_PERIOD = 60.0

    def __init__(self, gateway: "Gateway", *, port: int = PUBLISHER_PORT) -> None:
        self.gateway = gateway
        self.address = Address(gateway.host, port)
        self._subs: dict[int, _Subscription] = {}
        #: Swept subscriptions, kept resurrectable until the next sweep.
        self._tombstones: dict[int, _Subscription] = {}
        self._ids = itertools.count(1)
        self.stats = {
            "published": 0,
            "expired": 0,
            "subscribes": 0,
            "dropped": 0,
            "resurrected": 0,
        }
        gateway.network.listen(self.address, self._handle_control)
        gateway.events.register_listener(self._on_event)
        gateway.network.clock.call_every(self.SWEEP_PERIOD, self.sweep)

    # ------------------------------------------------------------------
    def _handle_control(self, payload: Any, src: Address) -> tuple:
        if not isinstance(payload, tuple) or not payload:
            return ("error", "malformed request")
        op = payload[0]
        now = self.gateway.network.clock.now()
        if op == "subscribe":
            # Legacy 6-tuple, or the extended 8-tuple carrying the
            # backpressure buffer bound and overflow policy.
            if len(payload) == 6:
                _, host, port, prefix, source_host, lease = payload
                max_buffer, overflow = 0, "drop_oldest"
            elif len(payload) == 8:
                _, host, port, prefix, source_host, lease, max_buffer, overflow = (
                    payload
                )
            else:
                return ("error", "subscribe needs 5 or 7 arguments")
            if overflow not in ("drop_oldest", "pause"):
                return ("error", f"unknown overflow policy {overflow!r}")
            sid = next(self._ids)
            self._subs[sid] = _Subscription(
                subscriber=Address(str(host), int(port)),
                name_prefix=str(prefix or ""),
                source_host=source_host,
                expires_at=now + float(lease or self.DEFAULT_LEASE),
                max_buffer=int(max_buffer)
                or self.gateway.policy.subscription_buffer_limit,
                overflow=str(overflow),
            )
            self.stats["subscribes"] += 1
            return ("ok", sid)
        if op == "renew":
            sub = self._subs.get(payload[1])
            if sub is None:
                # Tombstone grace: this renewal may have been on the
                # wire — sent while the lease was still live — when the
                # sweeper ran; transport delay carries the arrival past
                # the lease-expiry instant, so the sweep removes the
                # subscription first and the renewal would land on
                # nothing.  Within one sweep period the renewal
                # resurrects it, buffers intact.
                sub = self._tombstones.pop(payload[1], None)
                if sub is None:
                    return ("missing",)
                self._subs[payload[1]] = sub
                self.stats["resurrected"] += 1
            sub.expires_at = now + float(payload[2] or self.DEFAULT_LEASE)
            return ("ok",)
        if op == "unsubscribe":
            if self._subs.pop(payload[1], None) or self._tombstones.pop(
                payload[1], None
            ):
                return ("ok",)
            return ("missing",)
        if op == "pause":
            sub = self._subs.get(payload[1])
            if sub is None:
                return ("missing",)
            sub.paused = True
            return ("ok",)
        if op == "resume":
            sub = self._subs.get(payload[1])
            if sub is None:
                return ("missing",)
            sub.paused = False
            flushed = len(sub.buffer)
            while sub.buffer:
                self.gateway.network.send(
                    self.gateway.host, sub.subscriber, sub.buffer.popleft()
                )
                sub.delivered += 1
                self.stats["published"] += 1
            return ("ok", flushed)
        return ("error", f"unknown op {op!r}")

    # ------------------------------------------------------------------
    def _on_event(self, event: Event) -> None:
        now = self.gateway.network.clock.now()
        wire_event = encode_event(event)
        for sub in self._subs.values():
            if sub.expires_at < now:
                continue
            if sub.name_prefix and not event.name.startswith(sub.name_prefix):
                continue
            if sub.source_host is not None and event.source_host != sub.source_host:
                continue
            self._offer(sub, wire_event)

    def _offer(self, sub: _Subscription, wire_event: dict[str, Any]) -> None:
        """Push live, or buffer (bounded) while the subscriber is paused."""
        if not sub.paused:
            self.gateway.network.send(self.gateway.host, sub.subscriber, wire_event)
            sub.delivered += 1
            self.stats["published"] += 1
            return
        if len(sub.buffer) < sub.max_buffer:
            sub.buffer.append(wire_event)
            return
        # Bounded buffer full: something must be dropped, and counted.
        sub.dropped += 1
        self.stats["dropped"] += 1
        if sub.overflow == "drop_oldest":
            sub.buffer.popleft()
            sub.buffer.append(wire_event)
        # "pause": the newcomer is dropped — the orderly prefix survives.

    def buffer_stats(self) -> dict[int, dict[str, Any]]:
        """Per-subscription backpressure state (console view)."""
        return {
            sid: {
                "paused": s.paused,
                "buffered": len(s.buffer),
                "max_buffer": s.max_buffer,
                "overflow": s.overflow,
                "dropped": s.dropped,
                "delivered": s.delivered,
            }
            for sid, s in sorted(self._subs.items())
        }

    def sweep(self) -> int:
        """Tombstone expired subscriptions; returns how many moved.

        Tombstones from the *previous* sweep are discarded first, so a
        swept subscription stays renew-resurrectable for exactly one
        sweep period — long enough for a renewal whose arrival the
        virtual clock carried past the expiry instant, or across a
        short partition, to land.
        """
        self._tombstones.clear()
        now = self.gateway.network.clock.now()
        dead = [sid for sid, s in self._subs.items() if s.expires_at < now]
        for sid in dead:
            self._tombstones[sid] = self._subs.pop(sid)
        self.stats["expired"] += len(dead)
        return len(dead)

    def subscriber_count(self) -> int:
        return len(self._subs)


class EventSubscriber:
    """Consumer side: receive a remote gateway's events locally."""

    def __init__(
        self,
        network: Network,
        host: str,
        *,
        port: int = 8401,
    ) -> None:
        self.network = network
        self.host = host
        self.address = Address(host, port)
        self._callbacks: list[Callable[[Event], None]] = []
        self.received = 0
        network.listen(
            self.address, lambda p, s: None, datagram_handler=self._on_datagram
        )

    def _on_datagram(self, payload: Any, src: Address) -> None:
        event = decode_event(payload)
        if event is None:
            return
        self.received += 1
        for cb in list(self._callbacks):
            cb(event)

    def on_event(self, callback: Callable[[Event], None]) -> None:
        self._callbacks.append(callback)

    def subscribe(
        self,
        publisher: Address,
        *,
        name_prefix: str = "",
        source_host: str | None = None,
        lease: float = EventPublisher.DEFAULT_LEASE,
        max_buffer: int | None = None,
        overflow: str | None = None,
    ) -> int:
        """Subscribe at a remote publisher; returns the subscription id.

        ``max_buffer`` / ``overflow`` size this subscription's
        backpressure buffer at the publisher (events buffer there,
        bounded, while the subscription is paused).  When both are left
        default the legacy 6-tuple goes out, so old publishers still
        accept the request.
        """
        if max_buffer is None and overflow is None:
            request: tuple = (
                "subscribe",
                self.address.host,
                self.address.port,
                name_prefix,
                source_host,
                lease,
            )
        else:
            request = (
                "subscribe",
                self.address.host,
                self.address.port,
                name_prefix,
                source_host,
                lease,
                int(max_buffer or 0),
                overflow or "drop_oldest",
            )
        response = self.network.request(self.host, publisher, request)
        if not isinstance(response, tuple) or response[0] != "ok":
            raise NetworkError(f"subscribe rejected: {response!r}")
        return response[1]

    def pause(self, publisher: Address, subscription_id: int) -> bool:
        """Ask the publisher to buffer (bounded) instead of pushing."""
        response = self.network.request(
            self.host, publisher, ("pause", subscription_id)
        )
        return isinstance(response, tuple) and response[0] == "ok"

    def resume(self, publisher: Address, subscription_id: int) -> int:
        """Resume pushing; returns how many buffered events flushed."""
        response = self.network.request(
            self.host, publisher, ("resume", subscription_id)
        )
        if not isinstance(response, tuple) or response[0] != "ok":
            raise NetworkError(f"resume rejected: {response!r}")
        return int(response[1])

    def renew(self, publisher: Address, subscription_id: int, lease: float) -> bool:
        response = self.network.request(
            self.host, publisher, ("renew", subscription_id, lease)
        )
        return isinstance(response, tuple) and response[0] == "ok"

    def unsubscribe(self, publisher: Address, subscription_id: int) -> bool:
        response = self.network.request(
            self.host, publisher, ("unsubscribe", subscription_id)
        )
        return isinstance(response, tuple) and response[0] == "ok"
